"""Parallel, fault-tolerant design-space sweep engine.

The paper's whole point is making design-space iteration fast; this
module evaluates many candidate partitions at once instead of one by
one.  Design points travel to ``multiprocessing`` workers as picklable
:class:`~repro.cosim.partition.DesignSpec` records (workers ``build()``
the instance locally), and every point comes back with a structured
status — ``ok`` / ``self-check-failed`` / ``deadlock`` / ``timeout`` /
``error`` — so one pathological point can never kill a sweep:
:class:`~repro.cosim.environment.CoSimDeadlock` is captured as data,
not an exception.

Fault tolerance and speed come from four mechanisms:

* **worker pool** — one process per in-flight point, up to ``workers``
  at a time; a crashed or hung worker is reaped and reported without
  disturbing its siblings,
* **per-point timeout** — inside the worker, the
  :func:`~repro.cosim.environment.run_timeout` hook bounds the
  co-simulation's wall clock; the parent hard-kills workers that
  overrun the budget plus a grace period,
* **bounded retry** — ``timeout``/``error`` points (the environmental
  failures) are re-queued up to ``retries`` extra times, optionally
  behind a seeded jittered exponential backoff whose schedule is
  recorded on the :class:`~repro.cosim.dse.DSEResult`,
* **on-disk result cache** — results are keyed by a deterministic
  design-point fingerprint (program image hash + CPU configuration +
  model parameters), so re-sweeps only pay for new points,
* **resume journal** — with ``journal=`` every completed point is
  appended to a JSON-lines file as it lands; a killed sweep restarted
  with ``resume=True`` replays the journal and only evaluates the
  points that never finished.

A ``progress`` callback receives a :class:`SweepProgress` snapshot
(points done, cache hits, worker utilization, aggregate cycles/sec)
after every completed point — the hook the ``mb32-dse`` CLI uses for
its live status line.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import pathlib
import time
from collections import deque
from dataclasses import asdict, dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Iterable

from repro.runapi.durable import (
    QUARANTINE_DIR,
    durable_write,
    read_verified,
    record_intact,
    seal_record,
)
from repro.cosim.dse import (
    DSEResult,
    STATUS_DEADLOCK,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SELF_CHECK,
    STATUS_TIMEOUT,
    best,
    rank,
)
from repro.cosim.environment import (
    CoSimDeadlock,
    CoSimResult,
    CoSimTimeout,
    run_timeout,
)
from repro.cosim.partition import DesignPoint, DesignSpec
from repro.iss.cpu import HaltReason
from repro.runapi.backoff import retry_backoff_delay
from repro.runapi.engine import engine_scope
from repro.runapi.fingerprint import design_fingerprint
from repro.resources.estimator import DesignEstimate
from repro.resources.types import Resources
from repro.telemetry import Telemetry, telemetry_scope

#: statuses worth another attempt: crashes and timeouts can be
#: environmental, while deadlocks and self-check failures are
#: deterministic properties of the design point.
RETRIABLE = frozenset({STATUS_TIMEOUT, STATUS_ERROR})

#: extra wall-clock slack the parent grants a worker beyond the
#: per-point timeout before hard-killing it — covers program build time
#: and the bounded latency of the in-run timeout check.
KILL_GRACE_S = 10.0


# ----------------------------------------------------------------------
# Fingerprinting and the on-disk result cache
# ----------------------------------------------------------------------
def point_fingerprint(point: DesignPoint | DesignSpec, instance) -> str:
    """Deterministic identity of an evaluated design point.

    Now an alias of the public, stability-tested
    :func:`repro.runapi.design_fingerprint` (same recipe, same
    digests — existing sweep caches stay valid); kept under its
    historical name for the sweep-side callers.
    """
    return design_fingerprint(point, instance)


def _result_to_dict(result: CoSimResult) -> dict[str, Any]:
    d = asdict(result)
    d["halt_reason"] = (
        result.halt_reason.value if result.halt_reason is not None else None
    )
    return d


def _result_from_dict(d: dict[str, Any]) -> CoSimResult:
    halt = d.get("halt_reason")
    return CoSimResult(
        exit_code=d["exit_code"],
        cycles=d["cycles"],
        instructions=d["instructions"],
        stall_cycles=d["stall_cycles"],
        wall_seconds=d["wall_seconds"],
        simulated_seconds=d["simulated_seconds"],
        halt_reason=HaltReason(halt) if halt is not None else None,
    )


def _estimate_to_dict(estimate: DesignEstimate) -> dict[str, Any]:
    return {
        "processor": asdict(estimate.processor),
        "lmb_controllers": asdict(estimate.lmb_controllers),
        "fsl_links": asdict(estimate.fsl_links),
        "peripheral": asdict(estimate.peripheral),
        "program_brams": estimate.program_brams,
    }


def _estimate_from_dict(d: dict[str, Any]) -> DesignEstimate:
    return DesignEstimate(
        processor=Resources(**d["processor"]),
        lmb_controllers=Resources(**d["lmb_controllers"]),
        fsl_links=Resources(**d["fsl_links"]),
        peripheral=Resources(**d["peripheral"]),
        program_brams=d["program_brams"],
    )


class SweepCache:
    """On-disk result cache: one JSON file per design-point fingerprint.

    Entries store the :class:`CoSimResult` and
    :class:`DesignEstimate` of a successful run; failures are never
    cached (they should re-evaluate).  Writes go through the shared
    durable envelope (:mod:`repro.runapi.durable`: tmp + rename +
    fsync) so concurrent workers can share one directory and a host
    crash cannot leave a torn entry; reads verify the envelope and
    quarantine damage as a miss.  Pre-envelope entries (raw JSON)
    read transparently.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _entry(self, fingerprint: str) -> pathlib.Path:
        return self.path / f"{fingerprint}.json"

    def get(
        self, fingerprint: str
    ) -> tuple[CoSimResult, DesignEstimate] | None:
        blob = read_verified(
            self._entry(fingerprint),
            quarantine_dir=self.path / QUARANTINE_DIR,
        )
        if blob is None:
            return None  # missing or quarantined-as-damaged: miss
        try:
            data = json.loads(blob)
            return (
                _result_from_dict(data["result"]),
                _estimate_from_dict(data["estimate"]),
            )
        except (ValueError, KeyError, TypeError):
            return None  # legacy-format corruption also means "miss"

    def put(
        self,
        fingerprint: str,
        result: CoSimResult,
        estimate: DesignEstimate,
    ) -> None:
        durable_write(
            self._entry(fingerprint),
            json.dumps(
                {
                    "result": _result_to_dict(result),
                    "estimate": _estimate_to_dict(estimate),
                }
            ).encode(),
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))


# ----------------------------------------------------------------------
# The resume journal
# ----------------------------------------------------------------------
def sweep_spec_id(points: list[DesignPoint | DesignSpec]) -> str:
    """Deterministic identity of a sweep *specification* — the ordered
    list of point names, factories and parameters.  A journal written
    for one spec refuses to resume a different one."""
    h = hashlib.sha256()
    for point in points:
        h.update(point.name.encode())
        kind = getattr(point.kind, "value", None)
        h.update(str(kind).encode())
        h.update((getattr(point, "factory", "") or "").encode())
        h.update(
            json.dumps(point.params, sort_keys=True, default=repr).encode()
        )
    return h.hexdigest()


def _payload_to_jsonable(payload: dict[str, Any]) -> dict[str, Any]:
    """Flatten an evaluation payload to plain JSON for the journal."""
    return {
        "status": payload["status"],
        "error": payload["error"],
        "fingerprint": payload["fingerprint"],
        "cache_hit": payload["cache_hit"],
        "metrics": payload.get("metrics"),
        "result": (
            _result_to_dict(payload["result"])
            if payload["result"] is not None
            else None
        ),
        "estimate": (
            _estimate_to_dict(payload["estimate"])
            if payload["estimate"] is not None
            else None
        ),
    }


def _payload_from_jsonable(d: dict[str, Any]) -> dict[str, Any]:
    return {
        "status": d["status"],
        "error": d["error"],
        "fingerprint": d["fingerprint"],
        "cache_hit": d["cache_hit"],
        "metrics": d.get("metrics"),
        "result": (
            _result_from_dict(d["result"]) if d["result"] is not None
            else None
        ),
        "estimate": (
            _estimate_from_dict(d["estimate"]) if d["estimate"] is not None
            else None
        ),
    }


class SweepJournal:
    """JSON-lines journal of completed sweep points.

    Line 1 is a header binding the file to a sweep spec
    (:func:`sweep_spec_id`); every further line is one completed point
    (index, attempts, backoff schedule, full payload), flushed as it
    lands so a killed sweep loses at most the in-flight points.  Every
    record is sealed with a per-line digest
    (:func:`repro.runapi.durable.seal_record`); on load, replay stops
    at the first truncated *or* damaged line — the WAL-tail rule — so
    a line torn by a crash mid-append can never replay as a completed
    point.  Journals written before sealing (no digest) still load.
    """

    FORMAT = "mb32-dse-journal"
    VERSION = 1

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)
        self._fh: Any = None

    def load(self, spec_id: str, total: int) -> dict[int, dict[str, Any]]:
        """Replayable entries from an existing journal, keyed by point
        index.  Raises ``ValueError`` if the file is not a journal or
        belongs to a different sweep spec."""
        if not self.path.exists():
            return {}
        entries: dict[int, dict[str, Any]] = {}
        header_seen = False
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    break  # truncated tail from a mid-write kill
                if not record_intact(rec):
                    break  # damaged line: replay the intact prefix only
                if not header_seen:
                    header_seen = True
                    if (
                        not isinstance(rec, dict)
                        or rec.get("format") != self.FORMAT
                        or rec.get("version") != self.VERSION
                    ):
                        raise ValueError(
                            f"{self.path} is not an mb32-dse resume journal"
                        )
                    if rec.get("spec_id") != spec_id:
                        raise ValueError(
                            f"journal {self.path} belongs to a different "
                            f"sweep spec — cannot resume"
                        )
                    continue
                index = rec.get("index")
                if isinstance(index, int) and 0 <= index < total:
                    entries[index] = rec
        return entries

    def open(self, spec_id: str, total: int) -> None:
        """Open for appending, writing the header on a fresh file."""
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "a")
        if fresh:
            self._write(
                {
                    "format": self.FORMAT,
                    "version": self.VERSION,
                    "spec_id": spec_id,
                    "points": total,
                }
            )

    def record(
        self,
        index: int,
        attempts: int,
        backoff_s: list[float],
        payload: dict[str, Any],
    ) -> None:
        self._write(
            {
                "index": index,
                "attempts": attempts,
                "backoff_s": list(backoff_s),
                "payload": _payload_to_jsonable(payload),
            }
        )

    def _write(self, rec: dict[str, Any]) -> None:
        self._fh.write(json.dumps(seal_record(rec)) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            with contextlib.suppress(OSError, ValueError):
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Per-point evaluation (shared by workers and the in-process path)
# ----------------------------------------------------------------------
def _evaluate(
    point: DesignPoint | DesignSpec,
    cache_dir: str | None,
    timeout_s: float | None,
    telemetry: bool = False,
) -> dict[str, Any]:
    """Build, fingerprint, consult the cache, run, classify.

    Returns a picklable payload dict; every failure mode maps to a
    status string instead of an exception.  With ``telemetry=True``,
    the run is wrapped in a :func:`~repro.telemetry.telemetry_scope`
    and the payload carries the plain-dict metric snapshot (cache hits
    skip the run, so they carry none).
    """
    payload: dict[str, Any] = {
        "status": STATUS_ERROR,
        "error": None,
        "result": None,
        "estimate": None,
        "fingerprint": None,
        "cache_hit": False,
        "metrics": None,
    }
    try:
        instance = point.build()
    except Exception as exc:
        payload["error"] = f"build failed: {type(exc).__name__}: {exc}"
        return payload

    fingerprint = point_fingerprint(point, instance)
    payload["fingerprint"] = fingerprint
    cache = SweepCache(cache_dir) if cache_dir else None
    if cache is not None:
        hit = cache.get(fingerprint)
        if hit is not None:
            result, estimate = hit
            payload.update(
                status=STATUS_OK, result=result, estimate=estimate,
                cache_hit=True,
            )
            return payload

    _run_and_classify(instance, payload, timeout_s, telemetry)
    if payload["status"] == STATUS_OK and cache is not None:
        cache.put(fingerprint, payload["result"], payload["estimate"])
    return payload


def _run_and_classify(
    instance,
    payload: dict[str, Any],
    timeout_s: float | None,
    telemetry: bool = False,
) -> None:
    """Run a built design instance and classify the outcome in place.

    The run/classify tail of :func:`_evaluate`, shared with the scalar
    fallback path of :func:`~repro.cosim.sweep_batched.sweep_batched`
    so both engines produce identical statuses and diagnostics.
    """
    tel = Telemetry() if telemetry else None
    try:
        with contextlib.ExitStack() as stack:
            if timeout_s is not None:
                stack.enter_context(run_timeout(timeout_s))
            if tel is not None:
                stack.enter_context(telemetry_scope(tel))
            result = instance.run()
    except CoSimTimeout as exc:
        payload.update(status=STATUS_TIMEOUT, error=str(exc))
        return
    except CoSimDeadlock as exc:
        payload.update(status=STATUS_DEADLOCK, error=str(exc))
        return
    except AssertionError as exc:
        # VerificationError (a golden-model mismatch) derives from
        # AssertionError — the design ran but produced wrong answers.
        payload.update(
            status=STATUS_SELF_CHECK,
            error=f"{type(exc).__name__}: {exc}",
        )
        return
    except Exception as exc:
        payload.update(
            status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
        )
        return

    if tel is not None:
        payload["metrics"] = tel.snapshot(result)
    if result.exit_code is None:
        payload.update(
            status=STATUS_TIMEOUT,
            error="did not terminate within max_cycles",
            result=result,
        )
        return
    if result.exit_code != 0:
        payload.update(
            status=STATUS_SELF_CHECK,
            error=f"failed self-check (exit code {result.exit_code})",
            result=result,
        )
        return

    try:
        estimate = instance.estimate()
    except Exception as exc:
        payload.update(
            status=STATUS_ERROR,
            error=f"resource estimation failed: {type(exc).__name__}: {exc}",
            result=result,
        )
        return

    payload.update(status=STATUS_OK, result=result, estimate=estimate)


def _worker_main(point, cache_dir, timeout_s, conn,
                 telemetry: bool = False, evaluate=None,
                 engine: str = "auto") -> None:
    """Entry point of a sweep worker process: evaluate one point and
    ship the payload back over the pipe.  ``evaluate`` lets other
    campaign engines (e.g. fault injection) reuse this pool with their
    own module-level evaluation function.  ``engine`` becomes the
    ambient :func:`~repro.runapi.engine_scope` of the evaluation."""
    try:
        evaluate_fn = evaluate if evaluate is not None else _evaluate
        with engine_scope(engine):
            payload = evaluate_fn(point, cache_dir, timeout_s, telemetry)
    except BaseException as exc:  # never let a worker die silently
        payload = {
            "status": STATUS_ERROR,
            "error": f"worker failed: {type(exc).__name__}: {exc}",
            "result": None,
            "estimate": None,
            "fingerprint": None,
            "cache_hit": False,
            "metrics": None,
        }
    try:
        conn.send(payload)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
@dataclass
class SweepProgress:
    """Snapshot handed to the ``progress`` callback after each point."""

    total: int
    done: int
    cache_hits: int
    active_workers: int
    wall_seconds: float
    cycles_done: int
    last: DSEResult | None = None

    @property
    def cycles_per_second(self) -> float:
        """Aggregate simulated cycles per wall second across the sweep."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles_done / self.wall_seconds


# ----------------------------------------------------------------------
# The sweep report
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """Outcome of one sweep.

    ``results`` keeps the input point order (deterministic regardless
    of worker count); use :meth:`ranked` for fastest-feasible-first.
    """

    results: list[DSEResult]
    wall_seconds: float
    workers: int

    @property
    def ok(self) -> list[DSEResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[DSEResult]:
        return [r for r in self.results if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    def ranked(
        self,
        max_slices: int | None = None,
        max_brams: int | None = None,
        max_mult18: int | None = None,
    ) -> list[DSEResult]:
        return rank(self.results, max_slices, max_brams, max_mult18)

    def best(self, **constraints) -> DSEResult:
        return best(self.ranked(**constraints))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form — the payload of the ``mb32-dse`` report."""
        return {
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "points": len(self.results),
            "ok": len(self.ok),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits,
            "results": [r.to_dict() for r in self.results],
        }


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def _to_dse_result(
    point, payload, attempts: int, backoff_s: list[float] | None = None
) -> DSEResult:
    return DSEResult(
        point=point,
        result=payload["result"],
        estimate=payload["estimate"],
        status=payload["status"],
        error=payload["error"],
        cache_hit=payload["cache_hit"],
        fingerprint=payload["fingerprint"],
        attempts=attempts,
        metrics=payload.get("metrics"),
        backoff_s=list(backoff_s) if backoff_s else [],
    )


def sweep(
    points: Iterable[DesignPoint | DesignSpec],
    *,
    workers: int = 0,
    timeout_s: float | None = None,
    retries: int = 0,
    retry_backoff_s: float = 0.0,
    backoff_seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
    journal: str | os.PathLike | None = None,
    resume: bool = False,
    progress: Callable[[SweepProgress], None] | None = None,
    kill_grace_s: float = KILL_GRACE_S,
    telemetry: bool = False,
    evaluate: Callable[..., dict[str, Any]] | None = None,
    engine: str = "auto",
) -> SweepReport:
    """Evaluate every design point; never raises for a failing point.

    Parameters
    ----------
    points:
        :class:`DesignSpec` records (required for ``workers > 0``) or
        :class:`DesignPoint` closures (in-process evaluation only).
    workers:
        ``0`` evaluates in-process, sequentially; ``N > 0`` fans points
        out over up to ``N`` worker processes.
    timeout_s:
        Per-point wall-clock budget (``None`` = unlimited).  Enforced
        inside the co-simulation loop via
        :func:`repro.cosim.environment.run_timeout`; parallel workers
        that overrun it by more than ``kill_grace_s`` are hard-killed.
    retries:
        Extra attempts granted to ``timeout``/``error`` points.
    retry_backoff_s:
        Base delay of the seeded jittered exponential backoff slept
        before each retry (``0.0`` retries immediately).  The schedule
        is deterministic per (``backoff_seed``, point name, attempt)
        and recorded on ``DSEResult.backoff_s``.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        caching.
    journal:
        Path of a JSON-lines resume journal; every completed point is
        appended (and flushed) as it lands.  Without ``resume`` an
        existing journal is overwritten.
    resume:
        Replay completed points from ``journal`` instead of
        re-evaluating them; only the points missing from the journal
        run.  Raises ``ValueError`` if the journal belongs to a
        different sweep spec.
    progress:
        Callback receiving a :class:`SweepProgress` after each
        completed point.
    telemetry:
        Run every point inside a :func:`~repro.telemetry.telemetry_scope`
        and attach its metric snapshot (a plain dict) to the
        :class:`DSEResult` — works in workers too, since the scope is
        entered worker-side.
    evaluate:
        Replacement for the per-point evaluation function (same
        signature and payload contract as the internal default).  Must
        be a picklable module-level function for ``workers > 0``.  This
        is how the fault-injection campaign runner reuses the pool.
    engine:
        Hardware execution engine every point is evaluated under
        (``"auto" | "compiled" | "interpreter"``), applied as the
        ambient :func:`~repro.runapi.engine_scope` around each
        evaluation — in-process and worker-side alike.  For the
        lockstep vector engine, use :func:`sweep_batched`.
    """
    points = list(points)
    total = len(points)
    cache_path = str(cache_dir) if cache_dir is not None else None
    evaluate_fn = evaluate if evaluate is not None else _evaluate
    start = time.perf_counter()
    results: list[DSEResult | None] = [None] * total
    attempts = [0] * total
    backoffs: list[list[float]] = [[] for _ in range(total)]
    state = {"done": 0, "cache_hits": 0, "cycles": 0}

    journal_obj: SweepJournal | None = None
    replayed: dict[int, dict[str, Any]] = {}
    if journal is not None:
        spec_id = sweep_spec_id(points)
        journal_obj = SweepJournal(journal)
        if resume:
            replayed = journal_obj.load(spec_id, total)
        else:
            journal_obj.path.unlink(missing_ok=True)
        journal_obj.open(spec_id, total)

    def record(
        index: int,
        payload: dict[str, Any],
        active: int,
        journal_write: bool = True,
    ) -> None:
        result = _to_dse_result(
            points[index], payload, attempts[index], backoffs[index]
        )
        results[index] = result
        state["done"] += 1
        if result.cache_hit:
            state["cache_hits"] += 1
        if result.result is not None:
            state["cycles"] += result.result.cycles
        if journal_obj is not None and journal_write:
            journal_obj.record(
                index, attempts[index], backoffs[index], payload
            )
        if progress is not None:
            progress(
                SweepProgress(
                    total=total,
                    done=state["done"],
                    cache_hits=state["cache_hits"],
                    active_workers=active,
                    wall_seconds=time.perf_counter() - start,
                    cycles_done=state["cycles"],
                    last=result,
                )
            )

    for index in sorted(replayed):
        entry = replayed[index]
        attempts[index] = int(entry.get("attempts", 1))
        backoffs[index] = [float(d) for d in entry.get("backoff_s", [])]
        record(index, _payload_from_jsonable(entry["payload"]),
               active=0, journal_write=False)

    remaining = [i for i in range(total) if results[i] is None]
    try:
        if workers <= 0:
            for index in remaining:
                while True:
                    attempts[index] += 1
                    with engine_scope(engine):
                        payload = evaluate_fn(points[index], cache_path,
                                              timeout_s, telemetry)
                    if (
                        payload["status"] in RETRIABLE
                        and attempts[index] <= retries
                    ):
                        delay = retry_backoff_delay(
                            retry_backoff_s, points[index].name,
                            attempts[index], backoff_seed,
                        )
                        backoffs[index].append(delay)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    break
                record(index, payload, active=0)
        elif remaining:
            for point in points:
                if not isinstance(point, DesignSpec):
                    raise TypeError(
                        f"parallel sweeps need picklable DesignSpec points; "
                        f"{point.name!r} is a {type(point).__name__} "
                        f"(closure-built) — evaluate it with workers=0 or "
                        f"describe it as a DesignSpec"
                    )
            _run_parallel(
                points, workers, timeout_s, retries, cache_path,
                kill_grace_s, attempts, record, telemetry,
                remaining=remaining,
                retry_backoff_s=retry_backoff_s,
                backoff_seed=backoff_seed,
                backoffs=backoffs,
                evaluate=evaluate,
                engine=engine,
            )
    finally:
        if journal_obj is not None:
            journal_obj.close()

    return SweepReport(
        results=list(results),  # type: ignore[arg-type]
        wall_seconds=time.perf_counter() - start,
        workers=max(workers, 0),
    )


def _run_parallel(
    points: list[DesignSpec],
    workers: int,
    timeout_s: float | None,
    retries: int,
    cache_path: str | None,
    kill_grace_s: float,
    attempts: list[int],
    record: Callable[..., None],
    telemetry: bool = False,
    remaining: list[int] | None = None,
    retry_backoff_s: float = 0.0,
    backoff_seed: int = 0,
    backoffs: list[list[float]] | None = None,
    evaluate: Callable[..., dict[str, Any]] | None = None,
    engine: str = "auto",
) -> None:
    """Fan points out over a bounded pool of worker processes."""
    ctx = multiprocessing.get_context()
    pending: deque[int] = deque(
        remaining if remaining is not None else range(len(points))
    )
    if backoffs is None:
        backoffs = [[] for _ in points]
    # index -> earliest perf_counter() time it may be (re-)launched
    ready_at: dict[int, float] = {}
    # index -> (process, parent_conn, hard_deadline or None)
    active: dict[int, tuple[Any, Any, float | None]] = {}

    def launch(index: int) -> None:
        attempts[index] += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(points[index], cache_path, timeout_s, child_conn,
                  telemetry, evaluate, engine),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = (
            time.perf_counter() + timeout_s + kill_grace_s
            if timeout_s is not None
            else None
        )
        active[index] = (proc, parent_conn, deadline)

    def finish(index: int, payload: dict[str, Any]) -> None:
        proc, conn, _ = active.pop(index)
        conn.close()
        proc.join()
        if payload["status"] in RETRIABLE and attempts[index] <= retries:
            delay = retry_backoff_delay(
                retry_backoff_s, points[index].name,
                attempts[index], backoff_seed,
            )
            backoffs[index].append(delay)
            if delay > 0:
                ready_at[index] = time.perf_counter() + delay
            pending.append(index)
        else:
            record(index, payload, active=len(active))

    try:
        while pending or active:
            while pending and len(active) < workers:
                now = time.perf_counter()
                index = next(
                    (i for i in pending if ready_at.get(i, 0.0) <= now),
                    None,
                )
                if index is None:
                    break  # all queued points are backing off
                pending.remove(index)
                ready_at.pop(index, None)
                launch(index)

            conns = {conn: index for index, (_, conn, _) in active.items()}
            if conns:
                ready = _conn_wait(list(conns), timeout=0.05)
            else:
                time.sleep(0.01)  # only backing-off points remain
                ready = []
            for conn in ready:
                index = conns[conn]
                proc = active[index][0]
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    # the worker died before sending (crash / kill)
                    proc.join()
                    payload = {
                        "status": STATUS_ERROR,
                        "error": (
                            f"worker exited without a result "
                            f"(exit code {proc.exitcode})"
                        ),
                        "result": None,
                        "estimate": None,
                        "fingerprint": None,
                        "cache_hit": False,
                    }
                finish(index, payload)

            now = time.perf_counter()
            for index, (proc, conn, deadline) in list(active.items()):
                if deadline is not None and now >= deadline:
                    proc.terminate()
                    proc.join()
                    finish(
                        index,
                        {
                            "status": STATUS_TIMEOUT,
                            "error": (
                                f"worker killed after exceeding the "
                                f"{timeout_s}s point budget "
                                f"(+{kill_grace_s}s grace)"
                            ),
                            "result": None,
                            "estimate": None,
                            "fingerprint": None,
                            "cache_hit": False,
                        },
                    )
                elif not proc.is_alive() and not conn.poll():
                    proc.join()
                    finish(
                        index,
                        {
                            "status": STATUS_ERROR,
                            "error": (
                                f"worker exited without a result "
                                f"(exit code {proc.exitcode})"
                            ),
                            "result": None,
                            "estimate": None,
                            "fingerprint": None,
                            "cache_hit": False,
                        },
                    )
    finally:
        for proc, conn, _ in active.values():
            proc.terminate()
            proc.join()
            conn.close()


# ----------------------------------------------------------------------
# Synthetic design points (engine calibration / overlap measurement)
# ----------------------------------------------------------------------
class SyntheticDesign:
    """A wait-bound design point: ``run()`` sleeps for ``seconds`` and
    reports ``cycles`` simulated cycles.

    Used to calibrate scheduler overhead and measure worker overlap
    independently of host core count — a sleeping point occupies a
    worker slot without competing for CPU, so N workers give ~N×
    overlap even on a single core.
    """

    def __init__(self, seconds: float = 0.1, cycles: int = 50_000):
        self.seconds = seconds
        self.cycles = cycles

    def run(self) -> CoSimResult:
        time.sleep(self.seconds)
        return CoSimResult(
            exit_code=0,
            cycles=self.cycles,
            instructions=self.cycles,
            stall_cycles=0,
            wall_seconds=self.seconds,
            simulated_seconds=self.cycles / 50e6,
            halt_reason=HaltReason.EXIT,
        )

    def estimate(self) -> DesignEstimate:
        from repro.resources.estimator import estimate_design

        return estimate_design()


def synthetic_specs(n: int, seconds: float = 0.1) -> list[DesignSpec]:
    """``n`` wait-bound points for overlap measurement."""
    return [
        DesignSpec(
            name=f"synthetic-{i}",
            factory="repro.cosim.sweep:SyntheticDesign",
            params={"seconds": seconds, "cycles": 50_000 + i},
        )
        for i in range(n)
    ]
