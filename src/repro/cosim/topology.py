"""Named multi-processor FSL topologies.

The paper's environment couples *one* MicroBlaze to its peripherals;
the systems it motivates are arrays of soft processors wired together
by the same FSL point-to-point links.  A :class:`TopologySpec` is the
pure-data description of such an array: K processors plus a set of
directed :class:`LinkSpec` edges, each edge one FSL FIFO connected as a
master (``put``) channel on the source CPU and a slave (``get``)
channel on the destination CPU.

Three named families cover the classic arrangements:

``pipeline``  CPU *i* feeds CPU *i+1* (channel 0 both ends),
``ring``      a pipeline closed back from the last CPU to the first,
``mesh``      a 2-D grid with bidirectional links between horizontal
              and vertical neighbours.  Per-node channel convention:
              east = 0, west = 1, south = 2, north = 3, for both the
              ``put`` and the ``get`` direction — an east-bound word
              leaves on channel 0 and arrives on the receiver's
              channel 1 (its west port).

Specs are frozen dataclasses with a stable dict round-trip, so a
topology can ride inside a conformance scenario, a golden-trace file
or a checkpoint fingerprint.  Link channel *names* are derived from
the spec (``link_{src}o{ch}_{dst}i{ch}``) and are unique across the
whole system — state dicts, telemetry tracks and fault targets key on
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.fsl import FSLChannel
from repro.iss.fsl import NUM_FSL

TOPOLOGY_KINDS = ("pipeline", "ring", "mesh", "custom")


class TopologyError(ValueError):
    """An ill-formed topology: out-of-range node, duplicate channel."""


@dataclass(frozen=True)
class LinkSpec:
    """One directed FSL link between two CPUs.

    The word stream flows ``src`` → ``dst``: the source CPU ``put``s on
    its master channel ``src_channel``, the destination CPU ``get``s on
    its slave channel ``dst_channel``.
    """

    src: int
    dst: int
    src_channel: int = 0
    dst_channel: int = 0

    @property
    def name(self) -> str:
        return (f"link_{self.src}o{self.src_channel}"
                f"_{self.dst}i{self.dst_channel}")

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "src_channel": self.src_channel,
            "dst_channel": self.dst_channel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkSpec":
        return cls(
            src=int(data["src"]),
            dst=int(data["dst"]),
            src_channel=int(data.get("src_channel", 0)),
            dst_channel=int(data.get("dst_channel", 0)),
        )


@dataclass(frozen=True)
class TopologySpec:
    """K CPUs plus the directed FSL links between them."""

    kind: str
    n_cpus: int
    links: tuple[LinkSpec, ...] = ()
    rows: int = 0  # mesh only
    cols: int = 0  # mesh only

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise TopologyError(f"unknown topology kind {self.kind!r}")
        if self.n_cpus < 1:
            raise TopologyError("a topology needs at least one CPU")
        seen_out: set[tuple[int, int]] = set()
        seen_in: set[tuple[int, int]] = set()
        for link in self.links:
            for node in (link.src, link.dst):
                if not 0 <= node < self.n_cpus:
                    raise TopologyError(
                        f"link {link.name}: node {node} out of range "
                        f"for {self.n_cpus} CPUs")
            for ch in (link.src_channel, link.dst_channel):
                if not 0 <= ch < NUM_FSL:
                    raise TopologyError(
                        f"link {link.name}: FSL channel {ch} out of range")
            out_key = (link.src, link.src_channel)
            in_key = (link.dst, link.dst_channel)
            if out_key in seen_out:
                raise TopologyError(
                    f"output channel {out_key} used by two links")
            if in_key in seen_in:
                raise TopologyError(
                    f"input channel {in_key} used by two links")
            seen_out.add(out_key)
            seen_in.add(in_key)

    # -- named families -------------------------------------------------
    @classmethod
    def pipeline(cls, n_cpus: int) -> "TopologySpec":
        """CPU 0 → CPU 1 → … → CPU n-1, channel 0 everywhere."""
        links = tuple(LinkSpec(src=i, dst=i + 1)
                      for i in range(n_cpus - 1))
        return cls(kind="pipeline", n_cpus=n_cpus, links=links)

    @classmethod
    def ring(cls, n_cpus: int) -> "TopologySpec":
        """A pipeline with a wrap-around link from the last CPU back to
        CPU 0 — tokens circulate."""
        if n_cpus < 2:
            raise TopologyError("a ring needs at least two CPUs")
        links = tuple(LinkSpec(src=i, dst=(i + 1) % n_cpus)
                      for i in range(n_cpus))
        return cls(kind="ring", n_cpus=n_cpus, links=links)

    #: per-node FSL channel ids for the mesh directions (both put and
    #: get side): a word sent east leaves on EAST and arrives on the
    #: receiver's WEST channel, etc.
    EAST, WEST, SOUTH, NORTH = 0, 1, 2, 3

    @classmethod
    def mesh(cls, rows: int, cols: int) -> "TopologySpec":
        """A rows×cols grid with bidirectional horizontal and vertical
        neighbour links (node index = row*cols + col)."""
        if rows < 1 or cols < 1:
            raise TopologyError("mesh needs rows >= 1 and cols >= 1")
        links: list[LinkSpec] = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:  # horizontal pair
                    east = node + 1
                    links.append(LinkSpec(node, east, cls.EAST, cls.WEST))
                    links.append(LinkSpec(east, node, cls.WEST, cls.EAST))
                if r + 1 < rows:  # vertical pair
                    south = node + cols
                    links.append(LinkSpec(node, south, cls.SOUTH, cls.NORTH))
                    links.append(LinkSpec(south, node, cls.NORTH, cls.SOUTH))
        return cls(kind="mesh", n_cpus=rows * cols, links=tuple(links),
                   rows=rows, cols=cols)

    @classmethod
    def named(cls, kind: str, n_cpus: int = 0, rows: int = 0,
              cols: int = 0) -> "TopologySpec":
        """Build one of the named families from scalar parameters."""
        if kind == "pipeline":
            return cls.pipeline(n_cpus)
        if kind == "ring":
            return cls.ring(n_cpus)
        if kind == "mesh":
            return cls.mesh(rows, cols)
        raise TopologyError(f"not a named topology family: {kind!r}")

    # -- views ----------------------------------------------------------
    def node_coord(self, node: int) -> tuple[int, int]:
        """(row, col) of a mesh node."""
        if self.kind != "mesh" or self.cols < 1:
            raise TopologyError("node_coord is only defined for meshes")
        return divmod(node, self.cols)

    def links_from(self, node: int) -> tuple[LinkSpec, ...]:
        return tuple(l for l in self.links if l.src == node)

    def links_into(self, node: int) -> tuple[LinkSpec, ...]:
        return tuple(l for l in self.links if l.dst == node)

    def link_names(self) -> tuple[str, ...]:
        return tuple(l.name for l in self.links)

    def signature(self) -> tuple:
        """Structural identity for lockstep grouping and checkpoint
        fingerprints: two systems with the same signature have the same
        wiring (node count, every link endpoint and channel)."""
        return (
            self.kind, self.n_cpus, self.rows, self.cols,
            tuple((l.src, l.src_channel, l.dst, l.dst_channel)
                  for l in self.links),
        )

    def build_channels(self, depth: int = FSLChannel.DEFAULT_DEPTH,
                       ) -> dict[str, FSLChannel]:
        """One FSL FIFO per link, keyed by link name, in link order."""
        return {
            link.name: FSLChannel(depth=depth, name=link.name)
            for link in self.links
        }

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "n_cpus": self.n_cpus,
            "rows": self.rows,
            "cols": self.cols,
            "links": [l.to_dict() for l in self.links],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        return cls(
            kind=data["kind"],
            n_cpus=int(data["n_cpus"]),
            rows=int(data.get("rows", 0)),
            cols=int(data.get("cols", 0)),
            links=tuple(LinkSpec.from_dict(l)
                        for l in data.get("links", [])),
        )
