"""The "MicroBlaze Simulink block" (paper Section III-A/III-B).

The block provides the bridge between the software simulation and the
hardware model:

1. it owns the FSL FIFO channels (data + control bit, blocking and
   non-blocking modes),
2. it exposes the hardware-side handshake ports into the sysgen model
   through :class:`~repro.sysgen.blocks.fsl.FSLRead` /
   :class:`~repro.sysgen.blocks.fsl.FSLWrite` blocks
   (``Out#_data/exists/control`` and ``In#_data/write/full`` in the
   paper's naming),
3. it connects the same channel objects to the CPU's FSL unit so a
   blocking ``get``/``put`` stalls the simulated processor exactly
   until the hardware side produces/consumes data.

Channel binding may happen before or after ``model.compile()``: the
compiled schedule fetches each FSL block's bound channel at call entry
(never at code-generation time), so ``master_fsl``/``slave_fsl`` can
be called at any point during model construction and an unbound block
still raises :class:`~repro.sysgen.blocks.fsl.FSLBindError` at the
same step it would under the interpreter.
"""

from __future__ import annotations

from repro.bus.fsl import FSLChannel
from repro.iss.fsl import FSLPorts, NUM_FSL
from repro.resources.types import Resources
from repro.sysgen.blocks.fsl import FSLRead, FSLWrite
from repro.sysgen.model import Model


class MicroBlazeBlock:
    """FSL hub between one CPU and one sysgen model."""

    def __init__(self, model: Model, fifo_depth: int = FSLChannel.DEFAULT_DEPTH,
                 prefix: str = "mb_"):
        """``prefix`` namespaces the channel names (``{prefix}out{id}`` /
        ``{prefix}in{id}``).  The default keeps the historical single-CPU
        names; multi-CPU environments pass a per-node prefix so channel
        names stay unique across the whole topology (checkpoint state
        dicts, telemetry tracks and fault targets are keyed by name)."""
        self.model = model
        self.fifo_depth = fifo_depth
        self.prefix = prefix
        self.fsl_ports = FSLPorts()  # plugs into the CPU
        self._to_hw: dict[int, FSLChannel] = {}
        self._from_hw: dict[int, FSLChannel] = {}
        self.read_blocks: dict[int, FSLRead] = {}
        self.write_blocks: dict[int, FSLWrite] = {}

    # ------------------------------------------------------------------
    def master_fsl(self, channel_id: int, name: str | None = None) -> FSLRead:
        """Create a processor→peripheral FSL (CPU ``put`` side) and
        return the hardware-side :class:`FSLRead` block, already added
        to the model and bound to the channel."""
        self._check(channel_id, self._to_hw)
        channel = FSLChannel(depth=self.fifo_depth,
                             name=f"{self.prefix}out{channel_id}")
        self._to_hw[channel_id] = channel
        self.fsl_ports.connect_output(channel_id, channel)
        block = FSLRead(name or f"fsl_out{channel_id}")
        self.model.add(block)
        block.bind(channel)
        self.read_blocks[channel_id] = block
        return block

    def slave_fsl(self, channel_id: int, name: str | None = None) -> FSLWrite:
        """Create a peripheral→processor FSL (CPU ``get`` side) and
        return the hardware-side :class:`FSLWrite` block."""
        self._check(channel_id, self._from_hw)
        channel = FSLChannel(depth=self.fifo_depth,
                             name=f"{self.prefix}in{channel_id}")
        self._from_hw[channel_id] = channel
        self.fsl_ports.connect_input(channel_id, channel)
        block = FSLWrite(name or f"fsl_in{channel_id}")
        self.model.add(block)
        block.bind(channel)
        self.write_blocks[channel_id] = block
        return block

    @staticmethod
    def _check(channel_id: int, table: dict) -> None:
        if not 0 <= channel_id < NUM_FSL:
            raise ValueError(f"FSL channel id out of range: {channel_id}")
        if channel_id in table:
            raise ValueError(f"FSL channel {channel_id} already created")

    # ------------------------------------------------------------------
    def to_hw_channel(self, channel_id: int) -> FSLChannel:
        return self._to_hw[channel_id]

    def from_hw_channel(self, channel_id: int) -> FSLChannel:
        return self._from_hw[channel_id]

    @property
    def n_links(self) -> int:
        """Total FSL links instantiated (for resource estimation)."""
        return len(self._to_hw) + len(self._from_hw)

    def link_resources(self) -> Resources:
        from repro.resources.datasheet import FSL_LINK_RESOURCES

        return self.n_links * FSL_LINK_RESOURCES

    def channels(self) -> tuple[FSLChannel, ...]:
        """All FSL channels of the block, processor→peripheral first —
        the public view of its links (companion to
        :meth:`channel_occupancies`), used by tracing and diagnostics
        instead of reaching into the internal channel tables."""
        return (*self._to_hw.values(), *self._from_hw.values())

    def channel_occupancies(self) -> dict[str, int]:
        """Current FIFO occupancy per channel, keyed by channel name —
        both directions.  Diagnostic view used e.g. by the co-simulation
        deadlock reporter."""
        return {ch.name: ch.occupancy for ch in self.channels()}

    def reset(self, reset_stats: bool = True) -> None:
        for ch in self.channels():
            ch.reset(reset_stats=reset_stats)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Per-channel FIFO contents + statistics, keyed by name."""
        return {ch.name: ch.state_dict() for ch in self.channels()}

    def load_state(self, state: dict) -> None:
        channels = {ch.name: ch for ch in self.channels()}
        if set(state) != set(channels):
            missing = set(channels).symmetric_difference(state)
            raise ValueError(
                "checkpoint channel set does not match this block: "
                + ", ".join(sorted(missing))
            )
        for name, ch in channels.items():
            ch.load_state(state[name])
