"""Lockstep batched co-simulation: N variants of one design at once.

A :class:`BatchedCoSimulation` couples N scalar CPUs (one per lane,
each with its own program image, FSL channels and telemetry) with ONE
:class:`~repro.sysgen.batched.BatchedModel` that steps all N hardware
models as ``(N,)`` numpy arrays.  Per cycle: every running lane's CPU
ticks, then the vector model advances one clock for the running lanes.
The FSL interface blocks dispatch per lane onto the real channel
objects, so blocking semantics, drop counters and telemetry events are
bit-identical to N independent scalar runs.

Divergence is handled by lane masking: a lane that halts, reaches its
cycle budget or pauses at a per-lane target freezes (its state arrays,
probes and ports keep the exact values of its final executed cycle)
while the other lanes keep vectoring.  Frozen lanes can thaw again —
that is how segmented drivers (fault-injection campaigns) advance each
lane to its own next event.

Divergence the mask cannot express is handled in two further tiers.
Per-cycle output pinning (``stuck_at`` faults) stays in lockstep via
:meth:`BatchedCoSimulation.force_port`, and stall windows where every
running CPU is blocked and the vector hardware is observably at a
fixed point are bulk-skipped (:meth:`BatchedCoSimulation._maybe_skip`)
— the lockstep twin of the scalar engine's fast-forward.

Lane eviction
-------------
Some events cannot be vectorized faithfully: a watchdog trip while a
forcing is active (the scalar engine checks no boundaries inside a
``stuck_at`` window), a crash inside the shared vector step, a raising
CPU, or a forced port the vector schedule does not track.  An evicted
lane is *restarted
from cycle 0 on the scalar engine* by calling its factory again —
simulations here are deterministic, so the replay reproduces the lane
bit-for-bit and then produces the canonical scalar outcome.  The
equivalence suite forces evictions to prove this.

Wire-up
-------
``mb32-dse --batch[=WIDTH]`` routes design sweeps through
:func:`repro.cosim.sweep_batched.sweep_batched`; ``mb32-faultsim
--batch[=WIDTH]`` routes SEU campaigns through
``repro.faults.campaign.run_campaign(batch_width=...)``; both build on
this class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.cosim.environment import (
    CoSimDeadlock,
    CoSimResult,
    CoSimTimeout,
    CoSimulation,
)
from repro.iss.cpu import HaltReason
from repro.runapi import RunPolicy
from repro.sysgen.block import IDLE_FOREVER
from repro.runapi.engine import engine_scope
from repro.sysgen.batched import BatchedModel, BatchUnsupported


@dataclass
class LaneResult:
    """Outcome of one lane, folded the way the conformance oracle folds
    a scalar run: a normal finish carries the :class:`CoSimResult`, a
    raising finish (deadlock, timeout, crash) carries the exception."""

    lane: int
    result: CoSimResult | None
    error: Exception | None = None
    evicted: bool = False
    eviction_reason: str | None = None

    @property
    def status(self) -> str:
        if self.error is not None:
            if isinstance(self.error, CoSimDeadlock):
                return "deadlock"
            return f"error:{type(self.error).__name__}"
        if self.result is not None and \
                self.result.halt_reason is HaltReason.MAX_CYCLES:
            return "max_cycles"
        return "exit"

    @property
    def error_text(self) -> str:
        return str(self.error) if self.error is not None else ""


class _LaneState:
    """Per-lane bookkeeping of the lockstep loop (absolute cycles)."""

    __slots__ = ("cycle0", "instr0", "stall0", "window", "next_check",
                 "target", "evict_at", "done")

    def __init__(self, cpu, window: int):
        self.cycle0 = cpu.cycle
        self.instr0 = cpu.stats.instructions
        self.stall0 = cpu.stats.stall_cycles
        self.window = window
        # absolute-aligned watchdog boundaries, exactly as the scalar
        # run loop computes them — restore- and segment-transparent
        self.next_check = cpu.cycle + (window - cpu.cycle % window)
        self.target = cpu.cycle
        self.evict_at: int | None = None
        self.done = False


class BatchedCoSimulation:
    """N structurally identical co-simulations advancing in lockstep.

    ``factories`` are zero-argument callables, each returning a fresh
    :class:`~repro.cosim.environment.CoSimulation` for its lane.  They
    are called once at construction (under an ambient
    ``engine_scope("interpreter")`` so no per-lane scalar codegen is
    wasted — the lane models become interpreter-pinned clones of the
    one vector schedule) and called again, under the default scalar
    engine, whenever a lane is evicted.

    The lane models must be structurally identical (same blocks, ports,
    wiring and probes; value-like parameters may differ) and must not
    use ``extra_models`` — otherwise :class:`BatchUnsupported`.

    ``force_evict`` lists lanes to evict unconditionally once they have
    run ``force_evict_cycle`` cycles — a debug/CI knob proving the
    eviction path is bit-exact.  ``rebuilt_hook(lane, sim)`` is invoked
    after an eviction rebuilds a lane's scalar simulation, so harnesses
    can re-attach observers (e.g. an FSL trace) to the fresh object.
    """

    def __init__(
        self,
        factories: list[Callable[[], CoSimulation]] | None = None,
        *,
        sims: list[CoSimulation] | None = None,
        force_evict: Iterable[int] = (),
        force_evict_cycle: int = 64,
        rebuilt_hook: Callable[[int, CoSimulation], None] | None = None,
    ):
        if sims is not None:
            # pre-built (possibly checkpoint-restored) lanes from a
            # segmented driver such as the batched fault campaign; the
            # driver owns eviction, so factories are optional
            self.sims = list(sims)
            self.factories = list(factories) if factories else \
                [None] * len(self.sims)
            if not self.sims:
                raise BatchUnsupported(
                    "batched co-simulation needs >= 1 lane")
        else:
            if not factories:
                raise BatchUnsupported(
                    "batched co-simulation needs >= 1 lane")
            self.factories = list(factories)
            with engine_scope("interpreter"):
                self.sims = [factory() for factory in self.factories]
        self.rebuilt_hook = rebuilt_hook
        for lane, sim in enumerate(self.sims):
            if sim.extra_models:
                raise BatchUnsupported(
                    f"lane {lane} uses extra_models; the lockstep engine "
                    "batches single-model designs only"
                )
        self.batched = BatchedModel([sim.model for sim in self.sims])
        self.n = len(self.sims)
        self._force_evict = set(force_evict)
        if force_evict_cycle < 1:
            raise ValueError("force_evict_cycle must be >= 1")
        self._force_evict_cycle = force_evict_cycle
        self._st = [
            _LaneState(sim.cpu, sim.DEADLOCK_WINDOW) for sim in self.sims
        ]
        for lane in self._force_evict:
            st = self._st[lane]
            st.evict_at = st.cycle0 + force_evict_cycle
        #: lane -> eviction reason, filled by :meth:`_advance`; the
        #: caller (run() or a segmented driver) decides what to do.
        self.pending_evictions: dict[int, str] = {}
        self._timeouts: dict[int, Exception] = {}
        self._budgets: list[int] = [0] * self.n
        self._policy = RunPolicy()
        #: lane -> (port-store index, clone port, value, until-cycle):
        #: per-cycle output pinning, the lockstep form of ``stuck_at``
        self._forcings: dict[int, tuple[int, Any, int, int]] = {}
        # -- vectorized fast-forward state (see advance/_signature) --
        self._stores_matter = any(
            sim._stores_touch_hw for sim in self.sims)
        self._quiet = False
        self._hw_sig = -1
        self._probe_wait = 0
        self._probe_backoff = 1
        self._probe_image = None
        self._fb_watch: list | None = None
        #: lane -> lane CPU signature at freeze: lanes individually
        #: paused at their own hardware fixed point while their CPUs
        #: compute (see advance)
        self._frozen: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Per-lane freeze: the lockstep twin of the scalar engine's
    # per-run fast-forward, but per lane — a lane whose slice of the
    # vector state sat unchanged through a probe step with its fallback
    # blocks idle forever is masked out of the step until its own CPU's
    # FSL/store activity resumes, then caught up with frozen probe
    # samples.
    # ------------------------------------------------------------------
    def _lane_sig(self, cpu) -> int:
        stats = cpu.stats
        sig = stats.fsl_puts + stats.fsl_gets
        if self._stores_matter:
            sig += stats.stores
        return sig

    def _thaw(self, lane: int, activate: bool = True) -> None:
        """Flush a frozen lane's lag (probes + clone cycle counter) up
        to the vector clock and optionally rejoin it to the stepping
        set."""
        self._frozen.pop(lane)
        batched = self.batched
        batched.fast_forward_lane(
            lane, batched.cycle - batched.models[lane].cycle)
        if activate:
            batched.activate(lane)

    def _thaw_all(self, activate: bool = False) -> None:
        for lane in list(self._frozen):
            self._thaw(lane, activate)

    # ------------------------------------------------------------------
    @property
    def fallback_blocks(self) -> list[str]:
        """Blocks dispatched per lane instead of vectorized."""
        return self.batched.fallback_blocks

    def lane(self, lane: int) -> CoSimulation:
        """The per-lane simulation view — a real scalar
        :class:`CoSimulation` (after eviction: the replacement one), so
        capture/diagnosis code written for scalar runs works unchanged.
        """
        return self.sims[lane]

    # ------------------------------------------------------------------
    # The lockstep advance kernel
    # ------------------------------------------------------------------
    def advance(self, targets: dict[int, int],
                deadline: float | None = None,
                wall_timeout_s: float | None = None) -> None:
        """Advance each keyed lane to absolute cycle ``targets[lane]``.

        A lane stops early when its CPU halts, its watchdog boundary
        shows no progress (queued in :attr:`pending_evictions`), or its
        forced-eviction cycle arrives.  Lanes not in ``targets`` (and
        already-done / eviction-pending lanes) stay frozen.  All
        running lanes advance one clock per iteration — true lockstep.
        Segmented drivers (the batched fault campaign) call this
        repeatedly with per-lane event cycles; :meth:`run` calls it
        once with the final budgets.
        """
        batched = self.batched
        running: list[int] = []
        for lane, target in targets.items():
            st = self._st[lane]
            if st.done or lane in self.pending_evictions:
                continue
            st.target = target
            cpu = self.sims[lane].cpu
            if not cpu.halted and cpu.cycle < target:
                running.append(lane)
        running.sort()
        for lane in range(self.n):
            if lane in running:
                batched.activate(lane)
            else:
                batched.deactivate(lane)

        while running:
            cpus = [self.sims[lane].cpu for lane in running]
            stride = min(
                min(st.target, st.next_check,
                    st.evict_at if st.evict_at is not None else st.target)
                - cpu.cycle
                for st, cpu in (
                    (self._st[lane], self.sims[lane].cpu) for lane in running
                )
            )
            stride = max(stride, 1)
            crashed = False
            try:
                done = 0
                halted = False
                while done < stride:
                    if self._quiet and not self._forcings:
                        # --- CPU-only stretch: the vector hardware has
                        # been observed at a fixed point (see the probe
                        # below), so while no CPU activity reaches it,
                        # tick CPUs per cycle — bulk-advancing stalled
                        # windows — and advance the frozen vector clock
                        # in a single fast_forward at the end.  The
                        # lockstep twin of the scalar engine's hw_idle
                        # cycles and fast-forward skips.
                        if self._fb_watch is not None and \
                                not batched.fallback_outputs_unchanged(
                                    self._fb_watch):
                            self._quiet = False
                            self._fb_watch = None
                            continue
                        ff = 0
                        while done < stride:
                            horizon = min(
                                cpu.advance_horizon() for cpu in cpus)
                            if horizon > 0:
                                k = min(horizon, stride - done)
                                for cpu in cpus:
                                    cpu.advance(k)
                                done += k
                                ff += k
                                continue
                            halted = False
                            for lane, cpu in zip(running, cpus):
                                try:
                                    cpu.tick()
                                except Exception as exc:  # noqa: BLE001
                                    self.pending_evictions[lane] = (
                                        f"cpu raised "
                                        f"{type(exc).__name__}: {exc}"
                                    )
                                    batched.deactivate(lane)
                                    crashed = True
                            sig = self._signature(cpus)
                            if sig != self._hw_sig:
                                # this cycle's activity reaches the
                                # hardware: flush the frozen window,
                                # then really simulate this cycle
                                self._quiet = False
                                self._fb_watch = None
                                self._probe_wait = 0
                                batched.fast_forward(ff)
                                ff = 0
                                batched.step(1)
                                done += 1
                                break
                            for cpu in cpus:
                                halted |= cpu.halted
                            done += 1
                            ff += 1
                            if halted or crashed:
                                break
                        batched.fast_forward(ff)
                        if halted or crashed:
                            break
                        continue
                    probing = (
                        not self._quiet
                        and not self._forcings
                        and self._probe_wait <= 0
                    )
                    if probing:
                        self._probe_image = batched.state_image()
                    elif not self._quiet:
                        self._probe_wait -= 1
                    if self._forcings:
                        self._apply_forcings(running)
                    halted = False
                    for lane, cpu in zip(running, cpus):
                        try:
                            cpu.tick()
                        except Exception as exc:  # noqa: BLE001
                            # attributable: this lane's CPU raised — its
                            # scalar replay reproduces the crash exactly
                            self.pending_evictions[lane] = (
                                f"cpu raised {type(exc).__name__}: {exc}"
                            )
                            batched.deactivate(lane)
                            if lane in self._frozen:
                                del self._frozen[lane]
                            crashed = True
                        halted |= cpu.halted
                    if self._frozen:
                        # a frozen lane's CPU activity is about to reach
                        # its hardware: catch the lane up and step it
                        # through this very cycle, like the scalar
                        # engine's fast-forward flush
                        for lane, cpu in zip(running, cpus):
                            if lane in self._frozen and \
                                    self._lane_sig(cpu) != \
                                    self._frozen[lane]:
                                self._thaw(lane)
                    batched.step(1)
                    done += 1
                    if probing:
                        # arm quiescence only on direct evidence: the
                        # step changed nothing AND every per-lane
                        # fallback block is at an unbounded fixed point
                        changed = batched.changed_lanes(self._probe_image)
                        if not changed.any() \
                                and batched.fallback_idle_horizon(running) \
                                >= IDLE_FOREVER:
                            self._thaw_all(activate=True)
                            self._quiet = True
                            self._probe_backoff = 1
                            self._hw_sig = self._signature(cpus)
                            self._fb_watch = batched.fallback_outputs_image()
                        else:
                            # per-lane freeze: the same evidence, lane
                            # by lane — an unchanged slice plus idle
                            # fallback blocks pauses that lane alone
                            froze = False
                            for lane in running:
                                if lane in self._frozen \
                                        or lane in self._forcings \
                                        or changed[lane]:
                                    continue
                                if batched.fallback_idle_horizon([lane]) \
                                        < IDLE_FOREVER:
                                    continue
                                self._frozen[lane] = self._lane_sig(
                                    self.sims[lane].cpu)
                                batched.deactivate(lane)
                                froze = True
                            if froze:
                                # lanes are reaching their idle points:
                                # probe sooner to catch the rest
                                self._probe_backoff = max(
                                    1, self._probe_backoff // 4)
                            else:
                                self._probe_backoff = min(
                                    self._probe_backoff * 2, 512)
                            self._probe_wait = self._probe_backoff
                        self._probe_image = None
                    if halted or crashed:
                        break
            except Exception as exc:  # noqa: BLE001 - shared-step crash
                # A crash inside the shared vector step cannot be
                # attributed to one lane: evict every running lane and
                # let the scalar replays produce per-lane outcomes.
                reason = f"vector step raised {type(exc).__name__}: {exc}"
                self._frozen.clear()  # evicted lanes replay from scratch
                for lane in running:
                    if lane not in self.pending_evictions:
                        self.pending_evictions[lane] = reason
                    batched.deactivate(lane)
                return

            if deadline is not None and time.perf_counter() >= deadline:
                self._thaw_all(activate=False)
                for lane in running:
                    cpu = self.sims[lane].cpu
                    cycles = cpu.cycle - self._st[lane].cycle0
                    self._st[lane].done = True
                    self._timeouts[lane] = CoSimTimeout(
                        f"co-simulation exceeded its {wall_timeout_s:.3f}s "
                        f"wall-clock budget after {cycles} cycles at "
                        f"pc={cpu.pc:#010x}"
                    )
                    batched.deactivate(lane)
                return

            still: list[int] = []
            for lane in running:
                st = self._st[lane]
                cpu = self.sims[lane].cpu
                if lane in self.pending_evictions:
                    self._frozen.pop(lane, None)  # replayed from scratch
                    continue
                if cpu.halted:
                    if lane in self._frozen:
                        self._thaw(lane, activate=False)
                    batched.deactivate(lane)
                    continue
                if st.evict_at is not None and cpu.cycle >= st.evict_at:
                    self.pending_evictions[lane] = "forced eviction"
                    st.evict_at = None
                    self._frozen.pop(lane, None)
                    batched.deactivate(lane)
                    continue
                if cpu.cycle >= st.next_check:
                    if self._no_progress(lane):
                        self.pending_evictions[lane] = "deadlock watchdog"
                        if lane in self._frozen:
                            self._thaw(lane, activate=False)
                        batched.deactivate(lane)
                        continue
                    st.next_check = cpu.cycle + st.window
                if cpu.cycle >= st.target:
                    if lane in self._frozen:
                        self._thaw(lane, activate=False)
                    batched.deactivate(lane)
                    continue
                still.append(lane)
            running = still

    def _no_progress(self, lane: int) -> bool:
        """The scalar watchdog tripwire, per lane: boundary at an
        absolute multiple of the window, with the first-boundary grace.
        """
        st = self._st[lane]
        cpu = self.sims[lane].cpu
        boundary = cpu.cycle
        return (
            boundary >= 2 * st.window
            and cpu.stats.last_retire_cycle <= boundary - st.window
        )

    # ------------------------------------------------------------------
    # Vectorized fast-forward support
    # ------------------------------------------------------------------
    def _signature(self, cpus: list) -> int:
        """Monotonic count of CPU activity that can reach the hardware.

        While this is unchanged and ``_quiet`` is armed (a probe step
        observed the vector state at an exact fixed point with every
        per-lane fallback block idle), nothing can perturb the models:
        determinism turns the one observed no-op step into a standing
        guarantee, so cycles are spent on the CPUs alone and the vector
        clock catches up via :meth:`BatchedModel.fast_forward`.  Stores
        count only when some lane has OPB-mapped hardware registers —
        the same refinement the scalar engine's quiescence cache makes.
        """
        sig = 0
        if self._stores_matter:
            for cpu in cpus:
                stats = cpu.stats
                sig += stats.fsl_puts + stats.fsl_gets + stats.stores
        else:
            for cpu in cpus:
                stats = cpu.stats
                sig += stats.fsl_puts + stats.fsl_gets
        return sig

    # ------------------------------------------------------------------
    # Per-cycle output forcing (lockstep ``stuck_at``)
    # ------------------------------------------------------------------
    def force_port(self, lane: int, block_name: str, port_name: str,
                   value: int, until_cycle: int) -> None:
        """Pin one lane's ``block.port`` output to ``value`` before
        every lockstep cycle whose pre-step cycle is ``<= until_cycle``
        — exactly the scalar injector's force/step/re-force loop,
        including its trailing post-window force at the end cycle.
        Raises :class:`~repro.sysgen.batched.BatchUnsupported` when the
        port is not tracked by the vector schedule; the caller evicts.
        """
        idx, clone = self.batched.force_handle(block_name, port_name, lane)
        forced = value & 0xFFFFFFFF
        self._forcings[lane] = (idx, clone, forced, until_cycle)
        self.batched.poke_slot(idx, lane, forced)
        clone.value = forced
        self._quiet = False
        self._fb_watch = None

    def clear_forcing(self, lane: int) -> None:
        """Drop a lane's forcing (lane finished, halted or evicted)."""
        self._forcings.pop(lane, None)

    def hw_touched(self) -> None:
        """Invalidate the quiescence evidence after out-of-band state
        mutation (fault injection writing memory, channels or ports
        behind the engine's back)."""
        self._quiet = False
        self._hw_sig = -1
        self._probe_wait = 0
        self._probe_backoff = 1
        self._probe_image = None
        self._fb_watch = None
        self._thaw_all()

    def _apply_forcings(self, running: list[int]) -> None:
        """Re-pin forced ports for the coming cycle.  An entry expires
        one cycle after its window — the scalar loop's final post-step
        force leaves the port pinned entering the end cycle's step, and
        only producer writes after that overwrite it."""
        rs = set(running)
        expired = []
        for lane, (idx, clone, value, until) in self._forcings.items():
            if lane not in rs:
                continue
            if self.sims[lane].cpu.cycle > until:
                expired.append(lane)
                continue
            self.batched.poke_slot(idx, lane, value)
            clone.value = value
        for lane in expired:
            del self._forcings[lane]

    # ------------------------------------------------------------------
    def run(
        self,
        until: int | list[int] | None = None,
        *,
        policy: RunPolicy | None = None,
    ) -> list[LaneResult]:
        """Run every lane to software exit or its cycle budget.

        ``until`` is one budget for all lanes or a per-lane list (the
        per-lane variant is a divergence axis of the equivalence suite).
        ``policy.deadlock_window`` overrides every lane's watchdog;
        ``policy.wall_timeout_s`` bounds the whole batch — exceeding it
        records a :class:`CoSimTimeout` on each unfinished lane.

        One-shot: lanes end done or evicted; call-site drivers needing
        segmented advance use :meth:`_advance` directly.
        """
        if policy is None:
            policy = RunPolicy()
        if isinstance(until, list):
            if len(until) != self.n:
                raise ValueError(
                    f"per-lane budgets: expected {self.n}, got {len(until)}"
                )
            budgets = [policy.budget(u) for u in until]
        else:
            budgets = [policy.budget(until)] * self.n
        if policy.deadlock_window is not None:
            if policy.deadlock_window < 1:
                raise ValueError("deadlock_window must be >= 1")
            for lane, st in enumerate(self._st):
                st.window = policy.deadlock_window
                cycle = self.sims[lane].cpu.cycle
                st.next_check = cycle + (st.window - cycle % st.window)
        self._budgets = budgets
        self._policy = policy

        start = time.perf_counter()
        deadline = (start + policy.wall_timeout_s
                    if policy.wall_timeout_s is not None else None)
        targets = {
            lane: self._st[lane].cycle0 + budgets[lane]
            for lane in range(self.n)
        }
        self.advance(targets, deadline, policy.wall_timeout_s)

        results: list[LaneResult] = []
        for lane in range(self.n):
            if lane in self.pending_evictions:
                results.append(self._evict(lane))
            elif lane in self._timeouts:
                results.append(LaneResult(
                    lane, None, error=self._timeouts[lane]
                ))
            else:
                results.append(LaneResult(
                    lane, self._finish_lane(lane, start)
                ))
        return results

    def _finish_lane(self, lane: int, start: float) -> CoSimResult:
        st = self._st[lane]
        st.done = True
        cpu = self.sims[lane].cpu
        if not cpu.halted:
            cpu.halted = True
            cpu.halt_reason = HaltReason.MAX_CYCLES
        run_cycles = cpu.cycle - st.cycle0
        stats = cpu.stats
        return CoSimResult(
            exit_code=cpu.exit_code,
            cycles=run_cycles,
            instructions=stats.instructions - st.instr0,
            stall_cycles=stats.stall_cycles - st.stall0,
            # wall time is shared by the whole batch; per-lane wall is
            # reported as elapsed-at-finish and is not a conformance
            # observable
            wall_seconds=time.perf_counter() - start,
            simulated_seconds=run_cycles / cpu.config.frequency_hz,
            halt_reason=cpu.halt_reason,
        )

    # ------------------------------------------------------------------
    def _evict(self, lane: int) -> LaneResult:
        """Restart an evicted lane from cycle 0 on the scalar engine.

        Deterministic simulations make the replay bit-identical up to
        the eviction point, after which the scalar engine produces the
        canonical outcome (including raising
        :class:`~repro.cosim.environment.CoSimDeadlock` with its exact
        diagnostic text at exactly the cycle the watchdog fired)."""
        reason = self.pending_evictions.pop(lane)
        st = self._st[lane]
        st.done = True
        sim = self.factories[lane]()
        self.sims[lane] = sim
        if self.rebuilt_hook is not None:
            self.rebuilt_hook(lane, sim)
        try:
            result = sim.run(until=self._budgets[lane], policy=self._policy)
        except Exception as exc:  # noqa: BLE001 - outcome, not engine bug
            return LaneResult(lane, None, error=exc, evicted=True,
                              eviction_reason=reason)
        return LaneResult(lane, result, evicted=True, eviction_reason=reason)


# --------------------------------------------------------------------------
def lane_factory(build: Callable[[], Any]) -> Callable[[], CoSimulation]:
    """Adapt a design-instance builder (anything exposing ``program``,
    ``model``, ``mb`` and ``cpu_config``) into a lane factory."""

    def factory() -> CoSimulation:
        design = build()
        return CoSimulation(
            design.program, design.model, design.mb,
            cpu_config=design.cpu_config,
        )

    return factory
