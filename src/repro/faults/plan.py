"""Seeded fault plans.

A :class:`FaultSpec` pins one fault to an exact simulation cycle and
target — a register or memory bit flip, an FSL FIFO word corruption,
drop or duplication, or a stuck-at output on a hardware block.  A
:class:`FaultPlan` is the complete fault load of ONE simulation run;
campaigns (:mod:`repro.faults.campaign`) generate many single-fault
plans from a master seed, so every trial is reproducible from
``(seed, trial index)`` alone and plans round-trip through JSON for
worker processes and reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

#: everything the injector knows how to break in a single-CPU design
FAULT_KINDS = (
    "reg_flip",      # flip one bit of a general-purpose register
    "mem_flip",      # flip one bit of a BRAM word (code or data)
    "fifo_corrupt",  # flip one bit of a word queued in an FSL FIFO
    "fifo_drop",     # silently lose the word at the head of a FIFO
    "fifo_dup",      # duplicate a queued FIFO word
    "stuck_at",      # force a hardware block output for N cycles
)

#: additional kinds for K-CPU topologies (inter-CPU link and node
#: faults); kept out of :data:`FAULT_KINDS` so existing single-CPU
#: campaign seeds keep drawing byte-identical plans
MULTI_FAULT_KINDS = FAULT_KINDS + (
    "link_drop",     # an inter-CPU FSL link loses queued words
    "node_stall",    # one CPU's clock gates off for N cycles
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` names an FSL channel (FIFO kinds) or a ``block:port``
    pair (``stuck_at``); register/memory kinds derive their site from
    ``index`` alone.  ``index``/``bit`` are reduced modulo the valid
    range at injection time, so a spec is never invalid — at worst it
    lands on an empty FIFO and is recorded as not applied.
    """

    kind: str
    cycle: int
    target: str = ""
    index: int = 0
    bit: int = 0
    value: int = 0
    duration: int = 1

    def __post_init__(self) -> None:
        if self.kind not in MULTI_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.cycle < 1:
            raise ValueError("fault cycle must be >= 1")

    def describe(self) -> str:
        # node-targeted kinds carry the CPU node name in ``target`` on
        # multi-CPU plans ("" = the single CPU)
        at = f" on {self.target}" if self.target else ""
        site = {
            "reg_flip": lambda: f"r{1 + self.index % 31} "
                                f"bit {self.bit % 32}{at}",
            "mem_flip": lambda: f"word {self.index} bit {self.bit % 32}{at}",
            "fifo_corrupt": lambda: f"{self.target}[{self.index}] "
                                    f"bit {self.bit % 32}",
            "fifo_drop": lambda: f"{self.target} head",
            "fifo_dup": lambda: f"{self.target}[{self.index}]",
            "stuck_at": lambda: f"{self.target}={self.value:#x} "
                                f"for {self.duration} cycles",
            "link_drop": lambda: f"{self.target} loses "
                                 f"{max(1, self.duration)} word(s)",
            "node_stall": lambda: f"{self.target} gated for "
                                  f"{self.duration} cycles",
        }[self.kind]()
        return f"{self.kind} {site} @cycle {self.cycle}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "target": self.target,
            "index": self.index,
            "bit": self.bit,
            "value": self.value,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultSpec":
        return cls(**d)


@dataclass
class FaultPlan:
    """Every fault injected into one run, plus the seed that made it."""

    faults: list[FaultSpec] = field(default_factory=list)
    seed: str = ""

    @property
    def first_cycle(self) -> int:
        return min((f.cycle for f in self.faults), default=1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultPlan":
        return cls(
            faults=[FaultSpec.from_dict(f) for f in d.get("faults", [])],
            seed=d.get("seed", ""),
        )


def generate_plan(
    seed: str,
    *,
    max_cycle: int,
    mem_words: int,
    channels: tuple[str, ...] = (),
    ports: tuple[str, ...] = (),
    cpus: tuple[str, ...] = (),
    kinds: tuple[str, ...] = FAULT_KINDS,
    n_faults: int = 1,
) -> FaultPlan:
    """Draw a reproducible plan from ``seed``.

    ``max_cycle`` bounds injection cycles (use the fault-free baseline
    cycle count so faults land while the program is actually running);
    ``channels``/``ports`` are the available FIFO and ``block:port``
    targets — kinds with no target available are silently excluded.
    ``cpus`` names the processors of a K-CPU design: node-targeted
    kinds (``node_stall``, plus ``reg_flip``/``mem_flip`` site
    selection) draw from it; leave empty for single-CPU designs — the
    draw sequence is then bit-compatible with pre-multi plans.
    """
    usable = tuple(
        k for k in kinds
        if not (k.startswith("fifo") and not channels)
        and not (k == "link_drop" and not channels)
        and not (k == "node_stall" and not cpus)
        and not (k == "mem_flip" and mem_words < 1)
        and not (k == "stuck_at" and not ports)
    )
    if not usable:
        raise ValueError("no injectable fault kinds for this design")
    rng = random.Random(f"mb32-fault/{seed}")
    faults = []
    node_kinds = ("node_stall", "reg_flip", "mem_flip")
    for _ in range(n_faults):
        kind = rng.choice(usable)
        spec = FaultSpec(
            kind=kind,
            cycle=rng.randrange(1, max(2, max_cycle)),
            target=(
                rng.choice(channels)
                if kind.startswith("fifo") or kind == "link_drop"
                else rng.choice(ports) if kind == "stuck_at"
                else rng.choice(cpus) if cpus and kind in node_kinds
                else ""
            ),
            index=(
                rng.randrange(max(1, mem_words)) if kind == "mem_flip"
                else rng.randrange(64)
            ),
            bit=rng.randrange(32),
            value=rng.getrandbits(32),
            duration=(
                rng.randrange(1, 33) if kind == "stuck_at"
                else rng.randrange(8, 129) if kind == "node_stall"
                else rng.randrange(1, 4) if kind == "link_drop"
                else 1
            ),
        )
        faults.append(spec)
    faults.sort(key=lambda f: (f.cycle, f.kind))
    return FaultPlan(faults=faults, seed=seed)
