"""Fault detection: invariant checkers over a finished (or wedged) run.

Detection layers, cheapest first:

* the **progress watchdog** — ``CoSimulation(deadlock_window=…)``
  raises :class:`~repro.cosim.environment.CoSimDeadlock` when no
  instruction retires for the configured window; campaigns tighten it
  so hangs surface in thousands, not millions, of cycles,
* **architectural invariants** checked here after the run: FSL error
  flags, FIFO occupancy beyond physical depth, missing exit,
* the **result invariant** — the application's own golden-model
  verification (``design._verify``), which separates silent data
  corruption from masked faults.

Each tripped checker emits a ``FAULT_DETECTED`` telemetry event when
the simulation has telemetry attached.
"""

from __future__ import annotations

from repro.cosim.environment import CoSimulation
from repro.telemetry.events import (
    COSIM_TRACK,
    FAULT_DETECTED,
    TelemetryEvent,
)


def check_invariants(sim) -> list[str]:
    """Architectural anomalies visible in the simulation state.

    Accepts a single-CPU :class:`CoSimulation` or a K-CPU
    :class:`~repro.cosim.multicpu.MultiCoSimulation` (every processor
    and every channel — inter-CPU links included — is checked, with
    the node name in the diagnostic).  Returns one human-readable
    string per tripped invariant (empty list = clean) and mirrors each
    to the telemetry bus.
    """
    anomalies: list[str] = []
    if hasattr(sim, "topology"):  # MultiCoSimulation
        cycle = sim.cycle
        for node in sim.nodes:
            if node.cpu.fsl is not None and node.cpu.fsl.error:
                anomalies.append(
                    f"fsl-error: control-bit mismatch flagged by "
                    f"{node.name}'s FSL interface")
        for channel in sim.all_channels():
            if channel.occupancy > channel.depth:
                anomalies.append(
                    f"fifo-overflow: {channel.name} holds "
                    f"{channel.occupancy} words (depth {channel.depth})"
                )
        for node in sim.nodes:
            if node.cpu.halted and node.cpu.exit_code not in (0, None):
                anomalies.append(f"exit-code: {node.name} exited with "
                                 f"{node.cpu.exit_code}")
    else:
        cycle = sim.cpu.cycle
        if sim.cpu.fsl is not None and sim.cpu.fsl.error:
            anomalies.append("fsl-error: control-bit mismatch flagged by "
                             "the FSL interface")
        for channel in sim.mb_block.channels():
            if channel.occupancy > channel.depth:
                anomalies.append(
                    f"fifo-overflow: {channel.name} holds "
                    f"{channel.occupancy} words (depth {channel.depth})"
                )
        if sim.cpu.halted and sim.cpu.exit_code not in (0, None):
            anomalies.append(f"exit-code: program exited with "
                             f"{sim.cpu.exit_code}")
    if sim.telemetry is not None:
        for anomaly in anomalies:
            name = anomaly.split(":", 1)[0]
            sim.telemetry.bus.emit(
                TelemetryEvent(
                    FAULT_DETECTED, cycle, COSIM_TRACK, text=name
                )
            )
    return anomalies
