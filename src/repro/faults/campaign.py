"""Seeded fault-injection campaigns with rollback recovery.

A campaign answers the robustness question the paper's board-level
flow cannot: *what happens to this hardware/software partition when a
single-event upset lands mid-run?*  It fault-free-baselines a design,
derives N single-fault :class:`~repro.faults.plan.FaultPlan` trials
from a master seed, runs every trial to a classified outcome —

``masked``
    the program finished with exit 0 and the golden-model check passed,
``sdc``
    exit 0 but wrong answers (silent data corruption),
``detected``
    a nonzero exit or a tripped architectural invariant,
``hang``
    the progress watchdog fired or the cycle budget ran out,
``crash``
    the simulation raised (e.g. a bus fault from a corrupted pointer),
``recovered``
    any of the above, converted to a clean finish by rolling back to
    the pre-fault checkpoint and re-running,

— and aggregates them into a deterministic report: same seed and
configuration give a byte-identical JSON document, sequentially or on
any number of workers, because trials are pure functions of their
parameters and the report carries no wall-clock fields.

Trial fan-out reuses the DSE sweep engine
(:func:`repro.cosim.sweep.sweep` with a custom ``evaluate``), so
campaigns inherit its worker pool, per-trial timeouts, retry/backoff
and resume journal for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cosim.checkpoint import checkpoint_to_dict, restore_from_dict
from repro.cosim.dse import STATUS_ERROR, STATUS_OK
from repro.cosim.environment import CoSimDeadlock, CoSimulation
from repro.cosim.partition import DesignSpec
from repro.cosim.sweep import SweepProgress, retry_backoff_delay, sweep
from repro.faults.detect import check_invariants
from repro.faults.inject import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultPlan, generate_plan
from repro.iss.cpu import HaltReason
from repro.telemetry.events import COSIM_TRACK, ROLLBACK, TelemetryEvent

OUTCOME_MASKED = "masked"
OUTCOME_SDC = "sdc"
OUTCOME_DETECTED = "detected"
OUTCOME_HANG = "hang"
OUTCOME_CRASH = "crash"
OUTCOME_RECOVERED = "recovered"

ALL_OUTCOMES = (
    OUTCOME_MASKED, OUTCOME_SDC, OUTCOME_DETECTED,
    OUTCOME_HANG, OUTCOME_CRASH, OUTCOME_RECOVERED,
)

#: outcomes that trigger rollback recovery (everything but masked)
RECOVERABLE = frozenset(
    {OUTCOME_SDC, OUTCOME_DETECTED, OUTCOME_HANG, OUTCOME_CRASH}
)


@dataclass
class CampaignConfig:
    """Everything that determines a campaign, and nothing else.

    Two configs with equal fields produce byte-identical reports;
    ``to_dict`` is embedded in the report for provenance.
    """

    app: str                       # "cordic" | "matmul"
    design: dict[str, Any] = field(default_factory=dict)
    trials: int = 100
    seed: int = 2005
    recovery: str = "none"         # "none" | "rollback"
    max_retries: int = 2
    backoff_s: float = 0.0         # recorded, never slept (see run_trial)
    deadlock_window: int = 2_048
    max_cycles: int = 2_000_000
    kinds: tuple[str, ...] = FAULT_KINDS
    faults_per_trial: int = 1

    def __post_init__(self) -> None:
        if self.app not in ("cordic", "matmul"):
            raise ValueError(f"unknown campaign app {self.app!r}")
        if self.recovery not in ("none", "rollback"):
            raise ValueError(f"unknown recovery policy {self.recovery!r}")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "design": dict(self.design),
            "trials": self.trials,
            "seed": self.seed,
            "recovery": self.recovery,
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "deadlock_window": self.deadlock_window,
            "max_cycles": self.max_cycles,
            "kinds": list(self.kinds),
            "faults_per_trial": self.faults_per_trial,
        }


def build_design(app: str, design_params: dict[str, Any]):
    """Instantiate the application design a campaign targets.

    Only hardware-accelerated partitions are injectable (the software-
    only path has no co-simulation to perturb), so ``p``/``block`` must
    be >= 1.
    """
    if app == "cordic":
        from repro.apps.cordic.design import CordicDesign

        design = CordicDesign(**design_params)
        if design.p == 0:
            raise ValueError("fault campaigns need a hardware partition "
                             "(CORDIC p >= 1)")
        return design
    from repro.apps.matmul.design import MatmulDesign

    design = MatmulDesign(**design_params)
    if design.block == 0:
        raise ValueError("fault campaigns need a hardware partition "
                         "(matmul block >= 1)")
    return design


def _make_sim(design, deadlock_window: int) -> CoSimulation:
    return CoSimulation(
        design.program,
        design.model,
        design.mb,
        cpu_config=design.cpu_config,
        deadlock_window=deadlock_window,
    )


def _finish_and_classify(
    sim: CoSimulation,
    design,
    run: Callable[[], None],
) -> tuple[str, str]:
    """Execute ``run`` and classify what the simulation ended as."""
    try:
        run()
    except CoSimDeadlock as exc:
        return OUTCOME_HANG, f"watchdog: {exc}"
    except Exception as exc:  # a corrupted run may fault anywhere
        return OUTCOME_CRASH, f"{type(exc).__name__}: {exc}"
    cpu = sim.cpu
    if cpu.exit_code is None:
        return OUTCOME_HANG, "cycle budget exhausted without exit"
    anomalies = check_invariants(sim)
    if anomalies:
        return OUTCOME_DETECTED, "; ".join(anomalies)
    try:
        design._verify(cpu)
    except AssertionError as exc:
        return OUTCOME_SDC, str(exc)
    return OUTCOME_MASKED, ""


def run_trial(
    app: str,
    design_params: dict[str, Any],
    plan: dict[str, Any],
    *,
    recovery: str = "none",
    max_retries: int = 2,
    backoff_s: float = 0.0,
    deadlock_window: int = 2_048,
    max_cycles: int = 2_000_000,
) -> dict[str, Any]:
    """One seeded injection: run, classify, optionally roll back.

    The pre-fault checkpoint is taken in memory immediately before the
    first scheduled fault; rollback restores it, clears the halt and
    re-runs **without re-injecting** (an SEU is transient), so a
    deterministic simulation recovers in one retry.  The retry backoff
    schedule is computed with the sweep engine's seeded jitter and
    *recorded*, never slept — campaign reports must not depend on wall
    time.

    Returns a plain JSON-safe dict — the per-trial record of the
    campaign report.
    """
    fault_plan = FaultPlan.from_dict(plan)
    design = build_design(app, design_params)
    sim = _make_sim(design, deadlock_window)
    cpu = sim.cpu

    record: dict[str, Any] = {
        "seed": fault_plan.seed,
        "plan": fault_plan.to_dict(),
        "injected": [],
        "rollbacks": 0,
        "backoff_s": [],
        "checkpoint_cycle": None,
    }

    first = min(fault_plan.first_cycle, max_cycles)
    sim.run(max_cycles=first)
    if cpu.halted and cpu.halt_reason is not HaltReason.MAX_CYCLES:
        # The program finished before the fault cycle — nothing landed.
        outcome, detail = _finish_and_classify(sim, design, lambda: None)
        record.update(
            outcome=outcome,
            original_outcome=outcome,
            detail=detail or "program ended before the fault cycle",
            cycles=cpu.cycle,
            exit_code=cpu.exit_code,
        )
        return record

    checkpoint = checkpoint_to_dict(sim, label=f"pre-fault {fault_plan.seed}")
    record["checkpoint_cycle"] = checkpoint["cycle"]

    injector = FaultInjector(sim, fault_plan)
    outcome, detail = _finish_and_classify(
        sim, design, lambda: injector.run(max_cycles)
    )
    record["injected"] = injector.log
    original_outcome, original_detail = outcome, detail

    if recovery == "rollback" and outcome in RECOVERABLE:
        for attempt in range(1, max_retries + 1):
            record["backoff_s"].append(
                retry_backoff_delay(
                    backoff_s, f"trial/{fault_plan.seed}", attempt
                )
            )
            restore_from_dict(sim, checkpoint)
            cpu.resume()
            record["rollbacks"] = attempt
            if sim.telemetry is not None:
                sim.telemetry.bus.emit(
                    TelemetryEvent(
                        ROLLBACK, checkpoint["cycle"], COSIM_TRACK,
                        value=attempt,
                    )
                )
            outcome, detail = _finish_and_classify(
                sim, design,
                lambda: sim.run(max_cycles=max_cycles - checkpoint["cycle"]),
            )
            if outcome == OUTCOME_MASKED:
                outcome = OUTCOME_RECOVERED
                detail = (
                    f"recovered after {attempt} rollback(s) from "
                    f"{original_outcome}"
                )
                break

    record.update(
        outcome=outcome,
        original_outcome=original_outcome,
        detail=detail if outcome != original_outcome else original_detail,
        cycles=cpu.cycle,
        exit_code=cpu.exit_code,
    )
    return record


# ----------------------------------------------------------------------
# Sweep-engine adapter
# ----------------------------------------------------------------------
def _evaluate_trial(
    point: DesignSpec,
    cache_dir: str | None,
    timeout_s: float | None,
    telemetry: bool = False,
) -> dict[str, Any]:
    """Sweep-engine ``evaluate`` hook: one trial per design point.

    The trial record travels in the payload's ``metrics`` slot; trials
    are never cached (``cache_dir`` is ignored) and a healthy trial is
    always ``STATUS_OK`` regardless of its fault outcome — outcomes
    are campaign data, not evaluation failures.
    """
    del cache_dir, timeout_s, telemetry
    payload: dict[str, Any] = {
        "status": STATUS_ERROR,
        "error": None,
        "result": None,
        "estimate": None,
        "fingerprint": None,
        "cache_hit": False,
        "metrics": None,
    }
    try:
        params = dict(point.params)
        trial = run_trial(
            params["app"],
            params["design"],
            params["plan"],
            recovery=params["recovery"],
            max_retries=params["max_retries"],
            backoff_s=params["backoff_s"],
            deadlock_window=params["deadlock_window"],
            max_cycles=params["max_cycles"],
        )
    except Exception as exc:
        payload["error"] = f"trial failed: {type(exc).__name__}: {exc}"
        return payload
    payload.update(status=STATUS_OK, metrics=trial)
    return payload


# ----------------------------------------------------------------------
# The campaign report
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Outcome of one campaign: config echo, baseline, every trial."""

    config: CampaignConfig
    baseline_cycles: int
    trials: list[dict[str, Any]]
    workers: int = 0

    @property
    def counts(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in ALL_OUTCOMES}
        for trial in self.trials:
            counts[trial["outcome"]] = counts.get(trial["outcome"], 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON form — deliberately no wall-clock fields,
        so equal (config, seed) gives a byte-identical document."""
        return {
            "format": "mb32-faultsim-report",
            "version": 1,
            "config": self.config.to_dict(),
            "baseline_cycles": self.baseline_cycles,
            "counts": self.counts,
            "trials": self.trials,
        }

    def to_markdown(self) -> str:
        counts = self.counts
        total = len(self.trials)
        lines = [
            f"# Fault campaign: {self.config.app} "
            f"({self.config.trials} trials, seed {self.config.seed}, "
            f"recovery={self.config.recovery})",
            "",
            f"Fault-free baseline: {self.baseline_cycles} cycles.",
            "",
            "| outcome | trials | share |",
            "|---|---:|---:|",
        ]
        for outcome in ALL_OUTCOMES:
            n = counts[outcome]
            share = f"{100.0 * n / total:.1f}%" if total else "-"
            lines.append(f"| {outcome} | {n} | {share} |")
        detected = sum(
            counts[o] for o in
            (OUTCOME_DETECTED, OUTCOME_HANG, OUTCOME_CRASH,
             OUTCOME_RECOVERED)
        )
        lines += [
            "",
            f"Silent data corruption: {counts[OUTCOME_SDC]}/{total}; "
            f"detected or recovered: {detected}/{total}.",
            "",
        ]
        return "\n".join(lines)


def campaign_specs(
    config: CampaignConfig, baseline_cycles: int,
    channels: tuple[str, ...], ports: tuple[str, ...], mem_words: int,
) -> list[DesignSpec]:
    """One picklable spec per trial, each carrying its full plan."""
    specs = []
    for i in range(config.trials):
        plan = generate_plan(
            f"{config.seed}/{i}",
            max_cycle=max(2, baseline_cycles - 1),
            mem_words=mem_words,
            channels=channels,
            ports=ports,
            kinds=config.kinds,
            n_faults=config.faults_per_trial,
        )
        specs.append(
            DesignSpec(
                name=f"{config.app}-trial-{i:05d}",
                factory="repro.faults.campaign:run_trial",
                params={
                    "app": config.app,
                    "design": dict(config.design),
                    "plan": plan.to_dict(),
                    "recovery": config.recovery,
                    "max_retries": config.max_retries,
                    "backoff_s": config.backoff_s,
                    "deadlock_window": config.deadlock_window,
                    "max_cycles": config.max_cycles,
                },
            )
        )
    return specs


def run_campaign(
    config: CampaignConfig,
    *,
    workers: int = 0,
    timeout_s: float | None = None,
    retries: int = 0,
    journal: str | None = None,
    resume: bool = False,
    progress: Callable[[SweepProgress], None] | None = None,
) -> CampaignReport:
    """Baseline the design, then run every seeded trial.

    ``workers``/``timeout_s``/``retries``/``journal``/``resume`` are
    forwarded to the sweep engine; retries only re-run trials whose
    *evaluation* failed (worker crash), never reclassify outcomes.
    """
    design = build_design(config.app, config.design)
    baseline = design.run()  # also validates the fault-free partition
    sim = _make_sim(design, config.deadlock_window)
    channels = tuple(c.name for c in sim.mb_block.channels())
    ports = tuple(
        f"{block.name}:{port}"
        for model in sim._models
        for block in model.blocks
        for port in block.outputs
    )
    mem_words = max(1, len(design.program.image) // 4)

    specs = campaign_specs(
        config, baseline.cycles, channels, ports, mem_words
    )
    report = sweep(
        specs,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        journal=journal,
        resume=resume,
        progress=progress,
        evaluate=_evaluate_trial,
    )

    trials: list[dict[str, Any]] = []
    for i, r in enumerate(report.results):
        if r.status == STATUS_OK and r.metrics is not None:
            trial = dict(r.metrics)
        else:  # the evaluation itself died (worker crash etc.)
            trial = {
                "seed": f"{config.seed}/{i}",
                "plan": specs[i].params["plan"],
                "injected": [],
                "rollbacks": 0,
                "backoff_s": [],
                "checkpoint_cycle": None,
                "outcome": OUTCOME_CRASH,
                "original_outcome": OUTCOME_CRASH,
                "detail": r.error or "trial evaluation failed",
                "cycles": None,
                "exit_code": None,
            }
        trial["trial"] = i
        trials.append(trial)

    return CampaignReport(
        config=config,
        baseline_cycles=baseline.cycles,
        trials=trials,
        workers=max(workers, 0),
    )
