"""Seeded fault-injection campaigns with rollback recovery.

A campaign answers the robustness question the paper's board-level
flow cannot: *what happens to this hardware/software partition when a
single-event upset lands mid-run?*  It fault-free-baselines a design,
derives N single-fault :class:`~repro.faults.plan.FaultPlan` trials
from a master seed, runs every trial to a classified outcome —

``masked``
    the program finished with exit 0 and the golden-model check passed,
``sdc``
    exit 0 but wrong answers (silent data corruption),
``detected``
    a nonzero exit or a tripped architectural invariant,
``hang``
    the progress watchdog fired or the cycle budget ran out,
``crash``
    the simulation raised (e.g. a bus fault from a corrupted pointer),
``recovered``
    any of the above, converted to a clean finish by rolling back to
    the pre-fault checkpoint and re-running,

— and aggregates them into a deterministic report: same seed and
configuration give a byte-identical JSON document, sequentially or on
any number of workers, because trials are pure functions of their
parameters and the report carries no wall-clock fields.

Trial fan-out reuses the DSE sweep engine
(:func:`repro.cosim.sweep.sweep` with a custom ``evaluate``), so
campaigns inherit its worker pool, per-trial timeouts, retry/backoff
and resume journal for free.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cosim.checkpoint import checkpoint_to_dict, restore_from_dict
from repro.cosim.dse import STATUS_ERROR, STATUS_OK, DSEResult
from repro.cosim.environment import CoSimDeadlock, CoSimulation
from repro.cosim.partition import DesignSpec
from repro.cosim.sweep import SweepProgress, retry_backoff_delay, sweep
from repro.faults.detect import check_invariants
from repro.faults.inject import FaultInjector, MultiFaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    MULTI_FAULT_KINDS,
    FaultPlan,
    generate_plan,
)
from repro.iss.cpu import HaltReason
from repro.runapi import RunOutcome
from repro.runapi.engine import SCALAR_ENGINES, EngineError, engine_scope
from repro.telemetry.events import COSIM_TRACK, ROLLBACK, TelemetryEvent

OUTCOME_MASKED = "masked"
OUTCOME_SDC = "sdc"
OUTCOME_DETECTED = "detected"
OUTCOME_HANG = "hang"
OUTCOME_CRASH = "crash"
OUTCOME_RECOVERED = "recovered"

ALL_OUTCOMES = (
    OUTCOME_MASKED, OUTCOME_SDC, OUTCOME_DETECTED,
    OUTCOME_HANG, OUTCOME_CRASH, OUTCOME_RECOVERED,
)

#: outcomes that trigger rollback recovery (everything but masked)
RECOVERABLE = frozenset(
    {OUTCOME_SDC, OUTCOME_DETECTED, OUTCOME_HANG, OUTCOME_CRASH}
)


@dataclass
class CampaignConfig:
    """Everything that determines a campaign, and nothing else.

    Two configs with equal fields produce byte-identical reports;
    ``to_dict`` is embedded in the report for provenance.
    """

    app: str        # "cordic" | "matmul" | "cordic-pipe" | "mesh"
    design: dict[str, Any] = field(default_factory=dict)
    trials: int = 100
    seed: int = 2005
    recovery: str = "none"         # "none" | "rollback"
    max_retries: int = 2
    backoff_s: float = 0.0         # recorded, never slept (see run_trial)
    deadlock_window: int = 2_048
    max_cycles: int = 2_000_000
    kinds: tuple[str, ...] = FAULT_KINDS
    faults_per_trial: int = 1
    engine: str = "auto"           # scalar engine for each trial

    def __post_init__(self) -> None:
        if self.app not in ("cordic", "matmul", "cordic-pipe", "mesh"):
            raise ValueError(f"unknown campaign app {self.app!r}")
        if (self.app in ("cordic-pipe", "mesh")
                and self.kinds == FAULT_KINDS):
            # the K-CPU apps default to the full kind pool, link and
            # node faults included
            self.kinds = MULTI_FAULT_KINDS
        if self.recovery not in ("none", "rollback"):
            raise ValueError(f"unknown recovery policy {self.recovery!r}")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.engine not in ("auto", *SCALAR_ENGINES):
            raise EngineError(
                f"campaign engine must be auto/compiled/interpreter, not "
                f"{self.engine!r}; batched campaigns go through "
                f"run_campaign(batch_width=...) / mb32-faultsim --batch"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "design": dict(self.design),
            "trials": self.trials,
            "seed": self.seed,
            "recovery": self.recovery,
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "deadlock_window": self.deadlock_window,
            "max_cycles": self.max_cycles,
            "kinds": list(self.kinds),
            "faults_per_trial": self.faults_per_trial,
            "engine": self.engine,
        }


def build_design(app: str, design_params: dict[str, Any]):
    """Instantiate the application design a campaign targets.

    Only hardware-accelerated partitions are injectable (the software-
    only path has no co-simulation to perturb), so ``p``/``block`` must
    be >= 1.
    """
    if app == "cordic":
        from repro.apps.cordic.design import CordicDesign

        design = CordicDesign(**design_params)
        if design.p == 0:
            raise ValueError("fault campaigns need a hardware partition "
                             "(CORDIC p >= 1)")
        return design
    if app == "cordic-pipe":
        from repro.apps.cordic.pipeline import CordicPipelineDesign

        return CordicPipelineDesign(**design_params)
    if app == "mesh":
        from repro.apps.meshflow import MeshFlowDesign

        return MeshFlowDesign(**design_params)
    from repro.apps.matmul.design import MatmulDesign

    design = MatmulDesign(**design_params)
    if design.block == 0:
        raise ValueError("fault campaigns need a hardware partition "
                         "(matmul block >= 1)")
    return design


def _make_sim(design, deadlock_window: int):
    if getattr(design, "is_multi", False):
        return design.build_sim(deadlock_window=deadlock_window)
    return CoSimulation(
        design.program,
        design.model,
        design.mb,
        cpu_config=design.cpu_config,
        deadlock_window=deadlock_window,
    )


def _finish_and_classify(
    sim: CoSimulation,
    design,
    run: Callable[[], None],
) -> tuple[str, str]:
    """Execute ``run`` and classify what the simulation ended as."""
    try:
        run()
    except CoSimDeadlock as exc:
        return OUTCOME_HANG, f"watchdog: {exc}"
    except Exception as exc:  # a corrupted run may fault anywhere
        return OUTCOME_CRASH, f"{type(exc).__name__}: {exc}"
    return _classify_state(sim, design)


def _classify_state(sim, design) -> tuple[str, str]:
    """Classify an already-finished simulation (the non-raising half of
    :func:`_finish_and_classify`; the batched path shares it so lockstep
    lanes land on exactly the scalar classification)."""
    multi = hasattr(sim, "topology")
    exit_code = sim.exit_code if multi else sim.cpu.exit_code
    if exit_code is None:
        return OUTCOME_HANG, "cycle budget exhausted without exit"
    anomalies = check_invariants(sim)
    if anomalies:
        return OUTCOME_DETECTED, "; ".join(anomalies)
    try:
        if multi:  # the K-CPU verify reads the sink node's BRAM
            design._verify(sim)
        else:
            design._verify(sim.cpu)
    except AssertionError as exc:
        return OUTCOME_SDC, str(exc)
    return OUTCOME_MASKED, ""


def run_trial(
    app: str,
    design_params: dict[str, Any],
    plan: dict[str, Any],
    *,
    recovery: str = "none",
    max_retries: int = 2,
    backoff_s: float = 0.0,
    deadlock_window: int = 2_048,
    max_cycles: int = 2_000_000,
    engine: str = "auto",
    _design_factory: Callable[[], Any] | None = None,
) -> dict[str, Any]:
    """One seeded injection: run, classify, optionally roll back.

    The pre-fault checkpoint is taken in memory immediately before the
    first scheduled fault; rollback restores it, clears the halt and
    re-runs **without re-injecting** (an SEU is transient), so a
    deterministic simulation recovers in one retry.  The retry backoff
    schedule is computed with the sweep engine's seeded jitter and
    *recorded*, never slept — campaign reports must not depend on wall
    time.

    ``_design_factory`` (internal) supplies a pre-built design with
    fresh hardware so the batched path's evicted-lane replays skip the
    per-trial program compile; the compile is deterministic, so the
    record is unchanged.

    Returns a plain JSON-safe dict — the per-trial record of the
    campaign report.
    """
    fault_plan = FaultPlan.from_dict(plan)
    with engine_scope(engine):
        design = (build_design(app, design_params)
                  if _design_factory is None else _design_factory())
        sim = _make_sim(design, deadlock_window)
    multi = hasattr(sim, "topology")
    # the run-state facade: MultiCoSimulation exposes the same
    # halted/halt_reason/cycle/exit_code/resume() surface as one CPU
    cpu = sim if multi else sim.cpu

    record: dict[str, Any] = {
        "seed": fault_plan.seed,
        "plan": fault_plan.to_dict(),
        "injected": [],
        "rollbacks": 0,
        "backoff_s": [],
        "checkpoint_cycle": None,
    }

    first = min(fault_plan.first_cycle, max_cycles)
    sim.run(until=first)
    if cpu.halted and cpu.halt_reason is not HaltReason.MAX_CYCLES:
        # The program finished before the fault cycle — nothing landed.
        outcome, detail = _finish_and_classify(sim, design, lambda: None)
        record.update(
            outcome=outcome,
            original_outcome=outcome,
            detail=detail or "program ended before the fault cycle",
            cycles=cpu.cycle,
            exit_code=cpu.exit_code,
        )
        return record

    checkpoint = checkpoint_to_dict(sim, label=f"pre-fault {fault_plan.seed}")
    record["checkpoint_cycle"] = checkpoint["cycle"]

    injector_cls = MultiFaultInjector if multi else FaultInjector
    injector = injector_cls(sim, fault_plan)
    outcome, detail = _finish_and_classify(
        sim, design, lambda: injector.run(max_cycles)
    )
    record["injected"] = injector.log
    original_outcome, original_detail = outcome, detail

    if recovery == "rollback" and outcome in RECOVERABLE:
        for attempt in range(1, max_retries + 1):
            record["backoff_s"].append(
                retry_backoff_delay(
                    backoff_s, f"trial/{fault_plan.seed}", attempt
                )
            )
            restore_from_dict(sim, checkpoint)
            cpu.resume()
            record["rollbacks"] = attempt
            if sim.telemetry is not None:
                sim.telemetry.bus.emit(
                    TelemetryEvent(
                        ROLLBACK, checkpoint["cycle"], COSIM_TRACK,
                        value=attempt,
                    )
                )
            outcome, detail = _finish_and_classify(
                sim, design,
                lambda: sim.run(until=max_cycles - checkpoint["cycle"]),
            )
            if outcome == OUTCOME_MASKED:
                outcome = OUTCOME_RECOVERED
                detail = (
                    f"recovered after {attempt} rollback(s) from "
                    f"{original_outcome}"
                )
                break

    record.update(
        outcome=outcome,
        original_outcome=original_outcome,
        detail=detail if outcome != original_outcome else original_detail,
        cycles=cpu.cycle,
        exit_code=cpu.exit_code,
    )
    return record


# ----------------------------------------------------------------------
# Sweep-engine adapter
# ----------------------------------------------------------------------
def _evaluate_trial(
    point: DesignSpec,
    cache_dir: str | None,
    timeout_s: float | None,
    telemetry: bool = False,
) -> dict[str, Any]:
    """Sweep-engine ``evaluate`` hook: one trial per design point.

    The trial record travels in the payload's ``metrics`` slot; trials
    are never cached (``cache_dir`` is ignored) and a healthy trial is
    always ``STATUS_OK`` regardless of its fault outcome — outcomes
    are campaign data, not evaluation failures.
    """
    del cache_dir, timeout_s, telemetry
    payload: dict[str, Any] = {
        "status": STATUS_ERROR,
        "error": None,
        "result": None,
        "estimate": None,
        "fingerprint": None,
        "cache_hit": False,
        "metrics": None,
    }
    try:
        params = dict(point.params)
        trial = run_trial(
            params["app"],
            params["design"],
            params["plan"],
            recovery=params["recovery"],
            max_retries=params["max_retries"],
            backoff_s=params["backoff_s"],
            deadlock_window=params["deadlock_window"],
            max_cycles=params["max_cycles"],
            engine=params.get("engine", "auto"),
        )
    except Exception as exc:
        payload["error"] = f"trial failed: {type(exc).__name__}: {exc}"
        return payload
    payload.update(status=STATUS_OK, metrics=trial)
    return payload


# ----------------------------------------------------------------------
# The campaign report
# ----------------------------------------------------------------------
@dataclass
class TrialOutcome(RunOutcome):
    """:class:`~repro.runapi.RunOutcome` view of one per-trial record.

    The campaign report keeps trials as plain dicts (byte-stable JSON);
    this wrapper gives them the shared ``status`` / ``error`` /
    ``cycles`` surface: a ``masked`` trial is ``status == "ok"``, any
    other classification becomes the status with the detail as the
    error.  ``to_dict()`` layers the core keys over the full record.
    """

    record: dict[str, Any]

    @property
    def outcome(self) -> str:
        return self.record["outcome"]

    @property
    def status(self) -> str:
        return "ok" if self.outcome == OUTCOME_MASKED else self.outcome

    @property
    def error(self) -> str | None:
        return self.record.get("detail") or None

    @property
    def cycles(self) -> int | None:
        return self.record.get("cycles")

    def extra_dict(self) -> dict[str, Any]:
        return dict(self.record)


@dataclass
class CampaignReport:
    """Outcome of one campaign: config echo, baseline, every trial."""

    config: CampaignConfig
    baseline_cycles: int
    trials: list[dict[str, Any]]
    workers: int = 0

    @property
    def outcomes(self) -> list[TrialOutcome]:
        """The trials as :class:`~repro.runapi.RunOutcome` records."""
        return [TrialOutcome(t) for t in self.trials]

    @property
    def counts(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in ALL_OUTCOMES}
        for trial in self.trials:
            counts[trial["outcome"]] = counts.get(trial["outcome"], 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON form — deliberately no wall-clock fields,
        so equal (config, seed) gives a byte-identical document."""
        return {
            "format": "mb32-faultsim-report",
            "version": 1,
            "config": self.config.to_dict(),
            "baseline_cycles": self.baseline_cycles,
            "counts": self.counts,
            "trials": self.trials,
        }

    def to_markdown(self) -> str:
        counts = self.counts
        total = len(self.trials)
        lines = [
            f"# Fault campaign: {self.config.app} "
            f"({self.config.trials} trials, seed {self.config.seed}, "
            f"recovery={self.config.recovery})",
            "",
            f"Fault-free baseline: {self.baseline_cycles} cycles.",
            "",
            "| outcome | trials | share |",
            "|---|---:|---:|",
        ]
        for outcome in ALL_OUTCOMES:
            n = counts[outcome]
            share = f"{100.0 * n / total:.1f}%" if total else "-"
            lines.append(f"| {outcome} | {n} | {share} |")
        detected = sum(
            counts[o] for o in
            (OUTCOME_DETECTED, OUTCOME_HANG, OUTCOME_CRASH,
             OUTCOME_RECOVERED)
        )
        lines += [
            "",
            f"Silent data corruption: {counts[OUTCOME_SDC]}/{total}; "
            f"detected or recovered: {detected}/{total}.",
            "",
        ]
        return "\n".join(lines)


def _campaign_setup(config: CampaignConfig):
    """Build + baseline the design and enumerate the injectable
    targets; shared by the scalar and batched campaign paths."""
    with engine_scope(config.engine):
        design = build_design(config.app, config.design)
        baseline = design.run()  # also validates the fault-free partition
        sim = _make_sim(design, config.deadlock_window)
    if hasattr(sim, "topology"):  # K-CPU design
        channels = tuple(c.name for c in sim.all_channels())
        cpus = tuple(node.name for node in sim.nodes)
        mem_words = max(
            1, max(len(p.image) for p in design.programs) // 4)
    else:
        channels = tuple(c.name for c in sim.mb_block.channels())
        cpus = ()
        mem_words = max(1, len(design.program.image) // 4)
    ports = tuple(
        f"{block.name}:{port}"
        for model in sim._models
        for block in model.blocks
        for port in block.outputs
    )
    return design, baseline, channels, ports, cpus, mem_words


def campaign_specs(
    config: CampaignConfig, baseline_cycles: int,
    channels: tuple[str, ...], ports: tuple[str, ...], mem_words: int,
    cpus: tuple[str, ...] = (),
) -> list[DesignSpec]:
    """One picklable spec per trial, each carrying its full plan."""
    specs = []
    for i in range(config.trials):
        plan = generate_plan(
            f"{config.seed}/{i}",
            max_cycle=max(2, baseline_cycles - 1),
            mem_words=mem_words,
            channels=channels,
            ports=ports,
            cpus=cpus,
            kinds=config.kinds,
            n_faults=config.faults_per_trial,
        )
        specs.append(
            DesignSpec(
                name=f"{config.app}-trial-{i:05d}",
                factory="repro.faults.campaign:run_trial",
                params={
                    "app": config.app,
                    "design": dict(config.design),
                    "plan": plan.to_dict(),
                    "recovery": config.recovery,
                    "max_retries": config.max_retries,
                    "backoff_s": config.backoff_s,
                    "deadlock_window": config.deadlock_window,
                    "max_cycles": config.max_cycles,
                    "engine": config.engine,
                },
            )
        )
    return specs


def run_campaign(
    config: CampaignConfig,
    *,
    workers: int = 0,
    timeout_s: float | None = None,
    retries: int = 0,
    journal: str | None = None,
    resume: bool = False,
    progress: Callable[[SweepProgress], None] | None = None,
    batch_width: int | None = None,
) -> CampaignReport:
    """Baseline the design, then run every seeded trial.

    ``workers``/``timeout_s``/``retries``/``journal``/``resume`` are
    forwarded to the sweep engine; retries only re-run trials whose
    *evaluation* failed (worker crash), never reclassify outcomes.

    ``batch_width=N`` routes the campaign through the lockstep vector
    engine instead: trials run N at a time on one
    :class:`~repro.cosim.batch.BatchedCoSimulation`, sharing one
    program build and one fault-free prefix per batch, with
    unvectorizable trials evicted to the scalar engine.  The report is
    identical to the scalar one (same classification, same per-trial
    records); the sweep-engine options do not apply.
    """
    if batch_width is not None:
        if batch_width < 1:
            raise ValueError("batch_width must be >= 1")
        if journal is not None or resume:
            raise ValueError(
                "batched campaigns do not support --journal/--resume; "
                "drop --batch or run the journal on the scalar engine"
            )
        return _run_campaign_batched(config, batch_width, progress=progress)
    design, baseline, channels, ports, cpus, mem_words = (
        _campaign_setup(config))

    specs = campaign_specs(
        config, baseline.cycles, channels, ports, mem_words, cpus
    )
    report = sweep(
        specs,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        journal=journal,
        resume=resume,
        progress=progress,
        evaluate=_evaluate_trial,
    )

    trials: list[dict[str, Any]] = []
    for i, r in enumerate(report.results):
        if r.status == STATUS_OK and r.metrics is not None:
            trial = dict(r.metrics)
        else:  # the evaluation itself died (worker crash etc.)
            trial = {
                "seed": f"{config.seed}/{i}",
                "plan": specs[i].params["plan"],
                "injected": [],
                "rollbacks": 0,
                "backoff_s": [],
                "checkpoint_cycle": None,
                "outcome": OUTCOME_CRASH,
                "original_outcome": OUTCOME_CRASH,
                "detail": r.error or "trial evaluation failed",
                "cycles": None,
                "exit_code": None,
            }
        trial["trial"] = i
        trials.append(trial)

    return CampaignReport(
        config=config,
        baseline_cycles=baseline.cycles,
        trials=trials,
        workers=max(workers, 0),
    )


# ----------------------------------------------------------------------
# The batched (lockstep vector) campaign path
# ----------------------------------------------------------------------
def _scalar_trial(
    config: CampaignConfig,
    spec: DesignSpec,
    design_factory: Callable[[], Any] | None = None,
) -> dict[str, Any]:
    """Replay one trial on the scalar engine, producing exactly the
    record the sweep path would — including the crash-filler shape when
    the trial evaluation itself raises."""
    params = dict(spec.params)
    try:
        return run_trial(
            params["app"],
            params["design"],
            params["plan"],
            recovery=params["recovery"],
            max_retries=params["max_retries"],
            backoff_s=params["backoff_s"],
            deadlock_window=params["deadlock_window"],
            max_cycles=params["max_cycles"],
            engine=params.get("engine", "auto"),
            _design_factory=design_factory,
        )
    except Exception as exc:  # noqa: BLE001 - mirrors _evaluate_trial
        return {
            "seed": params["plan"]["seed"],
            "plan": params["plan"],
            "injected": [],
            "rollbacks": 0,
            "backoff_s": [],
            "checkpoint_cycle": None,
            "outcome": OUTCOME_CRASH,
            "original_outcome": OUTCOME_CRASH,
            "detail": f"trial failed: {type(exc).__name__}: {exc}",
            "cycles": None,
            "exit_code": None,
        }


def _run_trial_batch(
    config: CampaignConfig, specs: list[DesignSpec], design
) -> list[dict[str, Any]]:
    """Run up to ``batch_width`` trials of one campaign in lockstep.

    Every lane starts from cycle 0 on the shared program (one compile
    for the whole batch) and stays phase-aligned with its neighbours
    until its own faults diverge it, so the vector engine's all-active
    step and its quiescence fast-forward both engage.  The drive loop
    is ``FaultInjector.run`` unrolled across lanes: each round computes
    the next event cycle per lane (next fault, the end of a ``stuck_at``
    window, or the final ``max_cycles`` advance), applies due faults to
    the lane's own CPU/FIFO objects, pins ``stuck_at`` ports through
    the engine's per-cycle forcing, and lets the lockstep kernel
    advance every lane together.

    Lanes the vector engine cannot finish faithfully — CPU crashes,
    vector-step crashes, watchdog trips inside an active ``stuck_at``
    window, forced ports the vector schedule does not track, rollback
    recovery — are evicted to a full scalar :func:`run_trial` replay,
    which determinism makes bit-identical.  A watchdog trip with no
    forcing active is classified in lane: the lockstep tripwire fires
    at the same absolute boundary with the same state as the scalar
    watchdog, so its exact diagnostic is synthesized instead of paying
    a replay.
    """
    from repro.cosim.batch import BatchedCoSimulation
    from repro.sysgen.batched import BatchUnsupported

    n = len(specs)
    records: list[dict[str, Any] | None] = [None] * n
    plans = [FaultPlan.from_dict(s.params["plan"]) for s in specs]
    # run_trial's pre-fault checkpoint cycle; also the early/late pivot
    firsts = [min(plan.first_cycle, config.max_cycles) for plan in plans]

    def lane_design():
        # the shared design with fresh hardware: scalar replays skip
        # the (deterministic) per-trial program compile
        clone = copy.copy(design)
        clone.model, clone.mb = design.fresh_hardware()
        return clone

    # --- build the lanes and the lockstep engine ---------------------
    sims: list[CoSimulation] = []
    try:
        with engine_scope("interpreter"):
            for _ in range(n):
                lmodel, lmb = design.fresh_hardware()
                sims.append(CoSimulation(
                    design.program, lmodel, lmb,
                    cpu_config=design.cpu_config,
                    deadlock_window=config.deadlock_window,
                ))
        batch = BatchedCoSimulation(sims=sims)
    except Exception:  # noqa: BLE001 - scalar replays reproduce it
        return [_scalar_trial(config, spec, lane_design) for spec in specs]

    # --- drive every lane through its fault plan ---------------------
    injectors = [FaultInjector(batch.lane(li), plans[li]) for li in range(n)]
    faults = [sorted(plan.faults, key=lambda f: f.cycle) for plan in plans]
    fault_i = [0] * n
    applied_any = [False] * n          # i.e. run_trial got past `first`
    stuck: list[tuple[Any, int] | None] = [None] * n
    finished = [False] * n
    while True:
        targets: dict[int, int] = {}
        for li in range(n):
            if finished[li] or li in batch.pending_evictions:
                continue
            cpu = batch.lane(li).cpu
            while True:
                if stuck[li] is not None:
                    spec, end = stuck[li]
                    if cpu.halted or cpu.cycle >= end:
                        # the scalar injector logs the whole window as
                        # one entry, after it, at the post-window (or
                        # halt) cycle
                        injectors[li].log.append({
                            "fault": spec.describe(),
                            "cycle": cpu.cycle,
                            "applied": True,
                            "note": "",
                        })
                        stuck[li] = None
                        fault_i[li] += 1
                        continue
                    targets[li] = end
                    break
                if fault_i[li] < len(faults[li]):
                    spec = faults[li][fault_i[li]]
                    if spec.cycle >= config.max_cycles:
                        fault_i[li] = len(faults[li])
                        continue
                    if cpu.halted:
                        if cpu.halt_reason is not HaltReason.MAX_CYCLES:
                            if applied_any[li]:
                                injectors[li].log.append({
                                    "fault": spec.describe(),
                                    "cycle": cpu.cycle,
                                    "applied": False,
                                    "note": "program ended before the "
                                            "fault cycle",
                                })
                            finished[li] = True
                            break
                        cpu.resume()
                    if spec.cycle > cpu.cycle:
                        targets[li] = spec.cycle
                        break
                    applied_any[li] = True
                    if spec.kind == "stuck_at":
                        # the scalar injector's port resolution, on
                        # this lane's own (clone) model
                        lane_sim = batch.lane(li)
                        block_name, _, port_name = \
                            spec.target.partition(":")
                        port = None
                        for model in lane_sim._models:
                            for block in model.blocks:
                                if block.name == block_name and \
                                        port_name in block.outputs:
                                    port = block.outputs[port_name]
                        if port is None:
                            injectors[li].log.append({
                                "fault": spec.describe(),
                                "cycle": cpu.cycle,
                                "applied": False,
                                "note": f"no output port {spec.target!r}",
                            })
                            fault_i[li] += 1
                            continue
                        end = min(cpu.cycle + spec.duration,
                                  config.max_cycles)
                        try:
                            batch.force_port(li, block_name, port_name,
                                             spec.value, end)
                        except BatchUnsupported as exc:
                            batch.pending_evictions[li] = str(exc)
                            break
                        if cpu.cycle >= end:
                            # zero-length window: the forced value is
                            # left on the port, logged at this cycle
                            injectors[li].log.append({
                                "fault": spec.describe(),
                                "cycle": cpu.cycle,
                                "applied": True,
                                "note": "",
                            })
                            fault_i[li] += 1
                            continue
                        stuck[li] = (spec, end)
                        targets[li] = end
                        break
                    # reg/mem/FIFO faults mutate only this lane's CPU
                    # and channel objects — the vector arrays stay
                    # coherent, but quiescence evidence is stale now
                    injectors[li]._apply(spec, config.max_cycles)
                    batch.hw_touched()
                    fault_i[li] += 1
                    continue
                # all faults applied or beyond budget: final advance
                if cpu.halted:
                    if cpu.halt_reason is not HaltReason.MAX_CYCLES:
                        finished[li] = True
                        break
                    cpu.resume()
                if cpu.cycle < config.max_cycles:
                    targets[li] = config.max_cycles
                else:
                    finished[li] = True
                break
        if not targets:
            break
        if len(targets) <= n // 8:
            # tail eviction: with most lanes finished, the lockstep
            # step's fixed per-cycle cost is spread over too few lanes
            # to beat the scalar engine's per-lane fast-forward — hand
            # the stragglers to the (bit-identical) scalar replay
            for li in targets:
                records[li] = _scalar_trial(config, specs[li], lane_design)
                finished[li] = True
            break
        batch.advance(targets)

    # --- classify ----------------------------------------------------
    window = config.deadlock_window
    for li in range(n):
        if records[li] is not None:
            continue
        lane_sim = batch.lane(li)
        cpu = lane_sim.cpu
        if li in batch.pending_evictions:
            if batch.pending_evictions[li] == "deadlock watchdog" and \
                    li not in batch._forcings:
                # Same absolute boundary, same retire history, no
                # forcing in flight: synthesize the scalar watchdog's
                # exact diagnostic in lane instead of paying a replay.
                msg = (
                    f"no instruction retired in {window} cycles at "
                    f"pc={cpu.pc:#010x}; FSL occupancies: "
                    f"{lane_sim.mb_block.channel_occupancies()}"
                )
                if not applied_any[li]:
                    # scalar run_trial raises during the fault-free
                    # prefix — the sweep wrapper's crash-filler record
                    records[li] = {
                        "seed": plans[li].seed,
                        "plan": plans[li].to_dict(),
                        "injected": [],
                        "rollbacks": 0,
                        "backoff_s": [],
                        "checkpoint_cycle": None,
                        "outcome": OUTCOME_CRASH,
                        "original_outcome": OUTCOME_CRASH,
                        "detail": f"trial failed: CoSimDeadlock: {msg}",
                        "cycles": None,
                        "exit_code": None,
                    }
                elif config.recovery == "rollback":
                    # hang is recoverable: rollback runs on the scalar
                    # engine, so replay the whole trial there
                    records[li] = _scalar_trial(config, specs[li],
                                                lane_design)
                else:
                    records[li] = {
                        "seed": plans[li].seed,
                        "plan": plans[li].to_dict(),
                        "injected": injectors[li].log,
                        "rollbacks": 0,
                        "backoff_s": [],
                        "checkpoint_cycle": firsts[li],
                        "outcome": OUTCOME_HANG,
                        "original_outcome": OUTCOME_HANG,
                        "detail": f"watchdog: {msg}",
                        "cycles": cpu.cycle,
                        "exit_code": cpu.exit_code,
                    }
                continue
            # CPU crash / vector-step crash / watchdog inside a stuck
            # window / untracked forced port: the scalar replay
            # reproduces the event and its diagnostics exactly
            records[li] = _scalar_trial(config, specs[li], lane_design)
            continue
        if not applied_any[li] and cpu.halted and \
                cpu.halt_reason is not HaltReason.MAX_CYCLES:
            # ended before the first fault landed: run_trial's early
            # record (no checkpoint, empty log, rollback never reached)
            try:
                outcome, detail = _classify_state(lane_sim, design)
            except Exception:  # noqa: BLE001
                records[li] = _scalar_trial(config, specs[li], lane_design)
                continue
            records[li] = {
                "seed": plans[li].seed,
                "plan": plans[li].to_dict(),
                "injected": [],
                "rollbacks": 0,
                "backoff_s": [],
                "checkpoint_cycle": None,
                "outcome": outcome,
                "original_outcome": outcome,
                "detail": detail or "program ended before the fault cycle",
                "cycles": cpu.cycle,
                "exit_code": cpu.exit_code,
            }
            continue
        if not cpu.halted:
            cpu.halted = True
            cpu.halt_reason = HaltReason.MAX_CYCLES
        try:
            outcome, detail = _classify_state(lane_sim, design)
        except Exception:  # noqa: BLE001 - classification itself raised
            records[li] = _scalar_trial(config, specs[li], lane_design)
            continue
        if config.recovery == "rollback" and outcome in RECOVERABLE:
            # rollback re-runs from the checkpoint on the scalar
            # engine; replay the whole trial there
            records[li] = _scalar_trial(config, specs[li], lane_design)
            continue
        records[li] = {
            "seed": plans[li].seed,
            "plan": plans[li].to_dict(),
            "injected": injectors[li].log,
            "rollbacks": 0,
            "backoff_s": [],
            "checkpoint_cycle": firsts[li],
            "outcome": outcome,
            "original_outcome": outcome,
            "detail": detail,
            "cycles": cpu.cycle,
            "exit_code": cpu.exit_code,
        }
    return records


def _run_campaign_batched(
    config: CampaignConfig,
    batch_width: int,
    *,
    progress: Callable[[SweepProgress], None] | None = None,
) -> CampaignReport:
    """The ``run_campaign(batch_width=...)`` engine: same report, one
    program build and one lockstep vector run per ``batch_width``
    trials instead of ``batch_width`` full scalar simulations.

    K-CPU designs have no lockstep vector engine (lanes would need a
    whole topology each); their trials replay on the scalar path one by
    one, sharing the design's one-time program builds.  Determinism
    keeps the report byte-identical to ``run_campaign`` without
    ``batch_width``."""
    design, baseline, channels, ports, cpus, mem_words = (
        _campaign_setup(config))
    specs = campaign_specs(
        config, baseline.cycles, channels, ports, mem_words, cpus
    )
    multi = getattr(design, "is_multi", False)

    def run_chunk(chunk: list[DesignSpec]) -> list[dict[str, Any]]:
        if multi:
            return [_scalar_trial(config, spec, lambda: design)
                    for spec in chunk]
        return _run_trial_batch(config, chunk, design)

    start = time.perf_counter()
    trials: list[dict[str, Any]] = []
    cycles_done = 0
    for lo in range(0, config.trials, batch_width):
        chunk = specs[lo:lo + batch_width]
        for off, record in enumerate(run_chunk(chunk)):
            record["trial"] = lo + off
            trials.append(record)
            cycles_done += record.get("cycles") or 0
            if progress is not None:
                progress(SweepProgress(
                    total=config.trials,
                    done=len(trials),
                    cache_hits=0,
                    active_workers=1,
                    wall_seconds=time.perf_counter() - start,
                    cycles_done=cycles_done,
                    last=DSEResult(
                        point=chunk[off], result=None, estimate=None,
                        status=STATUS_OK, metrics=record,
                    ),
                ))

    return CampaignReport(
        config=config,
        baseline_cycles=baseline.cycles,
        trials=trials,
        workers=0,
    )
