"""Seeded fault injection, detection and rollback recovery.

Submodules:

* :mod:`repro.faults.plan` — :class:`FaultSpec`/:class:`FaultPlan` and
  seeded plan generation,
* :mod:`repro.faults.inject` — the cycle-exact :class:`FaultInjector`,
* :mod:`repro.faults.detect` — post-run invariant checkers,
* :mod:`repro.faults.campaign` — N-trial campaigns with classified
  outcomes, rollback recovery and deterministic reports (the
  ``mb32-faultsim`` CLI).
"""

from repro.faults.campaign import (
    ALL_OUTCOMES,
    CampaignConfig,
    CampaignReport,
    run_campaign,
    run_trial,
)
from repro.faults.detect import check_invariants
from repro.faults.inject import FaultInjector, MultiFaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    MULTI_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    generate_plan,
)

__all__ = [
    "ALL_OUTCOMES",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
    "run_trial",
    "check_invariants",
    "FaultInjector",
    "MultiFaultInjector",
    "FAULT_KINDS",
    "MULTI_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "generate_plan",
]
