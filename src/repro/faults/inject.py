"""Fault injection into a running co-simulation.

The injector drives the simulation in segments — run to the next
scheduled fault cycle, perturb the exact piece of state the
:class:`~repro.faults.plan.FaultSpec` names, continue — using the same
run-to-cycle primitive as checkpointing (``run(max_cycles=K)`` halts
with ``MAX_CYCLES``; ``cpu.resume()`` clears it).  Injection therefore
composes with both per-cycle and fast-forward execution, except during
a ``stuck_at`` window, which steps per-cycle so the forced output is
visible every cycle regardless of quiescence.

Every applied (or skipped) fault is logged, and a ``FAULT_INJECTED``
telemetry event is emitted when the simulation has telemetry attached.
"""

from __future__ import annotations

from typing import Any

from repro.bus.fsl import FSLChannel, FSLWord
from repro.cosim.environment import CoSimulation
from repro.faults.plan import FaultPlan, FaultSpec
from repro.iss.cpu import HaltReason
from repro.telemetry.events import (
    COSIM_TRACK,
    FAULT_INJECTED,
    TelemetryEvent,
)


class FaultInjector:
    """Applies one :class:`FaultPlan` to one :class:`CoSimulation`.

    :class:`MultiFaultInjector` retargets the same drive loop at a
    K-CPU :class:`~repro.cosim.multicpu.MultiCoSimulation` by
    overriding the clock/halt/CPU-resolution hooks below.
    """

    def __init__(self, sim: CoSimulation, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        #: one entry per scheduled fault: description, the cycle it
        #: landed on, and whether it actually perturbed state (a FIFO
        #: fault on an empty FIFO is a recorded no-op)
        self.log: list[dict[str, Any]] = []

    # -- simulation-shape hooks ----------------------------------------
    def _cycle_now(self) -> int:
        return self.sim.cpu.cycle

    def _halted(self) -> bool:
        return self.sim.cpu.halted

    def _target_cpu(self, spec: FaultSpec):
        """The CPU a register/memory fault lands on."""
        return self.sim.cpu

    # ------------------------------------------------------------------
    def _advance_to(self, cycle: int) -> bool:
        """Run to absolute ``cycle``; True while the program is still
        continuable (running, or force-halted at the segment end)."""
        cpu = self.sim.cpu
        if cpu.halted:
            if cpu.halt_reason is not HaltReason.MAX_CYCLES:
                return False
            cpu.resume()
        if cycle > cpu.cycle:
            self.sim.run(until=cycle - cpu.cycle)
        return not cpu.halted or cpu.halt_reason is HaltReason.MAX_CYCLES

    def run(self, until_cycle: int) -> None:
        """Advance to absolute ``until_cycle``, injecting every planned
        fault at its exact cycle.  Deadlocks and bus faults propagate
        to the caller (they are detection outcomes, not engine bugs).
        """
        for spec in sorted(self.plan.faults, key=lambda f: f.cycle):
            if spec.cycle >= until_cycle:
                break
            if not self._advance_to(spec.cycle):
                self.log.append(
                    {
                        "fault": spec.describe(),
                        "cycle": self._cycle_now(),
                        "applied": False,
                        "note": "program ended before the fault cycle",
                    }
                )
                return
            self._apply(spec, until_cycle)
        self._advance_to(until_cycle)

    # ------------------------------------------------------------------
    def _apply(self, spec: FaultSpec, until_cycle: int) -> None:
        applied, note = True, ""
        try:
            if spec.kind == "reg_flip":
                self._reg_flip(spec)
            elif spec.kind == "mem_flip":
                self._mem_flip(spec)
            elif spec.kind in ("fifo_corrupt", "fifo_drop", "fifo_dup"):
                applied, note = self._fifo_fault(spec)
            elif spec.kind == "link_drop":
                applied, note = self._link_drop(spec)
            elif spec.kind == "node_stall":
                applied, note = self._node_stall(spec, until_cycle)
            elif spec.kind == "stuck_at":
                applied, note = self._stuck_at(spec, until_cycle)
        finally:
            self.log.append(
                {
                    "fault": spec.describe(),
                    "cycle": self._cycle_now(),
                    "applied": applied,
                    "note": note,
                }
            )
        if applied and self.sim.telemetry is not None:
            self.sim.telemetry.bus.emit(
                TelemetryEvent(
                    FAULT_INJECTED, self._cycle_now(), COSIM_TRACK,
                    text=spec.describe(),
                )
            )

    def _reg_flip(self, spec: FaultSpec) -> None:
        # r0 is hardwired zero on MicroBlaze; fault the other 31.
        idx = 1 + spec.index % 31
        cpu = self._target_cpu(spec)
        cpu.regs[idx] = (cpu.regs[idx] ^ (1 << (spec.bit % 32))) & 0xFFFFFFFF

    def _mem_flip(self, spec: FaultSpec) -> None:
        cpu = self._target_cpu(spec)
        size_words = cpu.mem.bram.size // 4
        addr = (spec.index % size_words) * 4
        word = cpu.mem.read_u32(addr)
        # Through the address space so the write hook invalidates any
        # cached decode of a flipped code word.
        cpu.mem.write_u32(addr, word ^ (1 << (spec.bit % 32)))

    def _channel(self, name: str) -> FSLChannel | None:
        for channel in self.sim.mb_block.channels():
            if channel.name == name:
                return channel
        return None

    def _fifo_fault(self, spec: FaultSpec) -> tuple[bool, str]:
        channel = self._channel(spec.target)
        if channel is None:
            return False, f"no channel named {spec.target!r}"
        fifo = channel._fifo
        if not fifo:
            return False, "FIFO empty at injection time"
        pos = spec.index % len(fifo)
        if spec.kind == "fifo_corrupt":
            word = fifo[pos]
            fifo[pos] = FSLWord(
                (word.data ^ (1 << (spec.bit % 32))) & 0xFFFFFFFF,
                word.control,
            )
        elif spec.kind == "fifo_drop":
            fifo.popleft()  # physically lost: statistics left untouched
        else:  # fifo_dup
            word = fifo[pos]
            fifo.insert(pos, FSLWord(word.data, word.control))
        return True, ""

    def _link_drop(self, spec: FaultSpec) -> tuple[bool, str]:
        """Lose up to ``duration`` words queued on an (inter-CPU) link.
        The sender already saw its pushes accepted — the words vanish
        in transit, statistics untouched, exactly like ``fifo_drop``
        but sized for a burst loss."""
        channel = self._channel(spec.target)
        if channel is None:
            return False, f"no channel named {spec.target!r}"
        fifo = channel._fifo
        if not fifo:
            return False, "link idle at injection time"
        lost = min(max(1, spec.duration), len(fifo))
        for _ in range(lost):
            fifo.popleft()
        return True, f"dropped {lost} word(s)"

    def _node_stall(
        self, spec: FaultSpec, until_cycle: int
    ) -> tuple[bool, str]:
        return False, "node_stall needs a multi-CPU simulation"

    def _stuck_at(
        self, spec: FaultSpec, until_cycle: int
    ) -> tuple[bool, str]:
        block_name, _, port_name = spec.target.partition(":")
        port = None
        for model in self.sim._models:
            for block in model.blocks:
                if block.name == block_name and port_name in block.outputs:
                    port = block.outputs[port_name]
        if port is None:
            return False, f"no output port {spec.target!r}"
        forced = spec.value & 0xFFFFFFFF
        end = min(self._cycle_now() + spec.duration, until_cycle)
        # Per-cycle stepping: a fast-forward skip would treat the forced
        # output as ordinary quiescent state, so pin it every cycle.
        port.value = forced
        while not self._halted() and self._cycle_now() < end:
            self.sim.step(1)
            if self._cycle_now() <= end:
                port.value = forced
        return True, ""


class MultiFaultInjector(FaultInjector):
    """Applies a :class:`FaultPlan` to a K-CPU
    :class:`~repro.cosim.multicpu.MultiCoSimulation`.

    The drive loop is inherited; only the simulation-shape hooks
    change: the clock is the global lockstep cycle, "halted" means
    every CPU has halted, register/memory faults resolve their node by
    name (``spec.target``) or index, FIFO faults see every channel in
    the system (inter-CPU links included), and ``node_stall`` gates one
    processor's clock off via ``step(skip_cpus=...)`` while the rest of
    the topology keeps running.
    """

    def _cycle_now(self) -> int:
        return self.sim.cycle

    def _halted(self) -> bool:
        return self.sim.halted

    def _node_index(self, spec: FaultSpec) -> int:
        if spec.target:
            for k, node in enumerate(self.sim.nodes):
                if node.name == spec.target:
                    return k
        return spec.index % self.sim.n_cpus

    def _target_cpu(self, spec: FaultSpec):
        return self.sim.nodes[self._node_index(spec)].cpu

    def _channel(self, name: str) -> FSLChannel | None:
        for channel in self.sim.all_channels():
            if channel.name == name:
                return channel
        return None

    def _advance_to(self, cycle: int) -> bool:
        sim = self.sim
        if sim.halted:
            if sim.halt_reason is not HaltReason.MAX_CYCLES:
                return False
            sim.resume()
        if cycle > sim.cycle:
            sim.run(until=cycle - sim.cycle)
        return not sim.halted or sim.halt_reason is HaltReason.MAX_CYCLES

    def _node_stall(
        self, spec: FaultSpec, until_cycle: int
    ) -> tuple[bool, str]:
        """Gate one CPU's clock off for ``duration`` global cycles.

        The victim's local clock freezes behind the global one (its
        retire timestamps lag by at most the stall length — far inside
        any watchdog window); every other processor, model and link
        keeps stepping, so downstream FIFOs drain and upstream ones
        back up exactly as a held-in-reset processor would cause."""
        victim = self._node_index(spec)
        vcpu = self.sim.nodes[victim].cpu
        if vcpu.halted and vcpu.halt_reason is HaltReason.EXIT:
            return False, "node already exited at injection time"
        # _advance_to parks every CPU on MAX_CYCLES at the segment end;
        # clear it so the un-stalled processors actually run
        self.sim.resume()
        end = min(self.sim.cycle + spec.duration, until_cycle)
        skip = frozenset({victim})
        while not self.sim.halted and self.sim.cycle < end:
            self.sim.step(1, skip_cpus=skip)
        return True, ""
