"""RSP client — the ``mb-gdb`` front-end side of the TCP link."""

from __future__ import annotations

import socket

from repro.gdb.rsp import RspError, encode_packet, extract_packets


class GdbClient:
    """Synchronous RSP client for tests and interactive use."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self._buffer = b""

    # ------------------------------------------------------------------
    def request(self, payload: str) -> str:
        self.sock.sendall(encode_packet(payload))
        while True:
            packets, self._buffer = extract_packets(self._buffer)
            if packets:
                return packets[0]
            chunk = self.sock.recv(4096)
            if not chunk:
                raise RspError("connection closed by server")
            self._buffer += chunk

    def close(self) -> None:
        try:
            self.sock.sendall(encode_packet("k"))
        except OSError:
            pass
        self.sock.close()

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def read_registers(self) -> list[int]:
        text = self.request("g")
        return [int(text[8 * i : 8 * i + 8], 16) for i in range(len(text) // 8)]

    def read_register(self, index: int) -> int:
        return int(self.request(f"p{index:x}"), 16)

    def write_register(self, index: int, value: int) -> None:
        reply = self.request(f"P{index:x}={value & 0xFFFFFFFF:08x}")
        if reply != "OK":
            raise RspError(f"register write failed: {reply!r}")

    def read_memory(self, addr: int, length: int) -> bytes:
        return bytes.fromhex(self.request(f"m{addr:x},{length:x}"))

    def write_memory(self, addr: int, data: bytes) -> None:
        reply = self.request(f"M{addr:x},{len(data):x}:{data.hex()}")
        if reply != "OK":
            raise RspError(f"memory write failed: {reply!r}")

    def set_breakpoint(self, addr: int) -> None:
        reply = self.request(f"Z0,{addr:x},4")
        if reply != "OK":
            raise RspError(f"breakpoint insert failed: {reply!r}")

    def remove_breakpoint(self, addr: int) -> None:
        reply = self.request(f"z0,{addr:x},4")
        if reply != "OK":
            raise RspError(f"breakpoint remove failed: {reply!r}")

    def cont(self) -> str:
        return self.request("c")

    def step(self) -> str:
        return self.request("s")
