"""RSP server: exposes a :class:`Debugger` over TCP.

This is the "MicroBlaze cycle-accurate simulator" end of the paper's
``mb-gdb`` ↔ simulator TCP link.  Supported packets:

=============  ====================================================
``?``          halt reason (``S05``)
``g`` / ``G``  read / write all registers (r0..r31, pc)
``p`` / ``P``  read / write one register
``m`` / ``M``  read / write memory
``c``          continue (to breakpoint or exit)
``s``          single instruction step
``Z0``/``z0``  insert / remove breakpoint
``qSymbol..``  symbol lookup handshake (acknowledged)
``k``          kill (closes the session)
=============  ====================================================
"""

from __future__ import annotations

import socket
import threading

from repro.gdb.debugger import Debugger, StopReason
from repro.gdb.rsp import encode_packet, extract_packets, hex_decode, u32_to_hex


class GdbServer:
    """Single-client RSP server, usually run in a background thread."""

    def __init__(self, debugger: Debugger, host: str = "127.0.0.1",
                 port: int = 0):
        self.debugger = debugger
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.address = self._listener.getsockname()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(target=self.serve_one, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=2)

    # ------------------------------------------------------------------
    def serve_one(self) -> None:
        """Accept one client and serve until ``k`` or disconnect."""
        self._listener.settimeout(10)
        try:
            conn, _ = self._listener.accept()
        except (OSError, socket.timeout):
            return
        with conn:
            conn.settimeout(10)
            buffer = b""
            while not self._stop.is_set():
                try:
                    chunk = conn.recv(4096)
                except (OSError, socket.timeout):
                    break
                if not chunk:
                    break
                buffer += chunk
                packets, buffer = extract_packets(buffer)
                for payload in packets:
                    conn.sendall(b"+")
                    reply = self.handle(payload)
                    if reply is None:  # kill
                        return
                    conn.sendall(encode_packet(reply))

    # ------------------------------------------------------------------
    def handle(self, payload: str) -> str | None:
        dbg = self.debugger
        try:
            if payload == "?":
                return "S05"
            if payload == "g":
                return "".join(u32_to_hex(dbg.read_register(i))
                               for i in range(33))
            if payload.startswith("G"):
                data = payload[1:]
                for i in range(33):
                    dbg.write_register(i, int(data[8 * i : 8 * i + 8], 16))
                return "OK"
            if payload.startswith("p"):
                return u32_to_hex(dbg.read_register(int(payload[1:], 16)))
            if payload.startswith("P"):
                reg, value = payload[1:].split("=")
                dbg.write_register(int(reg, 16), int(value, 16))
                return "OK"
            if payload.startswith("m"):
                addr, length = payload[1:].split(",")
                return dbg.read_memory(int(addr, 16), int(length, 16)).hex()
            if payload.startswith("M"):
                header, data = payload[1:].split(":")
                addr, _length = header.split(",")
                dbg.write_memory(int(addr, 16), hex_decode(data))
                return "OK"
            if payload.startswith("Z0"):
                _, addr, _kind = payload.split(",")
                dbg.set_breakpoint(int(addr, 16))
                return "OK"
            if payload.startswith("z0"):
                _, addr, _kind = payload.split(",")
                dbg.clear_breakpoint(int(addr, 16))
                return "OK"
            if payload == "c":
                info = dbg.cont()
                return self._stop_reply(info)
            if payload == "s":
                info = dbg.step_instruction()
                return self._stop_reply(info)
            if payload.startswith("qSymbol"):
                return "OK"
            if payload == "k":
                return None
            return ""  # unsupported -> empty response per the protocol
        except Exception as exc:  # protocol-level error reply
            return f"E{abs(hash(str(exc))) % 99:02d}"

    @staticmethod
    def _stop_reply(info) -> str:
        if info.reason is StopReason.EXITED:
            return f"W{(info.exit_code or 0) & 0xFF:02x}"
        return "S05"
