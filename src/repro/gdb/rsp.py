"""GDB Remote Serial Protocol framing and helpers.

Packet format: ``$<payload>#<2-hex-digit checksum>`` where the checksum
is the modulo-256 sum of the payload bytes.  The receiver answers with
``+`` (ack) or ``-`` (request retransmission).
"""

from __future__ import annotations


class RspError(ValueError):
    """Malformed packet."""


def checksum(payload: bytes) -> int:
    return sum(payload) % 256


def encode_packet(payload: str | bytes) -> bytes:
    data = payload.encode("ascii") if isinstance(payload, str) else payload
    return b"$" + data + b"#" + f"{checksum(data):02x}".encode("ascii")


def decode_packet(raw: bytes) -> str:
    """Parse one complete ``$...#xx`` packet; returns the payload."""
    if not raw.startswith(b"$"):
        raise RspError(f"packet must start with '$': {raw[:8]!r}")
    try:
        hash_pos = raw.index(b"#")
    except ValueError:
        raise RspError("packet missing '#' terminator") from None
    payload = raw[1:hash_pos]
    check = raw[hash_pos + 1 : hash_pos + 3]
    if len(check) != 2:
        raise RspError("truncated checksum")
    if int(check, 16) != checksum(payload):
        raise RspError(
            f"checksum mismatch: got {check!r}, "
            f"expected {checksum(payload):02x}"
        )
    return payload.decode("ascii")


def extract_packets(buffer: bytes) -> tuple[list[str], bytes]:
    """Pull every complete packet out of ``buffer``; returns
    ``(payloads, remainder)``.  Acks (``+``/``-``) are skipped."""
    payloads: list[str] = []
    pos = 0
    n = len(buffer)
    while pos < n:
        ch = buffer[pos : pos + 1]
        if ch in (b"+", b"-"):
            pos += 1
            continue
        if ch != b"$":
            pos += 1  # garbage; resync
            continue
        hash_pos = buffer.find(b"#", pos)
        if hash_pos == -1 or hash_pos + 3 > n:
            break  # incomplete
        payloads.append(decode_packet(buffer[pos : hash_pos + 3]))
        pos = hash_pos + 3
    return payloads, buffer[pos:]


def hex_encode(data: bytes) -> str:
    return data.hex()


def hex_decode(text: str) -> bytes:
    return bytes.fromhex(text)


def u32_to_hex(value: int) -> str:
    """Register value as big-endian hex (MicroBlaze is big-endian)."""
    return f"{value & 0xFFFFFFFF:08x}"
