"""Debugger core over a live CPU instance."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.asm.disassembler import disassemble
from repro.asm.linker import Program
from repro.iss.cpu import CPU, HaltReason


class StopReason(enum.Enum):
    BREAKPOINT = "breakpoint"
    STEP = "step"
    EXITED = "exited"
    RUNNING_LIMIT = "limit"


@dataclass
class StopInfo:
    reason: StopReason
    pc: int
    exit_code: int | None = None


class Debugger:
    """Breakpoints, stepping and state inspection for one CPU.

    The co-simulation environment uses the same primitives the paper's
    MicroBlaze Simulink block uses through mb-gdb: run until the
    software requests hardware interaction, inspect/patch registers,
    resume.
    """

    def __init__(self, cpu: CPU, program: Program | None = None):
        self.cpu = cpu
        self.program = program

    # ------------------------------------------------------------------
    # Breakpoints
    # ------------------------------------------------------------------
    def set_breakpoint(self, where: int | str) -> int:
        addr = self.resolve(where)
        self.cpu.breakpoints.add(addr)
        return addr

    def clear_breakpoint(self, where: int | str) -> None:
        self.cpu.breakpoints.discard(self.resolve(where))

    def resolve(self, where: int | str) -> int:
        if isinstance(where, int):
            return where
        if self.program is None:
            raise ValueError("symbol resolution requires a Program")
        return self.program.symbol(where)

    # ------------------------------------------------------------------
    # Execution control
    # ------------------------------------------------------------------
    def step_instruction(self) -> StopInfo:
        """Execute exactly one instruction (all its cycles)."""
        cpu = self.cpu
        if cpu.halted:
            cpu.resume()
        start = cpu.stats.instructions
        guard = 0
        while not cpu.halted and (cpu.stats.instructions == start or cpu.busy):
            cpu.tick()
            guard += 1
            if guard > 100_000:
                return StopInfo(StopReason.RUNNING_LIMIT, cpu.pc)
        return self._stop_info(default=StopReason.STEP)

    def cont(self, max_cycles: int = 10_000_000) -> StopInfo:
        cpu = self.cpu
        if cpu.halted:
            cpu.resume()
        cpu.run(max_cycles=max_cycles)
        return self._stop_info(default=StopReason.RUNNING_LIMIT)

    def _stop_info(self, default: StopReason) -> StopInfo:
        cpu = self.cpu
        if cpu.halt_reason is HaltReason.EXIT:
            return StopInfo(StopReason.EXITED, cpu.pc, cpu.exit_code)
        if cpu.halt_reason is HaltReason.BREAKPOINT:
            return StopInfo(StopReason.BREAKPOINT, cpu.pc)
        return StopInfo(default, cpu.pc)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def read_register(self, index: int) -> int:
        if index == 32:  # GDB numbering: r0..r31, then pc
            return self.cpu.pc
        return self.cpu.regs[index]

    def write_register(self, index: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if index == 32:
            self.cpu.pc = value
        elif index != 0:  # r0 stays zero
            self.cpu.regs[index] = value

    def read_memory(self, addr: int, length: int) -> bytes:
        return bytes(
            self.cpu.mem.read_u8(addr + i) for i in range(length)
        )

    def write_memory(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.cpu.mem.write_u8(addr + i, byte)

    def read_word(self, where: int | str) -> int:
        return self.cpu.mem.read_u32(self.resolve(where))

    # ------------------------------------------------------------------
    # Listings
    # ------------------------------------------------------------------
    def disassemble_at(self, addr: int | None = None, count: int = 8) -> str:
        base = self.cpu.pc if addr is None else self.resolve(addr)
        lines = []
        for i in range(count):
            a = base + 4 * i
            try:
                word = self.cpu.mem.read_u32(a)
            except Exception:
                break
            marker = "=> " if a == self.cpu.pc else "   "
            lines.append(marker + disassemble(word, a))
        return "\n".join(lines)

    def where(self) -> str:
        """Nearest symbol at or below the PC, like gdb's frame line."""
        pc = self.cpu.pc
        if self.program is None:
            return f"pc={pc:#010x}"
        best_name, best_addr = None, -1
        for name, addr in self.program.symbols.items():
            if best_addr < addr <= pc:
                best_name, best_addr = name, addr
        if best_name is None:
            return f"pc={pc:#010x}"
        offset = pc - best_addr
        suffix = f"+{offset:#x}" if offset else ""
        return f"pc={pc:#010x} <{best_name}{suffix}>"
