"""Debug interface — the ``mb-gdb`` analogue.

The paper's environment drives the MicroBlaze cycle-accurate simulator
through ``mb-gdb``, which "communicates with the simulator using TCP/IP
protocol" and lets the co-simulation "obtain the execution status of
the software programs" and "change the status of the registers of the
MicroBlaze processor based on the results from the customized hardware
designs".

This package provides the same capability stack:

* :class:`~repro.gdb.debugger.Debugger` — breakpoints, single-step,
  register/memory access, symbol-aware inspection over a live CPU,
* :mod:`repro.gdb.rsp` — GDB Remote Serial Protocol framing,
* :class:`~repro.gdb.server.GdbServer` /
  :class:`~repro.gdb.client.GdbClient` — the TCP split between the
  debugger front end and the simulator back end.
"""

from repro.gdb.debugger import Debugger, StopReason
from repro.gdb.rsp import decode_packet, encode_packet, RspError
from repro.gdb.server import GdbServer
from repro.gdb.client import GdbClient

__all__ = [
    "Debugger",
    "StopReason",
    "encode_packet",
    "decode_packet",
    "RspError",
    "GdbServer",
    "GdbClient",
]
