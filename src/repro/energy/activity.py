"""Signal-activity collection for the hardware peripheral.

Domain-specific energy modeling ([10]) estimates dynamic energy from
*switching activity*: how often each block's outputs toggle.  The
:class:`ActivityMonitor` attaches to a sysgen :class:`Model` and counts
per-block output-bit toggles every cycle, without altering simulation
results.  Enable it only when energy numbers are wanted — it roughly
doubles the per-cycle cost of the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sysgen.model import Model


@dataclass
class BlockActivity:
    toggles: int = 0  # total output bits flipped
    active_cycles: int = 0  # cycles with at least one toggle


@dataclass
class ActivityMonitor:
    model: Model
    by_block: dict[str, BlockActivity] = field(default_factory=dict)
    cycles: int = 0
    _last: dict[int, int] = field(default_factory=dict)
    _installed: bool = False

    def install(self) -> "ActivityMonitor":
        """Wrap the model's ``step`` to sample after every cycle."""
        if self._installed:
            return self
        original_step = self.model.step
        monitor = self

        def wrapped(cycles: int = 1) -> None:
            for _ in range(cycles):
                original_step(1)
                monitor.sample()

        self.model.step = wrapped  # type: ignore[method-assign]
        self._original_step = original_step
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.model.step = self._original_step  # type: ignore[method-assign]
            self._installed = False

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Compare every output port against the previous cycle."""
        self.cycles += 1
        last = self._last
        for block in self.model.blocks:
            toggles = 0
            for port in block.outputs.values():
                key = id(port)
                value = port.value
                prev = last.get(key)
                if prev is not None and prev != value:
                    toggles += bin((prev ^ value) & ((1 << 64) - 1)).count("1")
                last[key] = value
            if toggles:
                act = self.by_block.get(block.name)
                if act is None:
                    act = self.by_block[block.name] = BlockActivity()
                act.toggles += toggles
                act.active_cycles += 1

    # ------------------------------------------------------------------
    @property
    def total_toggles(self) -> int:
        return sum(a.toggles for a in self.by_block.values())

    def utilization(self, block_name: str) -> float:
        """Fraction of cycles the block switched at all."""
        act = self.by_block.get(block_name)
        if act is None or self.cycles == 0:
            return 0.0
        return act.active_cycles / self.cycles
