"""Combined per-run energy report.

Three contributions, mirroring how the paper's framework would compose
its two published techniques:

* **software** — instruction-level model over the ISS statistics,
* **peripheral** — domain-specific switching model over the activity
  collected from the hardware model during co-simulation,
* **quiescent** — leakage over the run's duration, proportional to the
  occupied area (slices) — the term the paper's introduction cites as
  the reason compact (soft-processor) designs win at the system level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.activity import ActivityMonitor
from repro.energy.block_model import block_energy_per_toggle
from repro.energy.instruction_model import (
    InstructionEnergyModel,
    SoftwareEnergy,
)
from repro.iss.cpu import CPU
from repro.sysgen.model import Model

#: quiescent (leakage) power per occupied slice, µW — 90 nm-era figure
#: in the spirit of Tuan & Lai [12].
LEAKAGE_UW_PER_SLICE = 2.0


@dataclass
class EnergyReport:
    software: SoftwareEnergy
    peripheral_nj: float
    peripheral_by_block_nj: dict[str, float]
    quiescent_nj: float
    cycles: int
    seconds: float
    slices: int

    @property
    def total_nj(self) -> float:
        return self.software.total_nj + self.peripheral_nj + self.quiescent_nj

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1000.0

    @property
    def average_power_mw(self) -> float:
        return (self.total_nj * 1e-9 / self.seconds) * 1e3 if self.seconds \
            else 0.0

    def summary(self) -> str:
        lines = [
            f"software (instr-level) : {self.software.total_nj / 1000:.2f} uJ"
            f"  ({self.software.nj_per_instruction:.1f} nJ/instr)",
            f"peripheral (activity)  : {self.peripheral_nj / 1000:.2f} uJ",
            f"quiescent ({self.slices} slices) : "
            f"{self.quiescent_nj / 1000:.2f} uJ",
            f"TOTAL                  : {self.total_uj:.2f} uJ over "
            f"{self.seconds * 1e6:.1f} us ({self.average_power_mw:.1f} mW avg)",
        ]
        return "\n".join(lines)


def peripheral_energy(model: Model, monitor: ActivityMonitor
                      ) -> tuple[float, dict[str, float]]:
    """Dynamic energy of the hardware model from observed activity."""
    total = 0.0
    by_block: dict[str, float] = {}
    for block in model.blocks:
        act = monitor.by_block.get(block.name)
        if act is None:
            continue
        pj = block_energy_per_toggle(block) * act.toggles
        by_block[block.name] = pj / 1000.0  # nJ
        total += pj
    return total / 1000.0, by_block


def estimate_energy(
    cpu: CPU,
    model: Model | None = None,
    monitor: ActivityMonitor | None = None,
    slices: int = 0,
    instruction_model: InstructionEnergyModel | None = None,
) -> EnergyReport:
    """Build the energy report for a completed (co-)simulation run.

    ``slices`` is the design's occupied area (from the resource
    estimator) and drives the quiescent term; pass the activity monitor
    that was installed on ``model`` during the run for the peripheral
    term.
    """
    sw = (instruction_model or InstructionEnergyModel()).estimate(cpu.stats)
    if model is not None and monitor is not None:
        periph_nj, by_block = peripheral_energy(model, monitor)
    else:
        periph_nj, by_block = 0.0, {}
    seconds = cpu.simulated_time_s()
    quiescent_nj = LEAKAGE_UW_PER_SLICE * slices * seconds * 1e3
    # (µW × s = µJ; ×1e3 → nJ)
    return EnergyReport(
        software=sw,
        peripheral_nj=periph_nj,
        peripheral_by_block_nj=by_block,
        quiescent_nj=quiescent_nj,
        cycles=cpu.cycle,
        seconds=seconds,
        slices=slices,
    )
