"""Per-block switching-energy coefficients (domain-specific modeling).

Following Choi et al. / Ou & Prasanna's domain-specific energy models:
each block type has an effective switched capacitance per toggled
output bit; dynamic energy is coefficient × observed toggles.  Values
are representative of Virtex-II Pro fabric at 1.5 V (pJ per bit
toggle); embedded multipliers and BRAMs carry higher per-activation
cost, captured by larger coefficients on their (wide) outputs.
"""

from __future__ import annotations

from repro.sysgen.block import Block
from repro.sysgen.blocks import (
    FIFO,
    RAM,
    ROM,
    Accumulator,
    Add,
    AddSub,
    Concat,
    Constant,
    Convert,
    Counter,
    Delay,
    FSLRead,
    FSLWrite,
    GatewayIn,
    GatewayOut,
    Inverter,
    Logical,
    Mult,
    Mux,
    Negate,
    Register,
    Relational,
    Shift,
    Slice,
)

#: pJ per toggled output bit, by block type.
ENERGY_PER_TOGGLE_PJ: dict[type, float] = {
    Add: 2.4,
    AddSub: 2.6,
    Negate: 2.4,
    Mult: 9.5,        # embedded multiplier switching
    Shift: 0.4,       # wiring only
    Accumulator: 3.0,
    Convert: 1.2,
    Mux: 1.6,
    Relational: 2.0,
    Logical: 1.4,
    Inverter: 0.9,
    Slice: 0.2,
    Concat: 0.2,
    Register: 1.8,
    Delay: 1.5,
    Counter: 2.0,
    FIFO: 4.2,
    RAM: 11.0,        # BRAM access
    ROM: 2.8,
    Constant: 0.0,
    GatewayIn: 0.0,   # simulation artifacts
    GatewayOut: 0.0,
    FSLRead: 3.5,     # FSL FIFO port
    FSLWrite: 3.5,
}

DEFAULT_PER_TOGGLE_PJ = 2.0


def block_energy_per_toggle(block: Block) -> float:
    """pJ per toggled output bit for ``block``."""
    for cls in type(block).__mro__:
        if cls in ENERGY_PER_TOGGLE_PJ:
            return ENERGY_PER_TOGGLE_PJ[cls]
    return DEFAULT_PER_TOGGLE_PJ
