"""Instruction-level energy model for the soft processor.

Following the technique of Ou & Prasanna, "Rapid Energy Estimation of
Computations on FPGA based Soft Processors" (SoCC 2004): instructions
are grouped into classes with measured per-instruction energy; program
energy is the dot product of the retired-instruction mix with the class
coefficients, plus a pipeline-stall (idle) term.

Coefficients below are representative of a MicroBlaze on Virtex-II Pro
at 50 MHz (order: a few nJ per instruction; multiplies and memory
accesses cost more because they activate the embedded multiplier and
BRAM columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import BY_MNEMONIC
from repro.iss.statistics import CPUStats

#: nJ per retired instruction, by semantic class.
DEFAULT_CLASS_ENERGY_NJ: dict[str, float] = {
    "add": 3.6,
    "rsub": 3.6,
    "cmp": 3.6,
    "logic": 3.2,
    "shift1": 3.2,
    "sext": 3.2,
    "bs": 4.1,       # barrel shifter network
    "mul": 6.8,      # embedded MULT18X18 activation
    "idiv": 48.0,    # 34-cycle serial divider
    "load": 5.9,     # BRAM read via LMB
    "store": 5.7,    # BRAM write via LMB
    "br": 3.9,
    "bcc": 3.9,
    "rtsd": 3.9,
    "imm": 2.8,
    "fsl": 4.4,      # FSL FIFO port activation
}

#: nJ per cycle the pipeline spends stalled (clock tree + idle logic).
DEFAULT_STALL_ENERGY_NJ = 1.1


@dataclass
class InstructionEnergyModel:
    """Per-class coefficients; replaceable for calibration."""

    class_energy_nj: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_ENERGY_NJ)
    )
    stall_energy_nj: float = DEFAULT_STALL_ENERGY_NJ

    def energy_of_mnemonic(self, mnemonic: str) -> float:
        spec = BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise KeyError(f"unknown mnemonic {mnemonic!r}")
        return self.class_energy_nj[spec.kind]

    def estimate(self, stats: CPUStats) -> "SoftwareEnergy":
        """Energy of an execution, from its instruction mix."""
        by_class: dict[str, float] = {}
        total = 0.0
        for mnemonic, count in stats.by_mnemonic.items():
            kind = BY_MNEMONIC[mnemonic].kind
            e = self.class_energy_nj[kind] * count
            by_class[kind] = by_class.get(kind, 0.0) + e
            total += e
        stall = stats.stall_cycles * self.stall_energy_nj
        return SoftwareEnergy(
            dynamic_nj=total,
            stall_nj=stall,
            by_class_nj=by_class,
            instructions=stats.instructions,
        )


@dataclass
class SoftwareEnergy:
    dynamic_nj: float
    stall_nj: float
    by_class_nj: dict[str, float]
    instructions: int

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.stall_nj

    @property
    def nj_per_instruction(self) -> float:
        return self.dynamic_nj / self.instructions if self.instructions else 0.0


def software_energy(stats: CPUStats,
                    model: InstructionEnergyModel | None = None
                    ) -> SoftwareEnergy:
    """Convenience wrapper with the default coefficients."""
    return (model or InstructionEnergyModel()).estimate(stats)
