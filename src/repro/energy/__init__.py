"""Rapid energy estimation — the paper's declared extension.

The paper's conclusion: *"Energy performance is not addressed by our
co-simulation environment ... One important extension of our work is to
provide rapid energy estimation for application development using soft
processors.  We have developed an instruction-level energy estimation
technique for computations on soft processors in [9].  We have also
developed a domain-specific energy modeling technique for different
parallel hardware designs using FPGAs in [10].  We are working on to
integrate these two rapid energy estimation techniques into the
co-simulation framework proposed in the paper."*

This package performs that integration:

* :mod:`repro.energy.instruction_model` — instruction-level energy for
  the software execution platform ([9]-style): per-instruction-class
  energy coefficients applied to the ISS's retired-instruction mix,
* :mod:`repro.energy.activity` + :mod:`repro.energy.block_model` —
  domain-specific energy for the customized hardware peripherals
  ([10]-style): per-block switching-energy coefficients applied to
  observed signal activity (output toggle counts collected during
  co-simulation),
* :mod:`repro.energy.estimator` — the combined per-run
  :class:`EnergyReport`, including the quiescent (leakage) term that
  motivates compact designs in the paper's introduction ("a compact
  design that can be fit into a smaller device can effectively reduce
  quiescent energy dissipation [12]").

Coefficient values are representative of published Virtex-II Pro
measurements (the exact numbers in [9]/[10] are not reproduced in the
paper); what the framework reproduces is the *methodology*: energy
estimates computed from the same high-level co-simulation run, without
low-level power simulation.
"""

from repro.energy.instruction_model import (
    InstructionEnergyModel,
    software_energy,
)
from repro.energy.activity import ActivityMonitor
from repro.energy.block_model import block_energy_per_toggle
from repro.energy.estimator import EnergyReport, estimate_energy

__all__ = [
    "InstructionEnergyModel",
    "software_energy",
    "ActivityMonitor",
    "block_energy_per_toggle",
    "EnergyReport",
    "estimate_energy",
]
