"""MB32 instruction specifications.

Each instruction is described declaratively by an :class:`InstrSpec`:
its mnemonic, binary format, opcode, the *semantic class* (``kind``)
dispatched on by the ISS, the assembler operand signature, fixed field
constraints used by the decoder to discriminate instructions sharing an
opcode, and semantic properties (``props``).

Formats (32-bit words, big-endian bit numbering as in the MicroBlaze
manual, bit 0 = MSB):

* **Type A** ``opcode(6) | rd(5) | ra(5) | rb(5) | func(11)``
* **Type B** ``opcode(6) | rd(5) | ra(5) | imm(16)``

Opcode assignments follow the MicroBlaze ISA where applicable.  The FSL
access family uses an MB32-specific type-A layout: ``func`` bit 10 set
for ``put``-side transfers, bit 9 for non-blocking, bit 8 for control
transfers, and ``func[3:0]`` holding the FSL channel number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

FORMAT_A = "A"
FORMAT_B = "B"

# Condition codes carried in the rd field of conditional branches.
CONDITIONS = ("eq", "ne", "lt", "le", "gt", "ge")

# FSL func-field flag bits.
FSL_PUT_BIT = 1 << 10
FSL_NONBLOCK_BIT = 1 << 9
FSL_CONTROL_BIT = 1 << 8
FSL_ID_MASK = 0xF


@dataclass(frozen=True)
class InstrSpec:
    """Declarative description of one MB32 instruction."""

    mnemonic: str
    fmt: str
    opcode: int
    kind: str
    operands: tuple[str, ...]
    #: decoder constraints: (field, mask, value) — a word matches when
    #: ``(field_value & mask) == value`` for every entry.
    fixed: tuple[tuple[str, int, int], ...] = ()
    props: Mapping[str, object] = field(default_factory=lambda: MappingProxyType({}))

    def prop(self, name: str, default=None):
        return self.props.get(name, default)


def _p(**kw) -> Mapping[str, object]:
    return MappingProxyType(dict(kw))


def _arith(mn, op, opcode, *, carry_in=False, keep_carry=False, imm=False):
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_B if imm else FORMAT_A,
        opcode=opcode,
        kind=op,
        operands=("rd", "ra", "imm") if imm else ("rd", "ra", "rb"),
        fixed=() if imm else (("func", 0x7FF, 0),),
        props=_p(carry_in=carry_in, keep_carry=keep_carry, imm=imm),
    )


def _logic(mn, op, opcode, *, imm=False):
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_B if imm else FORMAT_A,
        opcode=opcode,
        kind="logic",
        operands=("rd", "ra", "imm") if imm else ("rd", "ra", "rb"),
        fixed=() if imm else (("func", 0x7FF, 0),),
        props=_p(op=op, imm=imm),
    )


def _shift1(mn, op, func):
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_A,
        opcode=0x24,
        kind="shift1",
        operands=("rd", "ra"),
        fixed=(("func", 0x7FF, func),),
        props=_p(op=op),
    )


def _bs(mn, direction, arith, funcbits):
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_A,
        opcode=0x11,
        kind="bs",
        operands=("rd", "ra", "rb"),
        fixed=(("func", 0x600, funcbits),),
        props=_p(dir=direction, arith=arith, imm=False),
    )


def _bsi(mn, direction, arith, immbits):
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_B,
        opcode=0x19,
        kind="bs",
        operands=("rd", "ra", "imm"),
        fixed=(("imm", 0x600, immbits),),
        props=_p(dir=direction, arith=arith, imm=True),
    )


def _br(mn, *, delayed, link, absolute, imm, ra_code):
    ops: tuple[str, ...]
    if link:
        ops = ("rd", "imm") if imm else ("rd", "rb")
    else:
        ops = ("imm",) if imm else ("rb",)
    fixed = (("ra", 0x1F, ra_code),) + ((("rd", 0x1F, 0),) if not link else ())
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_B if imm else FORMAT_A,
        opcode=0x2E if imm else 0x26,
        kind="br",
        operands=ops,
        fixed=fixed,
        props=_p(delayed=delayed, link=link, absolute=absolute, imm=imm, cond=None),
    )


def _bcc(mn, cond, *, delayed, imm):
    code = CONDITIONS.index(cond) | (0x10 if delayed else 0)
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_B if imm else FORMAT_A,
        opcode=0x2F if imm else 0x27,
        kind="bcc",
        operands=("ra", "imm") if imm else ("ra", "rb"),
        fixed=(("rd", 0x1F, code),),
        props=_p(cond=cond, delayed=delayed, imm=imm),
    )


def _mem(mn, kind, size, opcode, *, imm):
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_B if imm else FORMAT_A,
        opcode=opcode,
        kind=kind,
        operands=("rd", "ra", "imm") if imm else ("rd", "ra", "rb"),
        fixed=() if imm else (("func", 0x7FF, 0),),
        props=_p(size=size, imm=imm),
    )


def _fsl(mn, *, put, blocking, control):
    funcval = (
        (FSL_PUT_BIT if put else 0)
        | (0 if blocking else FSL_NONBLOCK_BIT)
        | (FSL_CONTROL_BIT if control else 0)
    )
    mask = FSL_PUT_BIT | FSL_NONBLOCK_BIT | FSL_CONTROL_BIT
    return InstrSpec(
        mnemonic=mn,
        fmt=FORMAT_A,
        opcode=0x1B,
        kind="fsl",
        operands=("ra", "fsl") if put else ("rd", "fsl"),
        fixed=(("func", mask, funcval),),
        props=_p(put=put, blocking=blocking, control=control),
    )


INSTRUCTION_SET: tuple[InstrSpec, ...] = (
    # ---- integer add/sub family -------------------------------------
    _arith("add", "add", 0x00),
    _arith("rsub", "rsub", 0x01),
    _arith("addc", "add", 0x02, carry_in=True),
    _arith("rsubc", "rsub", 0x03, carry_in=True),
    _arith("addk", "add", 0x04, keep_carry=True),
    _arith("rsubk", "rsub", 0x05, keep_carry=True),
    _arith("addkc", "add", 0x06, carry_in=True, keep_carry=True),
    _arith("rsubkc", "rsub", 0x07, carry_in=True, keep_carry=True),
    InstrSpec("cmp", FORMAT_A, 0x05, "cmp", ("rd", "ra", "rb"),
              fixed=(("func", 0x7FF, 0x001),), props=_p(signed=True)),
    InstrSpec("cmpu", FORMAT_A, 0x05, "cmp", ("rd", "ra", "rb"),
              fixed=(("func", 0x7FF, 0x003),), props=_p(signed=False)),
    _arith("addi", "add", 0x08, imm=True),
    _arith("rsubi", "rsub", 0x09, imm=True),
    _arith("addic", "add", 0x0A, carry_in=True, imm=True),
    _arith("rsubic", "rsub", 0x0B, carry_in=True, imm=True),
    _arith("addik", "add", 0x0C, keep_carry=True, imm=True),
    _arith("rsubik", "rsub", 0x0D, keep_carry=True, imm=True),
    _arith("addikc", "add", 0x0E, carry_in=True, keep_carry=True, imm=True),
    _arith("rsubikc", "rsub", 0x0F, carry_in=True, keep_carry=True, imm=True),
    # ---- multiply / divide ------------------------------------------
    InstrSpec("mul", FORMAT_A, 0x10, "mul", ("rd", "ra", "rb"),
              fixed=(("func", 0x7FF, 0),), props=_p(imm=False)),
    InstrSpec("muli", FORMAT_B, 0x18, "mul", ("rd", "ra", "imm"),
              props=_p(imm=True)),
    InstrSpec("idiv", FORMAT_A, 0x12, "idiv", ("rd", "ra", "rb"),
              fixed=(("func", 0x7FF, 0x000),), props=_p(signed=True)),
    InstrSpec("idivu", FORMAT_A, 0x12, "idiv", ("rd", "ra", "rb"),
              fixed=(("func", 0x7FF, 0x002),), props=_p(signed=False)),
    # ---- barrel shifts ----------------------------------------------
    _bs("bsrl", "right", False, 0x000),
    _bs("bsra", "right", True, 0x200),
    _bs("bsll", "left", False, 0x400),
    _bsi("bsrli", "right", False, 0x000),
    _bsi("bsrai", "right", True, 0x200),
    _bsi("bslli", "left", False, 0x400),
    # ---- bitwise logic ----------------------------------------------
    _logic("or", "or", 0x20),
    _logic("and", "and", 0x21),
    _logic("xor", "xor", 0x22),
    _logic("andn", "andn", 0x23),
    _logic("ori", "or", 0x28, imm=True),
    _logic("andi", "and", 0x29, imm=True),
    _logic("xori", "xor", 0x2A, imm=True),
    _logic("andni", "andn", 0x2B, imm=True),
    # ---- single-bit shifts / sign extension (opcode 0x24) ----------
    _shift1("sra", "sra", 0x001),
    _shift1("src", "src", 0x021),
    _shift1("srl", "srl", 0x041),
    InstrSpec("sext8", FORMAT_A, 0x24, "sext", ("rd", "ra"),
              fixed=(("func", 0x7FF, 0x060),), props=_p(bits=8)),
    InstrSpec("sext16", FORMAT_A, 0x24, "sext", ("rd", "ra"),
              fixed=(("func", 0x7FF, 0x061),), props=_p(bits=16)),
    # ---- unconditional branches -------------------------------------
    _br("br", delayed=False, link=False, absolute=False, imm=False, ra_code=0x00),
    _br("brd", delayed=True, link=False, absolute=False, imm=False, ra_code=0x10),
    _br("brld", delayed=True, link=True, absolute=False, imm=False, ra_code=0x14),
    _br("bra", delayed=False, link=False, absolute=True, imm=False, ra_code=0x08),
    _br("brad", delayed=True, link=False, absolute=True, imm=False, ra_code=0x18),
    _br("brald", delayed=True, link=True, absolute=True, imm=False, ra_code=0x1C),
    _br("bri", delayed=False, link=False, absolute=False, imm=True, ra_code=0x00),
    _br("brid", delayed=True, link=False, absolute=False, imm=True, ra_code=0x10),
    _br("brlid", delayed=True, link=True, absolute=False, imm=True, ra_code=0x14),
    _br("brai", delayed=False, link=False, absolute=True, imm=True, ra_code=0x08),
    _br("braid", delayed=True, link=False, absolute=True, imm=True, ra_code=0x18),
    _br("bralid", delayed=True, link=True, absolute=True, imm=True, ra_code=0x1C),
    # ---- conditional branches (compare ra against zero) -------------
    *[_bcc(f"b{c}", c, delayed=False, imm=False) for c in CONDITIONS],
    *[_bcc(f"b{c}d", c, delayed=True, imm=False) for c in CONDITIONS],
    *[_bcc(f"b{c}i", c, delayed=False, imm=True) for c in CONDITIONS],
    *[_bcc(f"b{c}id", c, delayed=True, imm=True) for c in CONDITIONS],
    # ---- return from subroutine -------------------------------------
    InstrSpec("rtsd", FORMAT_B, 0x2D, "rtsd", ("ra", "imm"),
              fixed=(("rd", 0x1F, 0x10),), props=_p(delayed=True)),
    # ---- IMM prefix --------------------------------------------------
    InstrSpec("imm", FORMAT_B, 0x2C, "imm", ("imm",)),
    # ---- loads / stores ----------------------------------------------
    _mem("lbu", "load", 1, 0x30, imm=False),
    _mem("lhu", "load", 2, 0x31, imm=False),
    _mem("lw", "load", 4, 0x32, imm=False),
    _mem("sb", "store", 1, 0x34, imm=False),
    _mem("sh", "store", 2, 0x35, imm=False),
    _mem("sw", "store", 4, 0x36, imm=False),
    _mem("lbui", "load", 1, 0x38, imm=True),
    _mem("lhui", "load", 2, 0x39, imm=True),
    _mem("lwi", "load", 4, 0x3A, imm=True),
    _mem("sbi", "store", 1, 0x3C, imm=True),
    _mem("shi", "store", 2, 0x3D, imm=True),
    _mem("swi", "store", 4, 0x3E, imm=True),
    # ---- FSL access family -------------------------------------------
    _fsl("get", put=False, blocking=True, control=False),
    _fsl("nget", put=False, blocking=False, control=False),
    _fsl("cget", put=False, blocking=True, control=True),
    _fsl("ncget", put=False, blocking=False, control=True),
    _fsl("put", put=True, blocking=True, control=False),
    _fsl("nput", put=True, blocking=False, control=False),
    _fsl("cput", put=True, blocking=True, control=True),
    _fsl("ncput", put=True, blocking=False, control=True),
)

BY_MNEMONIC: dict[str, InstrSpec] = {s.mnemonic: s for s in INSTRUCTION_SET}

if len(BY_MNEMONIC) != len(INSTRUCTION_SET):  # pragma: no cover - sanity
    raise AssertionError("duplicate mnemonics in INSTRUCTION_SET")
