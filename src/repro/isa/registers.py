"""Register file layout and ABI roles (MicroBlaze convention).

============  =====================================================
Register      Role
============  =====================================================
``r0``        always reads as zero; writes are ignored
``r1``        stack pointer
``r2``        read-only small-data anchor (unused by our compiler)
``r3`` -``r4``  function return values
``r5`` -``r10`` function arguments
``r11``-``r12`` caller-saved temporaries
``r13``       read/write small-data anchor (unused)
``r14``       interrupt return address
``r15``       subroutine link register (``brlid r15, f``)
``r16``       trap/debug return address
``r17``       exception return address
``r18``       assembler/compiler temporary (IMM materialization)
``r19``-``r31`` callee-saved
============  =====================================================
"""

from __future__ import annotations

NUM_REGS = 32

REG_ZERO = 0
REG_SP = 1
REG_RET = 3  # first return-value register (r3; r4 for 64-bit values)
REG_RET2 = 4
REG_ARG_FIRST = 5
REG_ARG_LAST = 10
REG_TMP1 = 11
REG_TMP2 = 12
REG_INT_LINK = 14
REG_LINK = 15
REG_ASM_TMP = 18
REG_CALLEE_FIRST = 19
REG_CALLEE_LAST = 31

CALLER_SAVED = tuple(range(3, 13))
CALLEE_SAVED = tuple(range(REG_CALLEE_FIRST, REG_CALLEE_LAST + 1))


def reg_name(index: int) -> str:
    """Canonical textual name of register ``index``."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_reg(text: str) -> int:
    """Parse a register name (``r0``..``r31``, case-insensitive)."""
    t = text.strip().lower()
    if not t.startswith("r"):
        raise ValueError(f"not a register name: {text!r}")
    try:
        idx = int(t[1:], 10)
    except ValueError as exc:
        raise ValueError(f"not a register name: {text!r}") from exc
    if not 0 <= idx < NUM_REGS:
        raise ValueError(f"register index out of range: {text!r}")
    return idx
