"""MB32: a MicroBlaze-like 32-bit RISC instruction-set architecture.

The paper targets the Xilinx MicroBlaze soft processor.  MB32 models the
architecturally visible behaviour the paper's co-simulation relies on:

* 32 general-purpose registers (``r0`` hardwired to zero), MicroBlaze
  ABI register roles (``r1`` stack pointer, ``r5``-``r10`` arguments,
  ``r3``/``r4`` return values, ``r15`` call link register),
* two 32-bit instruction formats (type A: three registers, type B:
  two registers + 16-bit immediate) with an ``IMM`` prefix instruction
  for 32-bit immediates,
* delay-slot branch variants, carry-flag arithmetic, 3-cycle multiply,
* the FSL access family (``get``/``put``/``nget``/``nput`` and their
  control-bit variants) used to talk to customized hardware peripherals.

The concrete opcode numbers follow the MicroBlaze ISA manual where the
format allows; FSL instructions use a documented MB32-specific layout
(see :mod:`repro.isa.instructions`).
"""

from repro.isa.instructions import (
    FORMAT_A,
    FORMAT_B,
    INSTRUCTION_SET,
    BY_MNEMONIC,
    InstrSpec,
)
from repro.isa.registers import (
    NUM_REGS,
    REG_ARG_FIRST,
    REG_ARG_LAST,
    REG_LINK,
    REG_RET,
    REG_SP,
    REG_ZERO,
    reg_name,
    parse_reg,
)
from repro.isa.encoding import encode, Encoded
from repro.isa.decoder import DecodedInstr, decode

__all__ = [
    "INSTRUCTION_SET",
    "BY_MNEMONIC",
    "InstrSpec",
    "FORMAT_A",
    "FORMAT_B",
    "NUM_REGS",
    "REG_ZERO",
    "REG_SP",
    "REG_RET",
    "REG_LINK",
    "REG_ARG_FIRST",
    "REG_ARG_LAST",
    "reg_name",
    "parse_reg",
    "encode",
    "Encoded",
    "decode",
    "DecodedInstr",
]
