"""MB32 instruction decoder.

``decode`` maps a 32-bit word to a :class:`DecodedInstr`.  Instructions
sharing an opcode are discriminated by the ``fixed`` field constraints
on their specs (exact ``func`` values, condition codes in ``rd``,
branch-variant bits in ``ra``, …).  Candidates for each opcode are
ordered most-constrained first so that, e.g., ``cmp`` (opcode 0x05,
func 0x001) wins over ``rsubk`` (opcode 0x05, func 0x000) only when the
func bits actually match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import (
    FORMAT_A,
    FSL_ID_MASK,
    INSTRUCTION_SET,
    InstrSpec,
)


class DecodeError(ValueError):
    """Raised when a word does not correspond to any MB32 instruction."""


@dataclass(frozen=True)
class DecodedInstr:
    """A decoded instruction with extracted fields.

    ``imm`` is the sign-extended 16-bit immediate for type-B
    instructions (before any ``imm``-prefix extension, which is applied
    by the CPU at execute time).
    """

    spec: InstrSpec
    rd: int
    ra: int
    rb: int
    imm: int
    word: int

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def fsl_id(self) -> int:
        """FSL channel for FSL instructions (func/imm low bits)."""
        if self.spec.fmt == FORMAT_A:
            return self.word & FSL_ID_MASK
        return self.imm & FSL_ID_MASK

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for op in self.spec.operands:
            if op == "rd":
                parts.append(f"r{self.rd}")
            elif op == "ra":
                parts.append(f"r{self.ra}")
            elif op == "rb":
                parts.append(f"r{self.rb}")
            elif op == "imm":
                parts.append(str(self.imm))
            elif op == "fsl":
                parts.append(f"rfsl{self.fsl_id}")
        return f"{self.mnemonic} " + ", ".join(parts) if parts else self.mnemonic


def _field_values(word: int) -> dict[str, int]:
    imm = word & 0xFFFF
    return {
        "rd": (word >> 21) & 0x1F,
        "ra": (word >> 16) & 0x1F,
        "rb": (word >> 11) & 0x1F,
        "func": word & 0x7FF,
        "imm": imm,
    }


def _matches(spec: InstrSpec, fields: dict[str, int]) -> bool:
    return all((fields[name] & mask) == value for name, mask, value in spec.fixed)


# Candidates per opcode, most-constrained first so exact-func specs win.
_BY_OPCODE: dict[int, list[InstrSpec]] = {}
for _spec in INSTRUCTION_SET:
    _BY_OPCODE.setdefault(_spec.opcode, []).append(_spec)
for _lst in _BY_OPCODE.values():
    _lst.sort(key=lambda s: -len(s.fixed))


def decode(word: int) -> DecodedInstr:
    """Decode the 32-bit instruction ``word``."""
    opcode = (word >> 26) & 0x3F
    candidates = _BY_OPCODE.get(opcode)
    if not candidates:
        raise DecodeError(f"unknown opcode 0x{opcode:02x} in word 0x{word:08x}")
    fields = _field_values(word)
    for spec in candidates:
        if _matches(spec, fields):
            imm = fields["imm"]
            if imm & 0x8000:
                imm -= 0x10000
            return DecodedInstr(
                spec=spec,
                rd=fields["rd"],
                ra=fields["ra"],
                rb=fields["rb"],
                imm=imm,
                word=word,
            )
    raise DecodeError(f"unrecognized instruction word 0x{word:08x}")
