"""Binary encoding of MB32 instructions.

``encode`` turns an :class:`~repro.isa.instructions.InstrSpec` plus
operand values into a 32-bit word.  Field layout (bit 31 = MSB):

* ``opcode`` bits 31..26
* ``rd``     bits 25..21
* ``ra``     bits 20..16
* type A: ``rb`` bits 15..11, ``func`` bits 10..0
* type B: ``imm`` bits 15..0 (two's complement)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import FORMAT_A, FSL_ID_MASK, InstrSpec


@dataclass(frozen=True)
class Encoded:
    """An encoded instruction word with its originating spec."""

    word: int
    spec: InstrSpec


def _check_range(name: str, value: int, lo: int, hi: int) -> None:
    if not lo <= value <= hi:
        raise ValueError(f"{name} value {value} out of range [{lo}, {hi}]")


def encode(spec: InstrSpec, **fields: int) -> int:
    """Encode ``spec`` with operand ``fields`` into a 32-bit word.

    Recognized field names: ``rd``, ``ra``, ``rb``, ``imm``, ``fsl``.
    Immediates must fit in 16 bits (signed or unsigned interpretation);
    32-bit immediates are the assembler's job via the ``imm`` prefix
    instruction.
    """
    rd = fields.pop("rd", 0)
    ra = fields.pop("ra", 0)
    rb = fields.pop("rb", 0)
    imm = fields.pop("imm", 0)
    fsl = fields.pop("fsl", None)
    if fields:
        raise TypeError(f"unexpected fields: {sorted(fields)}")

    _check_range("rd", rd, 0, 31)
    _check_range("ra", ra, 0, 31)
    _check_range("rb", rb, 0, 31)

    func = 0
    if fsl is not None:
        _check_range("fsl", fsl, 0, FSL_ID_MASK)
        func |= fsl

    # Apply fixed field values required by the spec (condition codes,
    # branch variant bits, func discriminators...).
    fixed = {"rd": 0, "ra": 0, "rb": 0, "func": 0, "imm": 0}
    for fname, _mask, value in spec.fixed:
        fixed[fname] |= value

    rd |= fixed["rd"]
    ra |= fixed["ra"]
    rb |= fixed["rb"]
    func |= fixed["func"]

    word = (spec.opcode & 0x3F) << 26 | rd << 21 | ra << 16
    if spec.fmt == FORMAT_A:
        _check_range("func", func, 0, 0x7FF)
        word |= rb << 11 | func
    else:
        _check_range("imm", imm, -(1 << 15), (1 << 16) - 1)
        word |= (imm & 0xFFFF) | fixed["imm"]
    return word
