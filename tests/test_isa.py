"""Unit tests for the MB32 ISA definition, encoder and decoder."""

import pytest

from repro.isa import (
    BY_MNEMONIC,
    INSTRUCTION_SET,
    decode,
    encode,
)
from repro.isa.decoder import DecodeError
from repro.isa.registers import parse_reg, reg_name


class TestRegisters:
    def test_round_trip_names(self):
        for i in range(32):
            assert parse_reg(reg_name(i)) == i

    def test_case_insensitive(self):
        assert parse_reg("R7") == 7

    @pytest.mark.parametrize("bad", ["r32", "r-1", "x3", "r", "sp"])
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)


class TestEncodeDecode:
    def test_add_round_trip(self):
        word = encode(BY_MNEMONIC["add"], rd=3, ra=4, rb=5)
        instr = decode(word)
        assert instr.mnemonic == "add"
        assert (instr.rd, instr.ra, instr.rb) == (3, 4, 5)

    def test_addi_negative_imm(self):
        word = encode(BY_MNEMONIC["addi"], rd=1, ra=1, imm=-8)
        instr = decode(word)
        assert instr.mnemonic == "addi"
        assert instr.imm == -8

    def test_imm_range_check(self):
        with pytest.raises(ValueError):
            encode(BY_MNEMONIC["addi"], rd=1, ra=1, imm=1 << 17)

    def test_register_range_check(self):
        with pytest.raises(ValueError):
            encode(BY_MNEMONIC["add"], rd=32, ra=0, rb=0)

    def test_all_instructions_round_trip(self):
        """Every spec encodes and decodes back to itself."""
        for spec in INSTRUCTION_SET:
            fields = {}
            for op in spec.operands:
                if op in ("rd", "ra", "rb"):
                    fields[op] = 7
                elif op == "imm":
                    fields[op] = 4 if spec.kind == "bs" else 12
                elif op == "fsl":
                    fields[op] = 3
            word = encode(spec, **fields)
            instr = decode(word)
            assert instr.mnemonic == spec.mnemonic, (
                f"{spec.mnemonic} decoded as {instr.mnemonic} "
                f"(word {word:#010x})"
            )

    def test_cmp_vs_rsubk_disambiguation(self):
        rsubk = encode(BY_MNEMONIC["rsubk"], rd=1, ra=2, rb=3)
        cmp_ = encode(BY_MNEMONIC["cmp"], rd=1, ra=2, rb=3)
        cmpu = encode(BY_MNEMONIC["cmpu"], rd=1, ra=2, rb=3)
        assert decode(rsubk).mnemonic == "rsubk"
        assert decode(cmp_).mnemonic == "cmp"
        assert decode(cmpu).mnemonic == "cmpu"

    def test_branch_variants_disambiguation(self):
        for mn in ("br", "brd", "bra", "brad"):
            word = encode(BY_MNEMONIC[mn], rb=9)
            assert decode(word).mnemonic == mn
        for mn in ("brld", "brald"):
            word = encode(BY_MNEMONIC[mn], rd=15, rb=9)
            assert decode(word).mnemonic == mn

    def test_conditional_branch_codes(self):
        for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
            for suffix in ("", "d"):
                mn = f"b{cond}{suffix}"
                word = encode(BY_MNEMONIC[mn], ra=4, rb=5)
                assert decode(word).mnemonic == mn

    def test_fsl_channel_encoding(self):
        word = encode(BY_MNEMONIC["get"], rd=3, fsl=5)
        instr = decode(word)
        assert instr.mnemonic == "get"
        assert instr.fsl_id == 5

    def test_fsl_variants(self):
        for mn in ("get", "nget", "cget", "ncget"):
            word = encode(BY_MNEMONIC[mn], rd=3, fsl=2)
            assert decode(word).mnemonic == mn
        for mn in ("put", "nput", "cput", "ncput"):
            word = encode(BY_MNEMONIC[mn], ra=3, fsl=2)
            assert decode(word).mnemonic == mn

    def test_unknown_opcode_raises(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)

    def test_shift_imm_discriminators(self):
        for mn in ("bsrli", "bsrai", "bslli"):
            word = encode(BY_MNEMONIC[mn], rd=1, ra=2, imm=7)
            instr = decode(word)
            assert instr.mnemonic == mn
            assert instr.imm & 0x1F == 7

    def test_encodings_are_unique(self):
        """No two specs produce the same word for the same operands."""
        seen = {}
        for spec in INSTRUCTION_SET:
            fields = {}
            for op in spec.operands:
                if op in ("rd", "ra", "rb"):
                    fields[op] = 1
                elif op == "imm":
                    fields[op] = 1
                elif op == "fsl":
                    fields[op] = 1
            word = encode(spec, **fields)
            assert word not in seen, (
                f"{spec.mnemonic} and {seen[word]} share encoding {word:#010x}"
            )
            seen[word] = spec.mnemonic
