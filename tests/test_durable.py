"""The shared durable-artifact layer: envelope framing, crash-safe
writes, verified reads with quarantine, sealed journal records — and
the migration of checkpoints and sweep caches onto it."""

from __future__ import annotations

import json
import os

import pytest

from repro.runapi.durable import (
    MAGIC,
    QUARANTINE_DIR,
    REASON_BAD_HEADER,
    REASON_CORRUPT,
    REASON_TRUNCATED,
    DurableError,
    decode_envelope,
    durable_write,
    encode_envelope,
    is_envelope,
    quarantine_file,
    read_verified,
    record_intact,
    scavenge_tmp,
    seal_record,
    set_write_fault,
)


class TestEnvelope:
    def test_round_trip(self):
        payload = b"some result bytes \x00\xff" * 100
        assert decode_envelope(encode_envelope(payload)) == payload

    def test_empty_payload_round_trips(self):
        assert decode_envelope(encode_envelope(b"")) == b""

    def test_is_envelope(self):
        assert is_envelope(encode_envelope(b"x"))
        assert not is_envelope(b'{"legacy": "json"}')
        assert not is_envelope(b"")

    def test_truncation_classified(self):
        blob = encode_envelope(b"0123456789abcdef")
        with pytest.raises(DurableError) as err:
            decode_envelope(blob[:-5])
        assert err.value.reason == REASON_TRUNCATED

    def test_bitflip_classified_corrupt(self):
        blob = bytearray(encode_envelope(b"0123456789abcdef"))
        blob[-1] ^= 0x01
        with pytest.raises(DurableError) as err:
            decode_envelope(bytes(blob))
        assert err.value.reason == REASON_CORRUPT

    def test_garbled_header_classified(self):
        with pytest.raises(DurableError) as err:
            decode_envelope(MAGIC + b" not a header\npayload")
        assert err.value.reason == REASON_BAD_HEADER

    def test_unsupported_version_rejected(self):
        blob = encode_envelope(b"x").replace(b" 1 ", b" 99 ", 1)
        with pytest.raises(DurableError) as err:
            decode_envelope(blob)
        assert err.value.reason == REASON_BAD_HEADER

    def test_trailing_bytes_beyond_length_ignored(self):
        # a torn *read* can also over-read; length bounds the payload
        blob = encode_envelope(b"payload") + b"garbage-after"
        assert decode_envelope(blob) == b"payload"


class TestDurableWrite:
    def test_write_read_round_trip(self, tmp_path):
        target = tmp_path / "entry.json"
        durable_write(target, b'{"x": 1}')
        assert read_verified(target) == b'{"x": 1}'
        assert is_envelope(target.read_bytes())

    def test_no_staging_files_left(self, tmp_path):
        durable_write(tmp_path / "a.json", b"a")
        durable_write(tmp_path / "b.json", b"b", fsync=False)
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_overwrite_is_atomic_replace(self, tmp_path):
        target = tmp_path / "entry.json"
        durable_write(target, b"old")
        durable_write(target, b"new")
        assert read_verified(target) == b"new"

    def test_legacy_file_reads_verbatim(self, tmp_path):
        target = tmp_path / "legacy.json"
        target.write_bytes(b'{"pre": "envelope"}')
        assert read_verified(target) == b'{"pre": "envelope"}'

    def test_missing_file_is_none(self, tmp_path):
        assert read_verified(tmp_path / "nope.json") is None

    def test_damaged_file_quarantined_and_reported(self, tmp_path):
        target = tmp_path / "entry.json"
        durable_write(target, b"payload")
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0x01
        target.write_bytes(bytes(blob))

        reasons: list[str] = []
        qdir = tmp_path / QUARANTINE_DIR
        assert read_verified(
            target, quarantine_dir=qdir, on_damage=reasons.append
        ) is None
        assert reasons == [REASON_CORRUPT]
        assert not target.exists()  # moved, not deleted
        assert len(list(qdir.iterdir())) == 1

    def test_quarantine_collisions_keep_every_specimen(self, tmp_path):
        qdir = tmp_path / "q"
        for _ in range(3):
            specimen = tmp_path / "same-name.json"
            specimen.write_bytes(b"damaged")
            quarantine_file(specimen, qdir)
        assert len(list(qdir.iterdir())) == 3

    def test_write_fault_hook_makes_entry_unreadable(self, tmp_path):
        target = tmp_path / "entry.json"
        try:
            set_write_fault(lambda path, blob: blob[: len(blob) // 2])
            durable_write(target, b"payload bytes that will be torn")
        finally:
            set_write_fault(None)
        assert target.exists()
        assert read_verified(
            target, quarantine_dir=tmp_path / "q"
        ) is None


class TestScavenge:
    def test_scavenges_orphans(self, tmp_path):
        (tmp_path / "entry.json.tmp.12345").write_bytes(b"orphan")
        (tmp_path / "other.json.tmp.9").write_bytes(b"orphan")
        (tmp_path / "entry.json").write_bytes(b"live")
        assert scavenge_tmp(tmp_path) == 2
        assert (tmp_path / "entry.json").exists()

    def test_age_threshold_spares_young_files(self, tmp_path):
        young = tmp_path / "young.json.tmp.1"
        young.write_bytes(b"")
        old = tmp_path / "old.json.tmp.2"
        old.write_bytes(b"")
        stale = (3600.0 + 60.0)
        os.utime(old, (old.stat().st_atime,
                       old.stat().st_mtime - 2 * stale))
        assert scavenge_tmp(tmp_path, older_than_s=stale) == 1
        assert young.exists() and not old.exists()


class TestSealedRecords:
    def test_seal_and_verify(self):
        rec = seal_record({"ev": "submit", "id": "j1", "n": [1, 2]})
        assert record_intact(rec)
        assert record_intact(json.loads(json.dumps(rec)))

    def test_tampered_record_detected(self):
        rec = seal_record({"ev": "submit", "id": "j1"})
        rec["id"] = "j2"
        assert not record_intact(rec)

    def test_legacy_record_without_sha_accepted(self):
        assert record_intact({"ev": "old-journal-line"})

    def test_non_dict_rejected(self):
        assert not record_intact("torn line")
        assert not record_intact(None)

    def test_resealing_is_idempotent(self):
        rec = {"a": 1}
        once = seal_record(rec)
        assert seal_record(once) == once


class TestCheckpointEnvelope:
    """repro.cosim.checkpoint rides the shared durable layer."""

    def _sim(self):
        from repro.conformance.oracle import _make_sim
        from repro.conformance.scenario import (
            ScenarioGenerator,
            build_program,
        )

        scenario = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(0)
        program = build_program(scenario)
        sim, _trace = _make_sim(scenario, program, fast_forward=False)
        sim.run(until=50)
        return scenario, program, sim

    def test_checkpoint_is_enveloped_and_loads(self, tmp_path):
        from repro.conformance.oracle import _make_sim
        from repro.cosim.checkpoint import load_checkpoint, save_checkpoint

        scenario, program, sim = self._sim()
        path = tmp_path / "c.ckpt"
        save_checkpoint(sim, str(path), label="durable")
        assert is_envelope(path.read_bytes())

        fresh, _ = _make_sim(scenario, program, fast_forward=False)
        load_checkpoint(fresh, str(path))
        assert fresh.cpu.cycle == sim.cpu.cycle

    def test_damaged_checkpoint_classified(self, tmp_path):
        from repro.cosim.checkpoint import CheckpointError, save_checkpoint

        _scenario, _program, sim = self._sim()
        path = tmp_path / "c.ckpt"
        save_checkpoint(sim, str(path), label="durable")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))

        from repro.conformance.oracle import _make_sim
        from repro.conformance.scenario import (
            ScenarioGenerator,
            build_program,
        )
        from repro.cosim.checkpoint import load_checkpoint

        scenario = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(0)
        fresh, _ = _make_sim(
            scenario, build_program(scenario), fast_forward=False
        )
        with pytest.raises(CheckpointError, match="damaged"):
            load_checkpoint(fresh, str(path))

    def test_legacy_raw_json_checkpoint_loads(self, tmp_path):
        from repro.conformance.oracle import _make_sim
        from repro.cosim.checkpoint import (
            checkpoint_to_dict,
            load_checkpoint,
        )

        scenario, program, sim = self._sim()
        path = tmp_path / "legacy.ckpt"
        path.write_text(json.dumps(checkpoint_to_dict(sim, "legacy")))

        fresh, _ = _make_sim(scenario, program, fast_forward=False)
        load_checkpoint(fresh, str(path))
        assert fresh.cpu.cycle == sim.cpu.cycle


class TestSweepCacheEnvelope:
    """The sweep cache serves no damaged entry: corruption is a miss."""

    def _cached_entry(self, tmp_path):
        from repro.cosim.partition import DesignSpec
        from repro.cosim.sweep import SweepCache, _evaluate

        spec = DesignSpec(
            name="p0",
            factory="repro.cosim.sweep:SyntheticDesign",
            params={"seconds": 0.0, "cycles": 777},
        )
        cache = SweepCache(tmp_path / "cache")
        payload = _evaluate(spec, None, None, False)
        fp = "cafef00d" * 8  # any stable fingerprint works for the cache
        cache.put(fp, payload["result"], payload["estimate"])
        return cache, fp

    def test_round_trip(self, tmp_path):
        cache, fp = self._cached_entry(tmp_path)
        hit = cache.get(fp)
        assert hit is not None
        assert hit[0].cycles == 777

    def test_corrupt_entry_is_a_miss_and_quarantines(self, tmp_path):
        cache, fp = self._cached_entry(tmp_path)
        (entry,) = list(cache.path.glob("*.json"))
        blob = bytearray(entry.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        entry.write_bytes(bytes(blob))

        assert cache.get(fp) is None
        assert not entry.exists()
        qdir = cache.path / QUARANTINE_DIR
        assert len(list(qdir.iterdir())) == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache, fp = self._cached_entry(tmp_path)
        (entry,) = list(cache.path.glob("*.json"))
        entry.write_bytes(entry.read_bytes()[:40])
        assert cache.get(fp) is None
