"""Tests for the rapid energy estimation extension."""

import pytest

from repro.apps.cordic.design import CordicDesign
from repro.cosim.environment import CoSimulation
from repro.energy import (
    ActivityMonitor,
    InstructionEnergyModel,
    estimate_energy,
    software_energy,
)
from repro.energy.block_model import block_energy_per_toggle
from repro.iss.run import run_to_completion
from repro.mcc import build_executable
from repro.sysgen import Model
from repro.sysgen.blocks import Add, Constant, Counter, GatewayIn, Mult, Register


class TestInstructionModel:
    def run_stats(self, source):
        code, cpu = run_to_completion(build_executable(source))
        assert code is not None
        return cpu.stats

    def test_energy_positive_and_additive(self):
        stats = self.run_stats("int main(void) { return 1 + 2; }")
        report = software_energy(stats)
        assert report.dynamic_nj > 0
        assert report.total_nj == report.dynamic_nj + report.stall_nj
        assert abs(sum(report.by_class_nj.values()) - report.dynamic_nj) < 1e-9

    def test_multiply_heavy_costs_more_per_instruction(self):
        base = self.run_stats(
            "int main(void) { int s = 0;"
            " for (int i = 0; i < 50; i++) s += i; return s > 0; }"
        )
        mult = self.run_stats(
            "int main(void) { int s = 1;"
            " for (int i = 1; i < 50; i++) s += i * i; return s > 0; }"
        )
        assert software_energy(mult).nj_per_instruction > \
            software_energy(base).nj_per_instruction

    def test_every_mnemonic_has_energy(self):
        model = InstructionEnergyModel()
        from repro.isa import BY_MNEMONIC

        for mnemonic in BY_MNEMONIC:
            assert model.energy_of_mnemonic(mnemonic) > 0

    def test_custom_coefficients(self):
        stats = self.run_stats("int main(void) { return 0; }")
        cheap = InstructionEnergyModel(
            class_energy_nj={k: 0.1 for k in
                             InstructionEnergyModel().class_energy_nj}
        )
        assert cheap.estimate(stats).dynamic_nj < \
            software_energy(stats).dynamic_nj


class TestActivityMonitor:
    def test_counter_toggles_counted(self):
        m = Model()
        c = m.add(Counter("c", width=8))
        mon = ActivityMonitor(m).install()
        m.step(16)
        # an 8-bit counter toggles bit0 every cycle, bit1 every 2...
        assert mon.by_block["c"].toggles >= 15
        assert mon.cycles == 16
        assert 0 < mon.utilization("c") <= 1.0

    def test_idle_blocks_have_no_activity(self):
        m = Model()
        m.add(Constant("k", 5, width=8))
        r = m.add(Register("r", width=8))
        k = m.block("k")
        m.connect(k.o("out"), r.i("d"))
        mon = ActivityMonitor(m).install()
        m.step(10)
        # constant never toggles; register toggles once (0 -> 5)
        assert "k" not in mon.by_block
        assert mon.by_block["r"].toggles == bin(5).count("1")

    def test_uninstall_restores_step(self):
        m = Model()
        m.add(Counter("c", width=4))
        mon = ActivityMonitor(m).install()
        m.step(2)
        mon.uninstall()
        m.step(2)
        assert mon.cycles == 2  # no samples after uninstall

    def test_monitor_does_not_change_results(self):
        def run(monitored: bool):
            m = Model()
            g = m.add(GatewayIn("g", width=16))
            a = m.add(Add("a", width=16))
            m.connect(g.o("out"), a.i("a"), a.i("b"))
            if monitored:
                ActivityMonitor(m).install()
            out = []
            for v in range(5):
                g.drive(v)
                m.step()
                out.append(a.out_value("s"))
            return out

        assert run(True) == run(False)


class TestBlockModel:
    def test_multiplier_costs_more_than_wiring(self):
        mult = Mult("m", 18, 18)
        shift = __import__("repro.sysgen.blocks", fromlist=["Shift"]).Shift(
            "s", width=32
        )
        assert block_energy_per_toggle(mult) > block_energy_per_toggle(shift)

    def test_constants_free(self):
        assert block_energy_per_toggle(Constant("k", 1)) == 0.0


class TestIntegratedEstimate:
    def _run_cordic(self, p):
        design = CordicDesign(p=p, iters=8, ndata=4)
        if p == 0:
            from repro.apps.common import run_software_only

            result, cpu = run_software_only(design.program)
            monitor = None
            model = None
        else:
            monitor = ActivityMonitor(design.model).install()
            sim = CoSimulation(design.program, design.model, design.mb,
                               cpu_config=design.cpu_config)
            result = sim.run()
            cpu = sim.cpu
            model = design.model
        assert result.exit_code == 0
        slices = design.estimate().total.slices
        return estimate_energy(cpu, model, monitor, slices=slices)

    def test_cosim_energy_report(self):
        report = self._run_cordic(p=2)
        assert report.software.total_nj > 0
        assert report.peripheral_nj > 0
        assert report.quiescent_nj > 0
        assert report.total_nj == pytest.approx(
            report.software.total_nj + report.peripheral_nj
            + report.quiescent_nj
        )
        assert "TOTAL" in report.summary()

    def test_energy_tradeoff_visible(self):
        """More PEs: less software energy (fewer instructions), more
        peripheral + quiescent energy — the trade-off the paper's
        future-work extension is meant to expose."""
        small = self._run_cordic(p=2)
        big = self._run_cordic(p=8)
        assert big.software.total_nj < small.software.total_nj
        assert big.quiescent_nj / big.seconds > \
            small.quiescent_nj / small.seconds  # higher leakage power

    def test_software_only_report(self):
        report = self._run_cordic(p=0)
        assert report.peripheral_nj == 0.0
        assert report.software.total_nj > 0
