"""Farm gateway tests: protocol, cache, dedup, accounting, shedding,
drain, worker-death resilience and the CLI surface.

Checkpoint preempt/migrate bit-identity lives in
``tests/test_farm_migrate.py``.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.farm import (
    FarmCache,
    FarmClient,
    FarmError,
    JobSpec,
    job_fingerprint,
    start_farm_thread,
)
from repro.farm.httpio import json_body
from repro.farm.protocol import ProtocolError

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def synth_payload(seconds: float = 0.0, cycles: int = 1234) -> dict:
    return {
        "design": {
            "factory": "repro.cosim.sweep:SyntheticDesign",
            "params": {"seconds": seconds, "cycles": cycles},
        }
    }


@pytest.fixture(scope="module")
def farm(tmp_path_factory):
    handle = start_farm_thread(
        workers=3,
        cache_dir=str(tmp_path_factory.mktemp("farmcache")),
    )
    yield handle
    handle.stop()


@pytest.fixture()
def client(farm):
    with FarmClient(farm.host, farm.port, tenant="tests") as c:
        yield c


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            JobSpec(kind="transmogrify")

    def test_fingerprint_ignores_routing_metadata(self):
        a = JobSpec(kind="simulate", payload=synth_payload(),
                    tenant="alice", priority=3, cacheable=True)
        b = JobSpec(kind="simulate", payload=synth_payload(),
                    tenant="bob", priority=0, cacheable=False)
        assert job_fingerprint(a) == job_fingerprint(b)

    def test_fingerprint_covers_kind_and_payload(self):
        base = JobSpec(kind="simulate", payload=synth_payload())
        other_payload = JobSpec(
            kind="simulate", payload=synth_payload(cycles=99)
        )
        other_kind = JobSpec(kind="sweep", payload=synth_payload())
        assert job_fingerprint(base) != job_fingerprint(other_payload)
        assert job_fingerprint(base) != job_fingerprint(other_kind)

    def test_json_body_is_deterministic(self):
        assert json_body({"b": 1, "a": [2, {"d": 3, "c": 4}]}) == \
            json_body({"a": [2, {"c": 4, "d": 3}], "b": 1})


# ----------------------------------------------------------------------
# content-addressed store
# ----------------------------------------------------------------------
class TestFarmCache:
    def test_round_trip_verbatim(self, tmp_path):
        cache = FarmCache(tmp_path / "c")
        body = json_body({"x": 1})
        cache.put("a" * 64, body)
        assert cache.get("a" * 64) == body
        assert "a" * 64 in cache
        assert len(cache) == 1

    def test_miss_and_clear(self, tmp_path):
        cache = FarmCache(tmp_path / "c")
        assert cache.get("b" * 64) is None
        cache.put("b" * 64, b"{}")
        assert cache.clear() == 1
        assert cache.get("b" * 64) is None

    def test_bad_fingerprint_rejected(self, tmp_path):
        cache = FarmCache(tmp_path / "c")
        for bad in ("", "../evil", "x.y"):
            with pytest.raises(ValueError):
                cache.get(bad)


# ----------------------------------------------------------------------
# gateway behavior over HTTP
# ----------------------------------------------------------------------
class TestGateway:
    def test_healthz_and_status(self, client):
        assert client.healthz()
        status = client.farm_status()
        assert status["workers"]["total"] == 3
        assert not status["draining"]

    def test_simulate_job_done(self, client):
        doc = client.submit("simulate", synth_payload(cycles=777),
                            wait=True)
        assert doc["state"] == "done"
        assert doc["executions"] == 1
        result = doc["result"]
        assert result["family"] == "simulate"
        assert result["status"] == "ok"
        assert result["result"]["cycles"] == 777
        assert doc["cycles"] == 777

    def test_cache_hit_is_byte_identical_and_fast(self, client):
        payload = synth_payload(cycles=4242)
        first = client.submit("simulate", payload, wait=True)
        assert first["state"] == "done" and not first["cache_hit"]
        second = client.submit("simulate", payload, wait=True)
        assert second["cache_hit"]
        assert second["executions"] == 0  # never touched a worker
        assert second["wall_ms"] < 10  # the acceptance bound
        assert client.result_bytes(first["id"]) == \
            client.result_bytes(second["id"])

    def test_concurrent_duplicates_execute_once(self, farm):
        """N concurrent identical submissions: one execution, N
        byte-identical result payloads (in-flight coalescing)."""
        payload = synth_payload(seconds=0.3, cycles=31337)

        def submit_one(_):
            with FarmClient(farm.host, farm.port, tenant="dup") as c:
                doc = c.submit("simulate", payload, wait=True,
                               timeout_s=60)
                return doc["id"], c.result_bytes(doc["id"])

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(submit_one, range(8)))
        ids = {job_id for job_id, _ in outcomes}
        bodies = {body for _, body in outcomes}
        assert len(ids) == 1  # all coalesced onto one job
        assert len(bodies) == 1  # all byte-identical
        with FarmClient(farm.host, farm.port) as c:
            final = c.status(ids.pop())
        assert final["executions"] == 1

    def test_unknown_job_404(self, client):
        with pytest.raises(FarmError) as err:
            client.status("j999999")
        assert err.value.status == 404

    def test_bad_kind_400(self, farm):
        # the client validates kinds locally, so go in raw to prove
        # the gateway rejects them too
        conn = http.client.HTTPConnection(farm.host, farm.port,
                                          timeout=10)
        try:
            conn.request(
                "POST", "/v1/jobs",
                body=json.dumps({"kind": "transmogrify"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert "unknown job kind" in body["error"]
        finally:
            conn.close()

    def test_malformed_json_400(self, farm):
        conn = http.client.HTTPConnection(farm.host, farm.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"this is not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_result_before_done_404(self, client):
        doc = client.submit("simulate", synth_payload(seconds=0.5),
                            cacheable=False)
        with pytest.raises(FarmError) as err:
            client.result_bytes(doc["id"])
        assert err.value.status == 404
        final = client.status(doc["id"], wait=True, timeout_s=60)
        assert final["state"] == "done"

    def test_tenant_accounting(self, farm):
        payload = synth_payload(cycles=515)
        with FarmClient(farm.host, farm.port, tenant="alice") as a:
            a.submit("simulate", payload, wait=True)
        with FarmClient(farm.host, farm.port, tenant="bob") as b:
            doc = b.submit("simulate", payload, wait=True)
            tenants = b.farm_status()["tenants"]
        assert doc["cache_hit"]  # same work, second tenant pays nothing
        assert tenants["alice"]["submitted"] >= 1
        assert tenants["bob"]["cache_hits"] >= 1
        assert tenants["alice"]["cycles"] >= 515

    def test_metrics_exposed(self, client):
        metrics = client.farm_status()["metrics"]
        assert metrics["farm.jobs.submitted"] >= 1
        assert metrics["farm.jobs.completed"] >= 1
        assert "farm.latency_ms" in metrics
        assert "farm.queue_depth" in metrics

    def test_worker_death_redispatches_job(self, farm, client):
        """Kill a busy worker mid-job: the job still completes and the
        pool heals back to full strength."""
        gateway = farm.gateway
        doc = client.submit("simulate", synth_payload(seconds=1.0),
                            cacheable=False)
        victim = None
        deadline = time.time() + 10
        while victim is None and time.time() < deadline:
            for handle in list(gateway._workers.values()):
                if handle.task is not None:
                    victim = handle
                    break
            time.sleep(0.01)
        assert victim is not None, "job never reached a worker"
        os.kill(victim.process.pid, signal.SIGKILL)
        final = client.status(doc["id"], wait=True, timeout_s=60)
        assert final["state"] == "done"
        deadline = time.time() + 10
        while time.time() < deadline:
            if len(gateway._workers) == 3:
                break
            time.sleep(0.05)
        assert len(gateway._workers) == 3  # replacement spawned


# ----------------------------------------------------------------------
# load shedding + drain (dedicated farms: they change global state)
# ----------------------------------------------------------------------
class TestSheddingAndDrain:
    def test_load_shedding_503(self):
        handle = start_farm_thread(workers=1, max_queue=0)
        try:
            with FarmClient(handle.host, handle.port, tenant="shed") as c:
                with pytest.raises(FarmError) as err:
                    c.submit("simulate", synth_payload())
                assert err.value.status == 503
                assert c.farm_status()["tenants"]["shed"]["shed"] == 1
        finally:
            handle.stop()

    def test_drain_finishes_jobs_then_stops(self):
        handle = start_farm_thread(workers=2)
        try:
            client = FarmClient(handle.host, handle.port)
            slow = client.submit("simulate", synth_payload(seconds=0.4),
                                 cacheable=False)
            with FarmClient(handle.host, handle.port) as drainer:
                outcome = drainer.drain()
            assert outcome["drained"]
            assert outcome["jobs_completed"] >= 1
            # the in-flight job finished before shutdown
            final = handle.gateway.jobs[slow["id"]]
            assert final.state == "done"
            # and the listener is gone
            with FarmClient(handle.host, handle.port) as probe:
                assert not probe.healthz()
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFarmCLI:
    def test_serve_submit_status_drain(self, tmp_path, capsys):
        from repro.cli import farm_main

        port_file = tmp_path / "port"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "farm", "serve",
             "--workers", "2", "--port-file", str(port_file)],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline and not port_file.exists():
                time.sleep(0.1)
            port = port_file.read_text().strip()
            assert port.isdigit()

            job = tmp_path / "job.json"
            job.write_text(json.dumps(synth_payload(cycles=88)))
            rc = farm_main(["submit", "--port", port, "simulate",
                            str(job), "--wait"])
            out = capsys.readouterr().out
            assert rc == 0
            doc = json.loads(out)
            assert doc["state"] == "done"
            assert doc["result"]["result"]["cycles"] == 88

            rc = farm_main(["status", "--port", port])
            status = json.loads(capsys.readouterr().out)
            assert rc == 0
            assert status["workers"]["total"] == 2

            rc = farm_main(["drain", "--port", port])
            drained = json.loads(capsys.readouterr().out)
            assert rc == 0 and drained["drained"]
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestGdbServerCLI:
    def test_port_file_and_sigint(self, tmp_path):
        """--port 0 writes the actual port machine-readably and SIGINT
        shuts the server down with exit code 0."""
        from repro.cli import cc_main

        src = tmp_path / "hello.c"
        src.write_text("int main() { return 7; }\n")
        img = tmp_path / "hello.img"
        cc_main([str(src), "-o", str(img)])

        port_file = tmp_path / "port"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "gdbserver", str(img),
             "--port-file", str(port_file)],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline and not port_file.exists():
                time.sleep(0.1)
            port = int(port_file.read_text().strip())
            assert port > 0
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert f"mb32-gdbserver: port {port}" in out
            assert "shut down cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
