"""Processor-configuration sweeps: the paper's point that soft
processors expose "many possible configurations" whose trade-offs the
co-simulation environment must let designers explore."""

import pytest

from repro.iss.cpu import CPUConfig, CPUError
from repro.iss.run import make_cpu, run_to_completion
from repro.mcc import CompileOptions, build_executable
from repro.resources import microblaze_resources


def run_with(source, *, mult=True, barrel=True, divider=False):
    opts = CompileOptions(hw_multiplier=mult, hw_divider=divider,
                          hw_barrel_shifter=barrel)
    cfg = CPUConfig(use_hw_multiplier=mult, use_hw_divider=divider,
                    use_barrel_shifter=barrel)
    program = build_executable(source, opts)
    code, cpu = run_to_completion(program, config=cfg)
    assert code is not None
    return code, cpu


MULT_HEAVY = """
int main(void) {
    int acc = 0;
    for (int i = 1; i <= 20; i++) acc += i * (i + 3);
    return acc;
}
"""

SHIFT_HEAVY = """
int main(void) {
    int acc = 0;
    for (int i = 0; i < 16; i++) acc += (0x40000 >> i) + (1 << i);
    return acc & 0xFFFF;
}
"""


class TestConfigurationCorrectness:
    @pytest.mark.parametrize("mult", [True, False])
    @pytest.mark.parametrize("barrel", [True, False])
    def test_all_configs_agree(self, mult, barrel):
        baseline, _ = run_with(MULT_HEAVY)
        code, _ = run_with(MULT_HEAVY, mult=mult, barrel=barrel)
        assert code == baseline

    def test_shift_heavy_configs_agree(self):
        baseline, _ = run_with(SHIFT_HEAVY)
        code, _ = run_with(SHIFT_HEAVY, barrel=False)
        assert code == baseline

    def test_divider_config_agrees(self):
        src = "int main(void) { int a = -9999; return a / 13 + a % 13; }"
        soft, _ = run_with(src)
        hard, _ = run_with(src, divider=True)
        assert soft == hard


class TestConfigurationTradeoffs:
    def test_soft_multiply_costs_cycles_saves_mults(self):
        _, hw = run_with(MULT_HEAVY, mult=True)
        _, sw = run_with(MULT_HEAVY, mult=False)
        assert sw.cycle > hw.cycle  # slower without the multiplier...
        r_hw = microblaze_resources(use_hw_multiplier=True)
        r_sw = microblaze_resources(use_hw_multiplier=False)
        assert r_sw.mult18 < r_hw.mult18  # ...but smaller

    def test_no_barrel_shifter_costs_cycles_saves_slices(self):
        _, hw = run_with(SHIFT_HEAVY, barrel=True)
        _, sw = run_with(SHIFT_HEAVY, barrel=False)
        assert sw.cycle > hw.cycle
        assert microblaze_resources(use_barrel_shifter=False).slices < \
            microblaze_resources(use_barrel_shifter=True).slices

    def test_hw_divider_faster_on_division(self):
        src = """
        int main(void) {
            int acc = 0;
            for (int i = 1; i <= 20; i++) acc += 100000 / i;
            return acc > 0;
        }
        """
        _, soft = run_with(src, divider=False)
        _, hard = run_with(src, divider=True)
        assert hard.cycle < soft.cycle


class TestConfigurationEnforcement:
    def test_mismatched_multiplier_config_traps(self):
        """Compiling for hw-mult but running without it must fault, not
        silently miscompute."""
        program = build_executable(MULT_HEAVY,
                                   CompileOptions(hw_multiplier=True))
        cpu = make_cpu(program, config=CPUConfig(use_hw_multiplier=False))
        with pytest.raises(CPUError, match="multiplier"):
            cpu.run()

    def test_mismatched_barrel_config_traps(self):
        program = build_executable(SHIFT_HEAVY,
                                   CompileOptions(hw_barrel_shifter=True))
        cpu = make_cpu(program, config=CPUConfig(use_barrel_shifter=False))
        with pytest.raises(CPUError, match="barrel"):
            cpu.run()
