"""Lockstep-vs-scalar equivalence for the batched co-simulation engine.

The contract under test: every lane of a :class:`BatchedCoSimulation`
— including lanes evicted to the scalar engine mid-run — produces the
*complete* conformance observable surface bit-identically to an
independent scalar run with the same budget.  Divergence is exercised
with per-lane cycle budgets (lanes freeze at different cycles), forced
evictions, and a genuine deadlock (watchdog eviction).

``REPRO_BATCH_SMOKE_SCENARIOS`` / ``REPRO_BATCH_SMOKE_WIDTH`` scale the
corpus sweep up for the CI batch-smoke job (25 scenarios at width 8)
without slowing the default tier-1 run.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.conformance.oracle import observe, observe_batched
from repro.conformance.scenario import Scenario, ScenarioGenerator
from repro.cosim.batch import BatchedCoSimulation, LaneResult, lane_factory
from repro.cosim.environment import CoSimDeadlock, CoSimulation
from repro.faults.campaign import build_design
from repro.runapi import RunPolicy
from repro.sysgen.batched import BatchUnsupported
from repro.sysgen.model import Model

N_SCENARIOS = int(os.environ.get("REPRO_BATCH_SMOKE_SCENARIOS", "4"))
WIDTH = int(os.environ.get("REPRO_BATCH_SMOKE_WIDTH", "8"))

#: staggered per-lane budget divisors — every lane freezes at its own
#: cycle, so the lane mask is exercised on every scenario
_DIVISORS = (1, 3, 7, 2, 5, 9, 4, 13, 6, 11, 8, 15)


def _lane_budgets(scenario: Scenario, width: int) -> list[int]:
    return [max(2, scenario.max_cycles // _DIVISORS[i % len(_DIVISORS)])
            for i in range(width)]


def _cordic_factory(**params):
    return lane_factory(lambda: build_design("cordic", params))


# --------------------------------------------------------------------------
# conformance equivalence


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_lockstep_matches_scalar_over_corpus(index):
    scenario = ScenarioGenerator(seed=0).scenario(index)
    budgets = _lane_budgets(scenario, WIDTH)
    evict = (1 % WIDTH,)
    observations = observe_batched(
        scenario, budgets, force_evict=evict, force_evict_cycle=50
    )
    assert any(o.mode == "batched_evicted" for o in observations)
    for lane, obs in enumerate(observations):
        ref = observe(
            dataclasses.replace(scenario, max_cycles=budgets[lane]),
            "per_cycle",
        )
        assert obs.comparable() == ref.comparable(), (
            f"lane {lane} (budget {budgets[lane]}, mode {obs.mode}) "
            f"diverged from the scalar engine on scenario {scenario.name}"
        )


def test_watchdog_eviction_reproduces_scalar_deadlock():
    path = Path(__file__).parent / "golden" / "s0-0026.json"
    scenario = Scenario.from_dict(json.loads(path.read_text())["scenario"])
    ref = observe(scenario, "per_cycle")
    assert ref.status == "deadlock", "corpus scenario no longer deadlocks"
    observations = observe_batched(scenario, [scenario.max_cycles] * 2)
    for obs in observations:
        # the lockstep watchdog cannot raise mid-vector; it must evict,
        # and the scalar replay must land on the identical deadlock
        assert obs.mode == "batched_evicted"
        assert obs.status == "deadlock"
        assert obs.comparable() == ref.comparable()


# --------------------------------------------------------------------------
# engine-level behaviour


def test_per_lane_budgets_and_forced_eviction():
    params = [dict(p=2, iters=8, ndata=6, seed=s) for s in (1, 2, 3, 4)]
    budgets = [2_000_000, 400, 2_000_000, 700]
    refs = []
    for prm, budget in zip(params, budgets):
        design = build_design("cordic", dict(prm))
        sim = CoSimulation(design.program, design.model, design.mb,
                           cpu_config=design.cpu_config)
        refs.append(sim.run(until=budget))

    batch = BatchedCoSimulation(
        [_cordic_factory(**prm) for prm in params],
        force_evict=[2], force_evict_cycle=100,
    )
    assert batch.fallback_blocks == ["fsl_out0", "fsl_in0"]
    results = batch.run(until=budgets)

    assert [r.evicted for r in results] == [False, False, True, False]
    assert results[2].eviction_reason == "forced eviction"
    for res, ref in zip(results, refs):
        assert res.error is None
        got = res.result
        assert (got.exit_code, got.cycles, got.instructions,
                got.stall_cycles, got.halt_reason) == (
            ref.exit_code, ref.cycles, ref.instructions,
            ref.stall_cycles, ref.halt_reason)


def test_lane_result_status_folding():
    ok = LaneResult(0, None, error=CoSimDeadlock("stuck"))
    assert ok.status == "deadlock"
    assert LaneResult(0, None, error=ValueError("x")).status == "error:ValueError"
    assert LaneResult(0, None).status == "exit"


def test_wall_timeout_records_per_lane_timeouts():
    batch = BatchedCoSimulation(
        [_cordic_factory(p=2, iters=8, ndata=6, seed=1)]
    )
    results = batch.run(until=2_000_000,
                        policy=RunPolicy(wall_timeout_s=0.0))
    assert results[0].status == "error:CoSimTimeout"
    assert "wall-clock budget" in str(results[0].error)


def test_structurally_different_lanes_rejected():
    with pytest.raises(BatchUnsupported, match="lane 1"):
        BatchedCoSimulation([
            _cordic_factory(p=1, iters=8, ndata=6, seed=1),
            _cordic_factory(p=2, iters=8, ndata=6, seed=1),
        ])


def test_extra_models_rejected():
    def factory():
        design = build_design("cordic", dict(p=1, iters=6, ndata=4, seed=1))
        return CoSimulation(design.program, design.model, design.mb,
                            cpu_config=design.cpu_config,
                            extra_models=[Model("extra")])

    with pytest.raises(BatchUnsupported, match="extra_models"):
        BatchedCoSimulation([factory])


def test_mismatched_budget_list_rejected():
    batch = BatchedCoSimulation(
        [_cordic_factory(p=1, iters=6, ndata=4, seed=1)]
    )
    with pytest.raises(ValueError, match="per-lane budgets"):
        batch.run(until=[100, 200])
