"""Tests for the unified telemetry subsystem.

Covers the event bus, the metrics pipeline, the exporters, the
profilers, the mode-invariance contract (per-cycle and fast-forward
runs must produce identical design-level metrics) and the
``mb32-profile`` CLI.
"""

import contextlib
import io
import json

import pytest

from repro.apps.cordic.design import CordicDesign
from repro.cli import profile_main
from repro.cosim.environment import CoSimulation
from repro.iss.run import make_cpu
from repro.mcc import build_executable
from repro.telemetry import (
    FSL_PUSH,
    RETIRE,
    STALL_END,
    EventBus,
    MetricsRegistry,
    Telemetry,
    TelemetryEvent,
    current_telemetry,
    telemetry_scope,
)
from repro.telemetry.export import ChromeTraceExporter, CosimVCDExporter

LOOP_SRC = """
int main(void) {
    int sum = 0;
    for (int i = 0; i < 10; i++) sum += i;
    return sum;
}
"""


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_any_subscriber_sees_every_kind(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(TelemetryEvent(RETIRE, 1, "cpu"))
        bus.emit(TelemetryEvent(FSL_PUSH, 2, "ch"))
        assert [e.kind for e in seen] == [RETIRE, FSL_PUSH]

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(STALL_END,))
        bus.emit(TelemetryEvent(RETIRE, 1, "cpu"))
        bus.emit(TelemetryEvent(STALL_END, 2, "ch", aux=5))
        assert len(seen) == 1 and seen[0].aux == 5

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(RETIRE,))
        bus.unsubscribe(seen.append)
        bus.emit(TelemetryEvent(RETIRE, 1, "cpu"))
        assert seen == []
        assert bus.subscriber_count == 0

    def test_subscriber_count(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        bus.subscribe(lambda e: None, kinds=(RETIRE, STALL_END))
        assert bus.subscriber_count == 2


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_and_gauge_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        gauge = reg.gauge("b")
        gauge.set(7)
        gauge.set(2)
        snap = reg.snapshot()
        assert snap["a"] == 3
        assert snap["b"] == {"value": 2, "high_water": 7}

    def test_histogram_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("d", bounds=(1, 4))
        for v in (1, 2, 100):
            h.observe(v)
        snap = reg.snapshot()["d"]
        assert snap["buckets"] == {"<=1": 1, "<=4": 1, "inf": 1}
        assert snap["total"] == 3 and snap["sum"] == 103

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {}


# ----------------------------------------------------------------------
# No-op fast path
# ----------------------------------------------------------------------
class TestDisabledByDefault:
    def test_cpu_has_no_bus_without_telemetry(self):
        cpu = make_cpu(build_executable(LOOP_SRC))
        assert cpu.events is None
        cpu.run()
        assert cpu.exit_code == 45

    def test_cosim_has_no_telemetry_outside_scope(self):
        design = CordicDesign(p=2, iters=4, ndata=2)
        sim = CoSimulation(design.program, design.model, design.mb,
                           cpu_config=design.cpu_config)
        assert sim.telemetry is None
        assert sim.cpu.events is None

    def test_ambient_scope_attaches_and_restores(self):
        assert current_telemetry() is None
        tel = Telemetry()
        with telemetry_scope(tel):
            assert current_telemetry() is tel
            design = CordicDesign(p=2, iters=4, ndata=2)
            sim = CoSimulation(design.program, design.model, design.mb,
                               cpu_config=design.cpu_config)
            assert sim.telemetry is tel
            assert sim.cpu.events is tel.bus
        assert current_telemetry() is None


# ----------------------------------------------------------------------
# Mode invariance: the acceptance contract
# ----------------------------------------------------------------------
def run_instrumented(fast_forward: bool, *, fifo_depth=2, regions=False,
                     phases=False):
    tel = Telemetry()
    design = CordicDesign(p=8, iters=24, ndata=16, fifo_depth=fifo_depth,
                          fast_forward=fast_forward)
    if regions:
        tel.enable_regions(design.program)
    if phases:
        tel.enable_phases()
    with telemetry_scope(tel):
        result = design.run()
    return tel, result


class TestModeInvariance:
    def test_invariant_snapshot_identical_across_modes(self):
        tel_ff, res_ff = run_instrumented(True)
        tel_pc, res_pc = run_instrumented(False)
        assert res_ff.cycles == res_pc.cycles
        assert tel_ff.invariant_snapshot() == tel_pc.invariant_snapshot()

    def test_snapshot_counts_match_cosim_result(self):
        for fast_forward in (True, False):
            tel, result = run_instrumented(fast_forward)
            snap = tel.snapshot(result)
            assert snap["run"]["cycles"] == result.cycles
            assert snap["run"]["instructions"] == result.instructions
            assert snap["cpu"]["cycles"] == result.cycles
            assert snap["cpu"]["instructions"] == result.instructions

    def test_stall_metrics_sum_to_cpu_stall_cycles(self):
        tel, result = run_instrumented(True)
        stalls = tel.collector.stalls_by_channel()
        assert result.stall_cycles > 0
        assert sum(stalls.values()) == result.stall_cycles

    def test_fast_forward_metrics_only_in_ff_mode(self):
        tel_ff, res_ff = run_instrumented(True)
        tel_pc, _ = run_instrumented(False)
        ff = tel_ff.collector.fast_forward_stats(res_ff.cycles)
        assert ff["windows"] > 0 and ff["skipped_cycles"] > 0
        assert tel_pc.collector.fast_forward_stats(1)["windows"] == 0

    def test_snapshot_is_json_safe(self):
        tel, result = run_instrumented(True)
        json.dumps(tel.snapshot(result))


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestChromeTraceExporter:
    def run_traced(self, fast_forward=True):
        tel = Telemetry()
        tracer = ChromeTraceExporter(tel.bus)
        design = CordicDesign(p=4, iters=24, ndata=8, fifo_depth=2,
                              fast_forward=fast_forward)
        with telemetry_scope(tel):
            design.run()
        return tracer

    def test_document_shape(self):
        tracer = self.run_traced()
        doc = json.loads(tracer.to_json())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        assert events, "trace must be non-empty"
        for e in events:
            assert e["ph"] in ("M", "X", "i", "C")
            if e["ph"] != "M":
                assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 1

    def test_tracks_cover_cpu_channels_and_blocks(self):
        tracer = self.run_traced()
        doc = json.loads(tracer.to_json())
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"cpu", "mb_out0", "mb_in0", "fsl_in0", "fsl_out0"} <= names

    def test_fast_forward_slices_present(self):
        tracer = self.run_traced(fast_forward=True)
        doc = json.loads(tracer.to_json())
        slices = [e for e in doc["traceEvents"]
                  if e["name"] == "fast-forward"]
        assert slices
        assert all(e["dur"] == e["args"]["skipped_cycles"] for e in slices)

    def test_max_events_bounds_memory(self):
        tel = Telemetry()
        tracer = ChromeTraceExporter(tel.bus, max_events=10)
        design = CordicDesign(p=2, iters=24, ndata=8)
        with telemetry_scope(tel):
            design.run()
        assert len(tracer.trace_events()) <= 10 + len(tracer._tids) + 1
        assert tracer.dropped > 0
        assert json.loads(tracer.to_json())["otherData"]["dropped_events"] \
            == tracer.dropped


class TestCosimVCDExporter:
    def test_writes_cycle_faithful_vcd(self):
        tel = Telemetry()
        design = CordicDesign(p=2, iters=24, ndata=8, fifo_depth=2)
        out = io.StringIO()
        vcd = CosimVCDExporter(tel.bus, out, design.mb.channels())
        with telemetry_scope(tel):
            result = design.run()
        text = out.getvalue()
        assert vcd.changes > 0
        assert "$timescale 20 ns $end" in text
        assert "cpu_pc" in text and "cpu_stall" in text
        assert "mb_out0_occupancy" in text
        times = [int(line[1:]) for line in text.splitlines()
                 if line.startswith("#")]
        assert times == sorted(times)
        assert times[-1] <= result.cycles


# ----------------------------------------------------------------------
# Profilers
# ----------------------------------------------------------------------
class TestProfilers:
    def test_region_cycles_sum_to_total(self):
        for fast_forward in (True, False):
            tel, result = run_instrumented(fast_forward, regions=True)
            tel.regions.finalize(result.cycles)
            report = tel.regions.report()
            assert sum(r["cycles"] for r in report) == result.cycles
            assert sum(r["instructions"] for r in report) \
                == result.instructions
            assert abs(sum(r["share"] for r in report) - 1.0) < 1e-9

    def test_region_attribution_is_mode_invariant(self):
        tel_ff, res = run_instrumented(True, regions=True)
        tel_pc, _ = run_instrumented(False, regions=True)
        tel_ff.regions.finalize(res.cycles)
        tel_pc.regions.finalize(res.cycles)
        assert tel_ff.regions.report() == tel_pc.regions.report()

    def test_phase_timer_accounts_the_run_loop(self):
        tel, result = run_instrumented(True, phases=True)
        report = tel.phases.report(result.wall_seconds)
        assert set(report) >= {"cpu_step", "fast_forward_scan", "other"}
        accounted = sum(row["seconds"] for row in report.values())
        assert accounted == pytest.approx(result.wall_seconds, rel=0.05)

    def test_phases_off_means_plain_loop(self):
        tel, _ = run_instrumented(True)
        assert tel.phases is None


# ----------------------------------------------------------------------
# mb32-profile CLI
# ----------------------------------------------------------------------
class TestProfileCLI:
    def metrics(self, args):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = profile_main(args)
        assert rc == 0
        return json.loads(buf.getvalue())

    def test_metrics_match_result_in_both_modes(self):
        base = ["cordic", "--p", "4", "--iters", "24", "--ndata", "8",
                "--fifo-depth", "2", "--metrics", "-"]
        ff = self.metrics(base)
        pc = self.metrics(base + ["--per-cycle"])
        for snap in (ff, pc):
            assert snap["run"]["exit_code"] == 0
            assert snap["run"]["cycles"] == snap["cpu"]["cycles"]
            assert snap["run"]["instructions"] == snap["cpu"]["instructions"]
        assert ff["run"]["cycles"] == pc["run"]["cycles"]
        assert ff["cpu"] == pc["cpu"]
        assert ff["fast_forward"]["windows"] > 0
        assert pc["fast_forward"]["windows"] == 0

    def test_trace_and_vcd_outputs(self, tmp_path):
        trace = tmp_path / "out.json"
        vcd = tmp_path / "out.vcd"
        rc = profile_main(["cordic", "--p", "2", "--iters", "8",
                           "--ndata", "4", "--trace", str(trace),
                           "--vcd", str(vcd), "--metrics",
                           str(tmp_path / "m.json")])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert "$dumpvars" in vcd.read_text()

    def test_software_only_run(self, tmp_path):
        src = tmp_path / "p.c"
        src.write_text(LOOP_SRC)
        snap = self.metrics(["run", str(src), "--metrics", "-"])
        assert snap["run"]["exit_code"] == 45
        assert snap["run"]["cycles"] == snap["cpu"]["cycles"] > 0

    def test_matmul_app(self):
        snap = self.metrics(["matmul", "--block", "2", "--matn", "4",
                             "--metrics", "-"])
        assert snap["run"]["exit_code"] == 0
        assert snap["run"]["cycles"] == snap["cpu"]["cycles"]


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
class TestSweepTelemetry:
    def specs(self):
        from repro.cosim.partition import DesignSpec

        return [DesignSpec(
            name="cordic-p2",
            factory="repro.apps.cordic.design:CordicDesign",
            params={"p": 2, "iters": 8, "ndata": 4},
        )]

    def test_sweep_attaches_metrics(self):
        from repro.cosim.sweep import sweep

        report = sweep(self.specs(), workers=0, telemetry=True)
        (r,) = report.results
        assert r.ok and r.metrics is not None
        assert r.metrics["run"]["cycles"] == r.result.cycles
        assert "metrics" in r.to_dict()
        json.dumps(report.to_dict())

    def test_sweep_without_telemetry_has_none(self):
        from repro.cosim.sweep import sweep

        report = sweep(self.specs(), workers=0)
        assert report.results[0].metrics is None
        assert "metrics" not in report.results[0].to_dict()

    def test_cache_hits_carry_no_metrics(self, tmp_path):
        from repro.cosim.sweep import sweep

        sweep(self.specs(), workers=0, cache_dir=tmp_path)
        report = sweep(self.specs(), workers=0, cache_dir=tmp_path,
                       telemetry=True)
        (r,) = report.results
        assert r.cache_hit and r.metrics is None


# ----------------------------------------------------------------------
# Tracer adapters share the telemetry bus
# ----------------------------------------------------------------------
class TestSharedBus:
    def test_instruction_tracer_reuses_telemetry_bus(self):
        from repro.iss.trace import InstructionTracer

        tel = Telemetry()
        cpu = make_cpu(build_executable(LOOP_SRC))
        tel.attach_cpu(cpu)
        tracer = InstructionTracer(cpu).install()
        cpu.run()
        assert cpu.events is tel.bus
        assert len(tracer.entries) == cpu.stats.instructions
        # the metrics pipeline saw the same stream
        assert tel.snapshot()["cpu"]["instructions"] \
            == cpu.stats.instructions

    def test_fsl_trace_and_metrics_agree(self):
        from repro.cosim.trace import FSLTrace

        tel = Telemetry()
        design = CordicDesign(p=2, iters=8, ndata=4, fifo_depth=2)
        with telemetry_scope(tel):
            sim = CoSimulation(design.program, design.model, design.mb,
                               cpu_config=design.cpu_config)
            trace = FSLTrace(design.mb,
                             clock=lambda: sim.cpu.cycle).install()
            sim.run()
        pushed = sum(1 for t in trace.transactions
                     if t.channel == "mb_out0" and t.direction == "push")
        (out_channel,) = [ch for ch in design.mb.channels()
                          if ch.name == "mb_out0"]
        assert pushed == out_channel.total_pushed
