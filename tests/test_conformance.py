"""Differential conformance harness tests.

Tier-1 keeps the fuzz volume small (a handful of scenarios per test);
the full corpus runs under the ``conformance`` marker in CI via
``pytest -m conformance`` and ``mb32-conformance``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import conformance_main
from repro.conformance import (
    ALL_MODES,
    ScenarioGenerator,
    build_model,
    build_program,
    check_scenario,
    first_divergence,
    observe,
    shrink_scenario,
)
from repro.conformance.scenario import OpSpec, PipelineSpec, Scenario, StageSpec
from repro.cosim import CoSimulation
from repro.cosim.environment import CoSimDeadlock
from repro.sysgen.blocks.fsl import FSLWrite


# ----------------------------------------------------------------------
# scenario generation
# ----------------------------------------------------------------------
def test_generator_is_deterministic():
    a = ScenarioGenerator(seed=7).scenario(3)
    b = ScenarioGenerator(seed=7).scenario(3)
    assert a == b
    assert a.to_dict() == b.to_dict()
    assert a.c_source() == b.c_source()


def test_generator_scenarios_depend_only_on_index():
    gen = ScenarioGenerator(seed=5)
    late = gen.scenario(9)
    # Drawing other indexes first must not change scenario 9.
    gen2 = ScenarioGenerator(seed=5)
    for scenario in gen2.scenarios(9):
        assert scenario.name.startswith("s5-")
    assert gen2.scenario(9) == late


def test_different_seeds_differ():
    a = ScenarioGenerator(seed=0).scenario(0)
    b = ScenarioGenerator(seed=1).scenario(0)
    assert a.to_dict() != b.to_dict()


def test_scenario_dict_roundtrip():
    for index in range(8):
        scenario = ScenarioGenerator(seed=2).scenario(index)
        again = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert again == scenario


def test_generated_scenarios_build_and_compile():
    gen = ScenarioGenerator(seed=3)
    for scenario in gen.scenarios(5):
        program = build_program(scenario)
        assert program.entry >= 0
        model, mb = build_model(scenario)
        model.compile()
        assert mb.n_links == 2 * len(scenario.pipelines)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31), index=st.integers(0, 500))
def test_generator_determinism_property(seed, index):
    a = ScenarioGenerator(seed=seed).scenario(index)
    b = ScenarioGenerator(seed=seed).scenario(index)
    assert a == b
    assert Scenario.from_dict(a.to_dict()) == a


# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------
def test_small_fuzz_all_modes_agree():
    gen = ScenarioGenerator(seed=0)
    for scenario in gen.scenarios(4):
        verdict = check_scenario(scenario, ALL_MODES)
        assert verdict.ok, (scenario.name, verdict.divergences,
                            verdict.build_error)
        assert verdict.reference.status == "exit"


def test_deadlock_scenario_agrees_across_modes():
    # seed 0 / index 26 deliberately overflows its pipeline: every mode
    # must report the deadlock at the same cycle with the same FIFO
    # state (the sweep-worker path included).
    scenario = ScenarioGenerator(seed=0).scenario(26)
    assert any(op.kind in ("overflow_put", "starve_get")
               for op in scenario.ops)
    verdict = check_scenario(scenario, ALL_MODES)
    assert verdict.ok, verdict.divergences
    assert verdict.reference.status == "deadlock"
    assert verdict.reference.halt_reason == ""


def test_observation_surface_is_complete():
    scenario = ScenarioGenerator(seed=0).scenario(0)
    obs = observe(scenario, "per_cycle")
    data = obs.to_dict()
    assert data["status"] == "exit"
    assert data["halt_reason"] == "EXIT"
    assert len(data["regs"]) == 32
    assert len(data["mem_digest"]) == 64
    assert data["channels"]  # per-channel FIFO statistics
    for stats in data["channels"].values():
        assert set(stats) == {"total_pushed", "total_popped", "push_rejects",
                              "pop_rejects", "max_occupancy", "occupancy"}
    assert data["probes"]  # every pipeline probes exists/full
    assert data["trace_count"] > 0  # FSL transactions were logged
    assert obs.comparable().keys() == (data.keys() - {"mode", "error"})


def test_unknown_mode_rejected():
    scenario = ScenarioGenerator(seed=0).scenario(0)
    with pytest.raises(ValueError, match="unknown execution mode"):
        observe(scenario, "warp-speed")


def test_subprocess_mode_matches_reference():
    scenario = ScenarioGenerator(seed=0).scenario(1)
    ref = observe(scenario, "per_cycle")
    sub = observe(scenario, "subprocess")
    assert sub.mode == "subprocess"
    assert first_divergence(ref.comparable(), sub.comparable()) is None


# ----------------------------------------------------------------------
# first_divergence
# ----------------------------------------------------------------------
def test_first_divergence_reports_dotted_path():
    a = {"x": {"y": [1, 2, 3]}, "z": 0}
    b = {"x": {"y": [1, 9, 3]}, "z": 0}
    assert first_divergence(a, b) == ("x.y[1]", 2, 9)
    assert first_divergence(a, a) is None


def test_first_divergence_sorted_key_order():
    a = {"b": 1, "a": 1}
    b = {"b": 2, "a": 2}
    assert first_divergence(a, b)[0] == "a"


def test_first_divergence_missing_keys_and_lengths():
    assert first_divergence({"k": 1}, {}) == ("k", 1, "<missing>")
    assert first_divergence({}, {"k": 1}) == ("k", "<missing>", 1)
    assert first_divergence({"l": [1]}, {"l": [1, 2]}) == \
        ("l[1]", "<missing>", 2)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def test_shrink_reduces_to_failing_core():
    scenario = Scenario(
        name="shrink-me",
        seed="t",
        pipelines=(
            PipelineSpec(channel=0, stages=(StageSpec("add"),
                                            StageSpec("reg"))),
            PipelineSpec(channel=1),
        ),
        ops=(
            OpSpec(kind="arith", count=8),
            OpSpec(kind="session", channel=0, count=16),
            OpSpec(kind="arith", count=4, param=2),
        ),
    )

    # Synthetic failure: any scenario still containing a session op on
    # channel 0 "fails".  The shrinker must strip everything else.
    def fails(candidate):
        return any(op.kind == "session" and op.channel == 0
                   for op in candidate.ops)

    small = shrink_scenario(scenario, fails=fails, max_checks=100)
    assert fails(small)
    assert len(small.ops) == 1
    assert small.ops[0].kind == "session"
    assert small.ops[0].count == 1        # counts halved to the floor
    assert len(small.pipelines) == 1      # unused pipeline dropped
    assert small.pipelines[0].stages == ()  # stages dropped
    assert small.name == "shrink-me-min"


def test_shrink_respects_budget():
    scenario = ScenarioGenerator(seed=0).scenario(2)
    calls = []

    def fails(candidate):
        calls.append(candidate)
        return True

    shrink_scenario(scenario, fails=fails, max_checks=7)
    assert len(calls) <= 7


def test_shrink_returns_input_when_nothing_smaller_fails():
    scenario = ScenarioGenerator(seed=0).scenario(0)
    small = shrink_scenario(scenario, fails=lambda s: False, max_checks=10)
    assert small == scenario


# ----------------------------------------------------------------------
# environment reuse after a deadlock (regression: stale FSLWrite.dropped)
# ----------------------------------------------------------------------
def _drop_happy_design():
    """Ungated echo over a 2-deep FIFO: flooding it drops words, and a
    trailing blocking get on a silent second channel deadlocks."""
    return Scenario(
        name="reuse",
        seed="t",
        fifo_depth=2,
        pipelines=(PipelineSpec(channel=0, gate_full=False),
                   PipelineSpec(channel=1, gate_full=True)),
        ops=(OpSpec(kind="overflow_put", channel=0, count=12),
             OpSpec(kind="starve_get", channel=1)),
        max_cycles=60_000,
    )


def test_fslwrite_reset_clears_dropped():
    block = FSLWrite("wr")
    block.dropped = 5
    block.reset()
    assert block.dropped == 0


def test_environment_rerun_after_deadlock_is_identical():
    scenario = _drop_happy_design()
    program = build_program(scenario)

    model, mb = build_model(scenario)
    sim = CoSimulation(program, model, mb,
                       cpu_config=scenario.cpu_config())
    with pytest.raises(CoSimDeadlock):
        sim.run(until=scenario.max_cycles)
    # The ungated flood must actually have dropped words, so a stale
    # counter would be visible after reset.
    wr = mb.write_blocks[0]
    assert wr.dropped > 0
    first_cycle = sim.cpu.cycle

    sim.reset()
    assert wr.dropped == 0
    with pytest.raises(CoSimDeadlock):
        sim.run(until=scenario.max_cycles)

    fresh = observe(scenario, "per_cycle", program)
    rerun = observe(scenario, "reset_rerun", program)
    assert fresh.status == "deadlock"
    assert first_divergence(fresh.comparable(), rerun.comparable()) is None
    assert sim.cpu.cycle == first_cycle
    assert rerun.dropped == fresh.dropped
    assert any(n > 0 for n in fresh.dropped.values())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_report_is_reproducible(tmp_path, capsys):
    out1 = tmp_path / "a.json"
    out2 = tmp_path / "b.json"
    assert conformance_main(["--seed", "0", "--count", "3", "--quiet",
                             "-o", str(out1)]) == 0
    assert conformance_main(["--seed", "0", "--count", "3", "--quiet",
                             "-o", str(out2)]) == 0
    capsys.readouterr()
    assert out1.read_text() == out2.read_text()
    payload = json.loads(out1.read_text())
    assert payload["kind"] == "mb32-conformance"
    assert payload["ok"] is True
    assert payload["total"] == 3
    assert payload["modes"] == list(ALL_MODES)


def test_cli_usage_errors(capsys):
    assert conformance_main(["--modes", "warp"]) == 2
    assert "unknown mode" in capsys.readouterr().err
    assert conformance_main(["--count", "-3"]) == 2
    assert conformance_main(["--bless"]) == 2
    assert "--corpus" in capsys.readouterr().err
    assert conformance_main(["--pin", "1,x", "--count", "0"]) == 2


def test_cli_mode_subset(tmp_path, capsys):
    out = tmp_path / "r.json"
    assert conformance_main(["--seed", "0", "--count", "2", "--quiet",
                             "--modes", "fast_forward",
                             "-o", str(out)]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["modes"] == ["fast_forward"]
    for record in payload["scenarios"]:
        assert sorted(record["modes"]) == ["fast_forward", "per_cycle"]


# ----------------------------------------------------------------------
# the full corpus — CI only
# ----------------------------------------------------------------------
@pytest.mark.conformance
def test_full_fuzz_corpus():
    gen = ScenarioGenerator(seed=0)
    failures = []
    for scenario in gen.scenarios(60):
        verdict = check_scenario(scenario, ALL_MODES)
        if not verdict.ok:
            failures.append((scenario.name, verdict.divergences,
                             verdict.build_error))
    assert not failures, failures


@pytest.mark.conformance
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), index=st.integers(0, 100))
def test_random_scenarios_conform_property(seed, index):
    scenario = ScenarioGenerator(seed=seed).scenario(index)
    verdict = check_scenario(
        scenario, ("fast_forward", "verify", "reset_rerun"))
    assert verdict.ok, (scenario.to_dict(), verdict.divergences,
                        verdict.build_error)
