"""Seeded fault-injection: plans, the injector, campaigns, recovery.

Campaign determinism is the load-bearing property: the same
``(config, seed)`` must produce a byte-identical report whether trials
run in-process, across worker processes, or split over a resumed
journal — reports deliberately carry no wall-clock fields.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.cordic.design import CordicDesign
from repro.cli import faultsim_main
from repro.faults import (
    ALL_OUTCOMES,
    CampaignConfig,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    generate_plan,
    run_campaign,
    run_trial,
)
from repro.faults.campaign import _make_sim, build_design

#: a small, fast design point every test shares (p=2 CORDIC, 8 samples)
DESIGN = {"p": 2, "ndata": 8}
#: its fault-free cycle count is ~3.5k; this bounds every trial
MAX_CYCLES = 200_000


def _campaign(trials=6, seed=3, recovery="none", workers=0, **kw):
    config = CampaignConfig(
        app="cordic", design=dict(DESIGN), trials=trials, seed=seed,
        recovery=recovery, deadlock_window=2_048, max_cycles=MAX_CYCLES,
    )
    return run_campaign(config, workers=workers, **kw)


# ----------------------------------------------------------------------
# plans


def test_plan_generation_is_deterministic():
    kw = dict(max_cycle=3_000, mem_words=512,
              channels=("fsl0", "fsl1"), ports=("pe0:out",), n_faults=3)
    a = generate_plan("camp/0", **kw)
    b = generate_plan("camp/0", **kw)
    assert a.to_dict() == b.to_dict()
    assert a.to_dict() != generate_plan("camp/1", **kw).to_dict()


def test_plan_round_trips_through_json():
    plan = generate_plan("rt", max_cycle=100, mem_words=64,
                         channels=("ch",), ports=("b:o",), n_faults=4)
    blob = json.dumps(plan.to_dict())
    again = FaultPlan.from_dict(json.loads(blob))
    assert again.to_dict() == plan.to_dict()
    assert again.first_cycle == plan.first_cycle


def test_plan_excludes_untargetable_kinds():
    plan = generate_plan("x", max_cycle=500, mem_words=64,
                         channels=(), ports=(), n_faults=20)
    kinds = {f.kind for f in plan.faults}
    assert kinds <= {"reg_flip", "mem_flip"}
    with pytest.raises(ValueError, match="no injectable"):
        generate_plan("x", max_cycle=500, mem_words=0,
                      channels=(), ports=(), kinds=("fifo_drop", "mem_flip"))


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="gamma_ray", cycle=5)
    with pytest.raises(ValueError, match="cycle"):
        FaultSpec(kind="reg_flip", cycle=0)


# ----------------------------------------------------------------------
# injector


def _fresh_sim():
    design = build_design("cordic", dict(DESIGN))
    return design, _make_sim(design, 2_048)


def test_reg_flip_perturbs_exactly_one_bit():
    _design, sim = _fresh_sim()
    sim.run(until=50)
    before = list(sim.cpu.regs)
    spec = FaultSpec(kind="reg_flip", cycle=60, index=4, bit=7)
    injector = FaultInjector(sim, FaultPlan(faults=[spec], seed="t"))
    injector.run(until_cycle=61)
    after = sim.cpu.regs
    idx = 1 + spec.index % 31
    # only the targeted register may have changed, by exactly one bit —
    # unless execution between cycles 50..61 rewrote it first
    changed = [i for i in range(32) if after[i] != before[i] and i != idx]
    assert injector.log and injector.log[0]["applied"]
    assert "r5" in injector.log[0]["fault"]
    assert all(i != 0 for i in changed), "r0 must stay hardwired zero"


def test_mem_flip_applies_and_logs():
    _design, sim = _fresh_sim()
    spec = FaultSpec(kind="mem_flip", cycle=30, index=9, bit=3)
    word_addr = (spec.index % (sim.cpu.mem.bram.size // 4)) * 4
    before = sim.cpu.mem.read_u32(word_addr)
    injector = FaultInjector(sim, FaultPlan(faults=[spec], seed="t"))
    injector.run(until_cycle=31)
    assert sim.cpu.mem.read_u32(word_addr) == before ^ (1 << 3)
    assert injector.log[0]["applied"]


def test_fifo_fault_on_empty_fifo_is_a_recorded_noop():
    _design, sim = _fresh_sim()
    channel = next(iter(sim.mb_block.channels()))
    spec = FaultSpec(kind="fifo_drop", cycle=2, target=channel.name)
    injector = FaultInjector(sim, FaultPlan(faults=[spec], seed="t"))
    injector.run(until_cycle=3)
    entry = injector.log[0]
    assert not entry["applied"]
    assert "empty" in entry["note"]


def test_fault_after_program_end_is_logged_not_crashed():
    design, sim = _fresh_sim()
    baseline = design.run()  # fault-free cycle count
    spec = FaultSpec(kind="reg_flip", cycle=baseline.cycles + 10_000)
    _design2, sim = _fresh_sim()
    injector = FaultInjector(sim, FaultPlan(faults=[spec], seed="t"))
    injector.run(until_cycle=MAX_CYCLES)
    entry = injector.log[0]
    assert not entry["applied"]
    assert "ended before" in entry["note"]
    assert sim.cpu.exit_code is not None


# ----------------------------------------------------------------------
# trials and campaigns


def test_config_validation():
    with pytest.raises(ValueError, match="unknown campaign app"):
        CampaignConfig(app="fft", design={})
    with pytest.raises(ValueError, match="recovery"):
        CampaignConfig(app="cordic", design={}, recovery="pray")
    with pytest.raises(ValueError, match="trials"):
        CampaignConfig(app="cordic", design={}, trials=0)


def test_software_only_partition_is_rejected():
    with pytest.raises(ValueError, match="hardware partition"):
        build_design("cordic", {"p": 0})


def test_campaign_is_deterministic_across_runs():
    a = _campaign().to_dict()
    b = _campaign().to_dict()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert set(a["counts"]) == set(ALL_OUTCOMES)
    assert sum(a["counts"].values()) == 6
    assert a["baseline_cycles"] > 0


@pytest.mark.sweep
def test_campaign_identical_sequential_vs_parallel():
    seq = _campaign(workers=0).to_dict()
    par = _campaign(workers=2).to_dict()
    assert json.dumps(seq, sort_keys=True) == json.dumps(par, sort_keys=True)


def test_rollback_converts_failures_to_recovered():
    """Seed 7 over 12 trials produces one hang and one sdc without
    recovery; with rollback both must convert (a transient SEU replayed
    from the pre-fault checkpoint cannot recur)."""
    plain = _campaign(trials=12, seed=7, recovery="none")
    harmed = {t["trial"]: t["outcome"] for t in plain.trials
              if t["outcome"] in ("hang", "sdc", "detected", "crash")}
    assert harmed, "seed 7 must produce at least one non-masked outcome"

    rolled = _campaign(trials=12, seed=7, recovery="rollback")
    assert rolled.counts["recovered"] == len(harmed)
    for i, original in harmed.items():
        trial = rolled.trials[i]
        assert trial["outcome"] == "recovered"
        assert trial["original_outcome"] == original
        assert trial["rollbacks"] >= 1
        assert trial["checkpoint_cycle"] is not None
        assert len(trial["backoff_s"]) == trial["rollbacks"]


def test_trial_records_are_json_safe_and_complete():
    report = _campaign(trials=2)
    for trial in report.trials:
        json.dumps(trial)  # raises on any non-JSON-safe leftovers
        for key in ("seed", "plan", "injected", "rollbacks", "backoff_s",
                    "checkpoint_cycle", "outcome", "original_outcome",
                    "detail", "cycles", "exit_code", "trial"):
            assert key in trial, f"trial record missing {key!r}"
        assert trial["outcome"] in ALL_OUTCOMES


def test_run_trial_plan_travels_as_plain_dict():
    """run_trial takes the JSON form of a plan (what worker processes
    receive), not the dataclass."""
    plan = generate_plan("unit/0", max_cycle=2_000, mem_words=256)
    record = run_trial("cordic", dict(DESIGN), plan.to_dict(),
                       deadlock_window=2_048, max_cycles=MAX_CYCLES)
    assert record["outcome"] in ALL_OUTCOMES
    assert record["plan"] == plan.to_dict()


def test_campaign_journal_resume_replays_identically(tmp_path):
    journal = str(tmp_path / "campaign.journal")
    first = _campaign(journal=journal).to_dict()
    resumed = _campaign(journal=journal, resume=True).to_dict()
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(resumed, sort_keys=True)


# ----------------------------------------------------------------------
# CLI


def _cli(args, capsys):
    rc = faultsim_main(args)
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    assert "Traceback" not in captured.out
    return rc, captured


def test_cli_smoke_writes_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc, captured = _cli(
        ["cordic", "--p", "2", "--ndata", "8", "--trials", "4",
         "--seed", "3", "--max-cycles", str(MAX_CYCLES),
         "--quiet", "--json", str(out)], capsys)
    assert rc == 0
    assert "| masked |" in captured.out
    doc = json.loads(out.read_text())
    assert doc["format"] == "mb32-faultsim-report"
    assert sum(doc["counts"].values()) == 4


def test_cli_rejects_software_only_point(capsys):
    rc, captured = _cli(["cordic", "--p", "0", "--trials", "1"], capsys)
    assert rc == 2
    assert "hardware partition" in captured.err


def test_cli_rejects_bad_trials(capsys):
    rc, captured = _cli(["cordic", "--trials", "0"], capsys)
    assert rc == 2
    assert "trials" in captured.err


def test_cli_resume_needs_journal(capsys):
    rc, captured = _cli(["cordic", "--resume"], capsys)
    assert rc == 2
    assert "--journal" in captured.err


# ----------------------------------------------------------------------
# the lockstep vector engine: batched campaigns are byte-identical


#: divergence axes of the batched engine: fault mix, app, recovery,
#: and plans scheduled at/after the cycle budget (early-exit shapes)
BATCH_EQUIV_CONFIGS = [
    pytest.param(dict(app="cordic", design={"p": 2, "iters": 8, "ndata": 8},
                      trials=16, seed=11, max_cycles=60_000,
                      deadlock_window=512), id="cordic-all"),
    pytest.param(dict(app="cordic", design={"p": 2, "iters": 8, "ndata": 8},
                      trials=16, seed=12, max_cycles=60_000,
                      deadlock_window=512, kinds=("stuck_at",)),
                 id="cordic-stuck-at"),
    pytest.param(dict(app="matmul", design={"block": 2, "matn": 6},
                      trials=12, seed=14, max_cycles=120_000,
                      deadlock_window=512), id="matmul-all"),
    pytest.param(dict(app="cordic", design={"p": 2, "iters": 8, "ndata": 8},
                      trials=10, seed=15, max_cycles=60_000,
                      deadlock_window=512, recovery="rollback"),
                 id="cordic-rollback"),
    pytest.param(dict(app="cordic", design={"p": 2, "iters": 8, "ndata": 8},
                      trials=10, seed=16, max_cycles=4_000,
                      deadlock_window=512), id="cordic-near-end"),
]


@pytest.mark.parametrize("kw", BATCH_EQUIV_CONFIGS)
def test_batched_campaign_matches_scalar(kw):
    config = CampaignConfig(**kw)
    scalar = run_campaign(config).to_dict()
    batched = run_campaign(config, batch_width=8).to_dict()
    assert json.dumps(batched, sort_keys=True) == \
        json.dumps(scalar, sort_keys=True)


def test_batched_campaign_matches_scalar_without_ckernel(monkeypatch):
    # the numpy fallback of the vector step must be just as exact as
    # the compiled per-lane C kernel
    from repro.sysgen import ckernel

    monkeypatch.setenv(ckernel.DISABLE_ENV, "1")
    config = CampaignConfig(
        app="cordic", design={"p": 2, "iters": 8, "ndata": 8},
        trials=12, seed=11, max_cycles=60_000, deadlock_window=512,
    )
    scalar = run_campaign(config).to_dict()
    batched = run_campaign(config, batch_width=8).to_dict()
    assert json.dumps(batched, sort_keys=True) == \
        json.dumps(scalar, sort_keys=True)


def test_batched_campaign_width_does_not_change_report():
    config = CampaignConfig(
        app="cordic", design=dict(DESIGN), trials=9, seed=3,
        deadlock_window=2_048, max_cycles=MAX_CYCLES,
    )
    ref = json.dumps(run_campaign(config).to_dict(), sort_keys=True)
    for width in (1, 4, 32):
        got = json.dumps(
            run_campaign(config, batch_width=width).to_dict(),
            sort_keys=True)
        assert got == ref, f"width {width} changed the report"


def test_batched_campaign_rejects_journal():
    config = CampaignConfig(app="cordic", design=dict(DESIGN), trials=2)
    with pytest.raises(ValueError, match="journal"):
        run_campaign(config, batch_width=4, journal="x.jsonl")


def test_cli_batch_matches_scalar_report(tmp_path, capsys):
    args = ["cordic", "--p", "2", "--ndata", "8", "--trials", "6",
            "--seed", "3", "--max-cycles", str(MAX_CYCLES), "--quiet"]
    scalar_out = tmp_path / "scalar.json"
    batched_out = tmp_path / "batched.json"
    rc, _ = _cli(args + ["--json", str(scalar_out)], capsys)
    assert rc == 0
    rc, _ = _cli(args + ["--batch", "4", "--json", str(batched_out)],
                 capsys)
    assert rc == 0
    assert json.loads(batched_out.read_text()) == \
        json.loads(scalar_out.read_text())


def test_cli_batch_conflicts_with_scalar_options(capsys):
    rc, captured = _cli(
        ["cordic", "--trials", "2", "--batch", "--jobs", "2"], capsys)
    assert rc == 2
    assert "--batch is incompatible" in captured.err


# ----------------------------------------------------------------------
# K-CPU campaigns: mesh + pipelined CORDIC, link_drop / node_stall


#: a 2x2 mesh design point every multi-CPU test shares
MESH = {"rows": 2, "cols": 2, "tokens": 8}


def _mesh_campaign(trials=12, seed=3, **kw):
    config = CampaignConfig(
        app="mesh", design=dict(MESH), trials=trials, seed=seed,
        deadlock_window=2_048, max_cycles=120_000, **kw,
    )
    return run_campaign(config)


def test_multi_kinds_enter_the_pool_only_for_multi_apps():
    from repro.faults.plan import FAULT_KINDS, MULTI_FAULT_KINDS

    single = CampaignConfig(app="cordic", design=dict(DESIGN), trials=1)
    assert single.kinds == FAULT_KINDS
    multi = CampaignConfig(app="mesh", design=dict(MESH), trials=1)
    assert multi.kinds == MULTI_FAULT_KINDS


def test_single_cpu_plans_unchanged_by_cpus_parameter():
    """Adding the ``cpus`` axis must not disturb the draw sequence of
    existing single-CPU campaign seeds (their reports are blessed)."""
    kw = dict(max_cycle=3_000, mem_words=512,
              channels=("fsl0",), ports=("pe0:out",), n_faults=5)
    assert generate_plan("camp/0", **kw).to_dict() == \
        generate_plan("camp/0", cpus=(), **kw).to_dict()


def test_mesh_campaign_deterministic_classifications():
    """link_drop / node_stall trials classify deterministically into
    the campaign's outcome lattice."""
    report = _mesh_campaign(kinds=("link_drop", "node_stall"))
    outcomes = {t["outcome"] for t in report.trials}
    assert outcomes <= {"masked", "sdc", "detected", "hang"}
    again = _mesh_campaign(kinds=("link_drop", "node_stall"))
    assert json.dumps(report.to_dict(), sort_keys=True) == \
        json.dumps(again.to_dict(), sort_keys=True)
    # every trial targeted a named link or a named node
    for t in report.trials:
        fault = t["plan"]["faults"][0]
        if fault["kind"] == "link_drop":
            assert fault["target"].startswith("link_")
        else:
            assert fault["target"].startswith("cpu")


def test_node_stall_is_latency_tolerant_on_the_mesh():
    """Gating one CPU's clock reorders nothing: the blocking FSL
    handshake absorbs the stall, so the run verifies clean (masked) and
    merely finishes later."""
    from repro.faults import MultiFaultInjector

    design = build_design("mesh", dict(MESH))
    fault_free = design.run()
    sim = _make_sim(design, 2_048)
    plan = FaultPlan(faults=[FaultSpec(kind="node_stall", cycle=20,
                                       target="cpu1", duration=64)],
                     seed="t")
    injector = MultiFaultInjector(sim, plan)
    injector.run(until_cycle=120_000)
    assert injector.log[0]["applied"]
    assert sim.exit_code == 0
    design._verify(sim)  # no corruption anywhere
    assert sim.cycle > fault_free.cycles  # but the stall cost cycles


def test_link_drop_on_a_busy_link_starves_the_sink():
    """Dropping an in-flight word desynchronizes the stream: the sink
    blocks on a token that never arrives and the watchdog reports the
    hang."""
    from repro.cosim.environment import CoSimDeadlock
    from repro.faults import MultiFaultInjector

    design = build_design("mesh", dict(MESH))
    # find a cycle where the first route hop actually has words queued
    probe = _make_sim(design, 2_048)
    target = None
    while not probe.halted and probe.cycle < 2_000:
        probe.step(1)
        for channel in probe.all_channels():
            if channel.name.startswith("link_") and channel.occupancy:
                target = (channel.name, probe.cycle)
                break
        if target:
            break
    assert target, "no link traffic observed in the fault-free run"
    name, cycle = target
    sim = _make_sim(design, 2_048)
    plan = FaultPlan(faults=[FaultSpec(kind="link_drop", cycle=cycle,
                                       target=name, duration=1)],
                     seed="t")
    injector = MultiFaultInjector(sim, plan)
    with pytest.raises(CoSimDeadlock):
        injector.run(until_cycle=120_000)
    assert injector.log[0]["applied"]
    assert "dropped 1 word(s)" in injector.log[0]["note"]


#: the multi-CPU face of BATCH_EQUIV_CONFIGS: --batch must replay
#: K-CPU trials to a byte-identical report
MULTI_BATCH_CONFIGS = [
    pytest.param(dict(app="mesh", design=dict(MESH), trials=10, seed=3,
                      max_cycles=120_000, deadlock_window=2_048),
                 id="mesh-all"),
    pytest.param(dict(app="cordic-pipe",
                      design={"stages": 2, "iters": 8, "ndata": 8},
                      trials=8, seed=7, max_cycles=200_000,
                      deadlock_window=2_048), id="cordic-pipe-all"),
]


@pytest.mark.parametrize("kw", MULTI_BATCH_CONFIGS)
def test_multi_batched_campaign_matches_scalar(kw):
    config = CampaignConfig(**kw)
    scalar = run_campaign(config).to_dict()
    batched = run_campaign(config, batch_width=4).to_dict()
    assert json.dumps(batched, sort_keys=True) == \
        json.dumps(scalar, sort_keys=True)


def test_cli_mesh_smoke_writes_report(tmp_path, capsys):
    out = tmp_path / "mesh.json"
    rc, captured = _cli(
        ["mesh", "--rows", "2", "--cols", "2", "--tokens", "8",
         "--trials", "4", "--seed", "3", "--quiet",
         "--json", str(out)], capsys)
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["config"]["app"] == "mesh"
    assert sum(doc["counts"].values()) == 4
    assert "link_drop" in doc["config"]["kinds"]
    assert "node_stall" in doc["config"]["kinds"]
