"""Checkpoint preempt + migrate bit-identity.

Two layers:

* **deterministic checkpoint chains** (no farm, no timing): drive a
  job with an always-true preempt flag so every stint advances exactly
  one slice and yields a checkpoint, feed each checkpoint into a fresh
  ``execute`` call (exactly what a different worker process does), and
  require the final result document to equal the uninterrupted run's
  byte for byte — single-CPU, K-CPU, and the K-CPU deadlock-watchdog
  case (the watchdog's absolute-cycle bookkeeping must be restore
  transparent),
* **farm-level migration** (real gateway, real worker processes): a
  running job is preempted over HTTP until it has been checkpointed
  on one worker and resumed on another, and the migrated result must
  be byte-identical to an uninterrupted reference — for a conformance
  scenario, a sharded sweep, and a mesh fault campaign (the acceptance
  criteria's two named cases).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.farm import FarmClient, start_farm_thread
from repro.farm.jobs import execute

SCENARIO = {"seed": 3, "index": 1, "fast_forward": False}
MULTI = {"seed": 1, "index": 0, "fast_forward": False}
MULTI_DEADLOCK = {"seed": 3, "index": 0, "fast_forward": False}


def canon(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# deterministic checkpoint chains (single process, no timing)
# ----------------------------------------------------------------------
def chain_until_done(kind: str, payload: dict, preempt_slice: int):
    """Run ``kind`` yielding a checkpoint after every slice; returns
    (final outcome, number of stints)."""
    state, stints = None, 0
    while True:
        out = execute(
            kind,
            dict(payload),
            resume_state=state,
            should_preempt=lambda: True,
            preempt_slice=preempt_slice,
        )
        stints += 1
        if out["outcome"] == "done":
            return out, stints
        state = out["state"]
        assert state  # a checkpoint document travelled back


class TestCheckpointChain:
    def test_single_cpu_scenario_bit_identical(self):
        ref = execute("scenario", dict(SCENARIO))
        assert ref["outcome"] == "done"
        chained, stints = chain_until_done("scenario", SCENARIO, 256)
        assert stints > 5  # genuinely migrated many times
        assert canon(chained["result"]) == canon(ref["result"])

    def test_k_cpu_scenario_bit_identical(self):
        ref = execute("multi_scenario", dict(MULTI))
        assert ref["outcome"] == "done"
        chained, stints = chain_until_done("multi_scenario", MULTI, 64)
        assert stints > 2
        assert canon(chained["result"]) == canon(ref["result"])

    def test_k_cpu_deadlock_watchdog_is_restore_transparent(self):
        """A scenario that ends in the deadlock watchdog must classify
        identically when chopped into checkpointed stints."""
        ref = execute("multi_scenario", dict(MULTI_DEADLOCK))
        assert ref["outcome"] == "done"
        assert ref["result"]["observation"]["status"] == "deadlock"
        chained, stints = chain_until_done(
            "multi_scenario", MULTI_DEADLOCK, 1024
        )
        assert stints > 10
        assert canon(chained["result"]) == canon(ref["result"])

    def test_sweep_shard_journal_migration(self):
        """A preempted sweep shard hands back completed unit records
        plus the untouched remainder; re-dispatching the remainder
        reproduces the uninterrupted shard exactly."""
        points = [
            {"name": f"s{i}",
             "factory": "repro.cosim.sweep:SyntheticDesign",
             "params": {"seconds": 0.0, "cycles": 100 + i}}
            for i in range(6)
        ]
        payload = {"points": points}
        ref = execute("sweep", dict(payload), units=list(range(6)))
        assert ref["outcome"] == "done"

        records, remaining = [], list(range(6))
        hops = 0
        while remaining:
            out = execute("sweep", dict(payload), units=remaining,
                          should_preempt=lambda: True)
            if out["outcome"] == "done":
                records.extend(out["records"])
                break
            assert len(out["records"]) == 1  # the pos>0 guard's floor
            records.extend(out["records"])
            remaining = out["remaining"]
            hops += 1
        assert hops == 5  # one unit per stint, then the final one
        assert canon(records) == canon(ref["records"])


# ----------------------------------------------------------------------
# farm-level migration across real worker processes
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def farm():
    handle = start_farm_thread(workers=2, preempt_slice=256)
    yield handle
    handle.stop()


@pytest.fixture()
def client(farm):
    with FarmClient(farm.host, farm.port, tenant="migrate") as c:
        yield c


def submit_with_preempts(client, kind, payload, *, min_preempts=1,
                         tries=5, timeout_s=120.0):
    """Submit uncached and hammer /preempt until done; retries the
    whole submission if the job finished before any preempt landed."""
    for _ in range(tries):
        doc = client.submit(kind, dict(payload), cacheable=False)
        job_id = doc["id"]
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            status = client.status(job_id)
            if status["state"] in ("done", "failed"):
                break
            client.preempt(job_id)
            time.sleep(0.002)
        final = client.status(job_id)
        assert final["state"] == "done", final
        if final["preempts"] >= min_preempts:
            return final
    pytest.fail(
        f"no preempt landed on {kind} within {tries} submissions"
    )


class TestFarmMigration:
    def test_scenario_migrates_bit_identical(self, client):
        ref = client.submit("scenario", dict(SCENARIO),
                            cacheable=False, wait=True, timeout_s=120)
        assert ref["state"] == "done"
        migrated = submit_with_preempts(client, "scenario", SCENARIO)
        assert migrated["migrations"] >= 1
        assert len(migrated["workers_used"]) == 2  # both workers ran it
        assert canon(migrated["result"]) == canon(ref["result"])

    def test_k_cpu_scenario_migrates_bit_identical(self, client):
        payload = dict(MULTI_DEADLOCK)
        ref = client.submit("multi_scenario", payload,
                            cacheable=False, wait=True, timeout_s=120)
        assert ref["state"] == "done"
        migrated = submit_with_preempts(
            client, "multi_scenario", payload
        )
        assert migrated["migrations"] >= 1
        assert canon(migrated["result"]) == canon(ref["result"])

    def test_sweep_migrates_and_matches_local_engine(self, client):
        from repro.cosim.partition import DesignSpec
        from repro.cosim.sweep import sweep

        points = [
            {"name": f"w{i}",
             "factory": "repro.cosim.sweep:SyntheticDesign",
             "params": {"seconds": 0.05, "cycles": 1000 + i}}
            for i in range(8)
        ]
        local = sweep(
            [DesignSpec(name=p["name"], factory=p["factory"],
                        params=p["params"]) for p in points],
            workers=0,
        )
        local_results = [r.to_dict() for r in local.results]

        migrated = submit_with_preempts(
            client, "sweep", {"points": points}
        )
        assert canon(migrated["result"]["results"]) == \
            canon(local_results)

    def test_mesh_campaign_migrates_bit_identical(self, client):
        """The acceptance criteria's hard case: a mesh fault campaign,
        sharded over workers and preempted mid-run, must merge into
        the exact report the local scalar runner produces."""
        from repro.faults.campaign import CampaignConfig, run_campaign

        config = CampaignConfig(
            app="mesh",
            trials=8,
            seed=9,
            design={"rows": 2, "cols": 2, "tokens": 8},
        )
        local = run_campaign(config, workers=0).to_dict()

        migrated = submit_with_preempts(
            client, "campaign", {"config": config.to_dict()},
            timeout_s=300,
        )
        farm_report = migrated["result"]["report"]
        assert canon(farm_report) == canon(local)
