"""Multi-CPU conformance: K-CPU topologies under the differential
oracle.

Tier-1 keeps the fuzz volume small; the full multi-CPU corpus runs in
CI via ``mb32-conformance --family multi`` (the ``multicpu-smoke``
job) and the acceptance sweep drives hundreds of scenarios across both
engines.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import (
    ALL_MODES,
    MultiScenario,
    MultiScenarioGenerator,
    build_multi_sim,
    build_programs,
    check_scenario,
    first_divergence,
    observe,
    scenario_from_dict,
    shrink_scenario,
)
from repro.conformance.multicpu import MultiNodeSpec
from repro.conformance.oracle import observe_batched
from repro.cosim.topology import TopologySpec


# ----------------------------------------------------------------------
# scenario generation
# ----------------------------------------------------------------------
def test_generator_is_deterministic():
    a = MultiScenarioGenerator(seed=7).scenario(3)
    b = MultiScenarioGenerator(seed=7).scenario(3)
    assert a == b
    assert a.to_dict() == b.to_dict()


def test_generator_scenarios_depend_only_on_index():
    gen = MultiScenarioGenerator(seed=5)
    late = gen.scenario(9)
    gen2 = MultiScenarioGenerator(seed=5)
    for scenario in gen2.scenarios(9):
        assert scenario.name.startswith("m5-")
    assert gen2.scenario(9) == late


def test_scenario_dict_roundtrip_with_family_tag():
    for index in range(8):
        scenario = MultiScenarioGenerator(seed=2).scenario(index)
        data = json.loads(json.dumps(scenario.to_dict()))
        assert data["family"] == "multi"
        again = scenario_from_dict(data)
        assert isinstance(again, MultiScenario)
        assert again == scenario


def test_generator_covers_topologies_and_sizes():
    gen = MultiScenarioGenerator(seed=0)
    scenarios = list(gen.scenarios(40))
    kinds = {s.topology_kind for s in scenarios}
    assert kinds == {"pipeline", "ring", "mesh"}
    sizes = {s.n_cpus for s in scenarios}
    assert sizes == {2, 3, 4}
    assert any(s.hazard for s in scenarios)
    for s in scenarios:
        assert len(s.nodes) == s.n_cpus


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31), index=st.integers(0, 500))
def test_generator_determinism_property(seed, index):
    a = MultiScenarioGenerator(seed=seed).scenario(index)
    b = MultiScenarioGenerator(seed=seed).scenario(index)
    assert a == b
    assert scenario_from_dict(a.to_dict()) == a


# ----------------------------------------------------------------------
# topology and route conventions
# ----------------------------------------------------------------------
def _scenario(kind, n, rows=0, cols=0):
    return MultiScenario(
        name="t", seed="t", topology_kind=kind, n_cpus=n,
        rows=rows, cols=cols,
        nodes=tuple(MultiNodeSpec() for _ in range(n)),
    )


def test_pipeline_route_is_front_to_back():
    s = _scenario("pipeline", 4)
    assert s.route() == (0, 1, 2, 3)
    assert s.stream_channels(0) == (None, 0)
    assert s.stream_channels(1) == (0, 0)
    assert s.stream_channels(3) == (0, None)


def test_ring_route_closes_the_loop():
    s = _scenario("ring", 3)
    assert s.route() == (0, 1, 2, 0)
    in_ch, out_ch = s.stream_channels(0)
    assert in_ch is not None and out_ch is not None


def test_mesh_route_is_serpentine():
    s = _scenario("mesh", 4, rows=2, cols=2)
    # row 0 left-to-right, row 1 right-to-left: every hop a neighbour
    assert s.route() == (0, 1, 3, 2)
    topo = s.topology()
    pairs = {(link.src, link.dst) for link in topo.links}
    for a, b in zip(s.route(), s.route()[1:]):
        assert (a, b) in pairs
    # the reverse links exist but stay idle — fault-campaign targets
    for a, b in zip(s.route(), s.route()[1:]):
        assert (b, a) in pairs


def test_lockstep_signature_groups_by_structure():
    s = MultiScenarioGenerator(seed=0).scenario(0)
    programs = build_programs(s)
    sim_a, _ = build_multi_sim(s, programs, fast_forward=False)
    sim_b, _ = build_multi_sim(s, programs, fast_forward=False)
    assert sim_a.lockstep_signature() == sim_b.lockstep_signature()
    other = MultiScenarioGenerator(seed=0).scenario(1)
    sim_c, _ = build_multi_sim(other, fast_forward=False)
    assert sim_a.lockstep_signature() != sim_c.lockstep_signature()


# ----------------------------------------------------------------------
# the oracle: all five modes, both engines
# ----------------------------------------------------------------------
def test_small_fuzz_all_modes_agree(sysgen_engine):
    gen = MultiScenarioGenerator(seed=0)
    for scenario in gen.scenarios(6):
        verdict = check_scenario(scenario, ALL_MODES)
        assert verdict.ok, (scenario.name, verdict.divergences,
                            verdict.build_error)


def test_random_pipelines_agree_across_modes(sysgen_engine):
    """The satellite property: seeded random 2-4 CPU pipelines are
    byte-identical across every execution mode on both engines."""
    gen = MultiScenarioGenerator(seed=9)
    pipelines = [s for s in gen.scenarios(12)
                 if s.topology_kind == "pipeline"][:4]
    assert pipelines
    for scenario in pipelines:
        assert 2 <= scenario.n_cpus <= 4
        ref = observe(scenario, "per_cycle")
        for mode in ALL_MODES:
            obs = observe(scenario, mode)
            assert first_divergence(ref.comparable(),
                                    obs.comparable()) is None, (
                scenario.name, mode)


def test_hazard_scenario_agrees_across_modes():
    # seed 0 / index 5 deliberately overflows its ring: every mode must
    # report the deadlock with identical state.
    scenario = MultiScenarioGenerator(seed=0).scenario(5)
    assert scenario.hazard == "overflow"
    verdict = check_scenario(scenario, ALL_MODES)
    assert verdict.ok, verdict.divergences
    assert verdict.reference.status == "deadlock"


def test_multi_observation_surface():
    scenario = MultiScenarioGenerator(seed=0).scenario(0)
    obs = observe(scenario, "per_cycle")
    data = obs.to_dict()
    assert set(data["cpus"]) == {f"cpu{k}"
                                for k in range(scenario.n_cpus)}
    for surface in data["cpus"].values():
        assert len(surface["regs"]) == 32
        assert len(surface["mem_digest"]) == 64
    # aggregates: global clock, summed instruction counts
    assert data["cycles"] >= max(s["cycles"]
                                 for s in data["cpus"].values())
    assert data["instructions"] == sum(s["instructions"]
                                       for s in data["cpus"].values())
    # inter-CPU links appear in the channel statistics
    assert any(name.startswith("link_") for name in data["channels"])


def test_engines_agree_per_scenario():
    scenario = MultiScenarioGenerator(seed=1).scenario(2)
    a = observe(scenario, "per_cycle", engine="compiled")
    b = observe(scenario, "per_cycle", engine="interpreter")
    assert first_divergence(a.comparable(), b.comparable()) is None


def test_observe_batched_rejects_multi():
    scenario = MultiScenarioGenerator(seed=0).scenario(0)
    with pytest.raises(ValueError, match="lockstep_signature"):
        observe_batched(scenario, [1000, 2000])


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def test_shrink_multi_scenario():
    """The shrinker walks multi-CPU variants: a predicate keyed on the
    hazard alone must reduce to a minimal scenario that keeps it."""
    scenario = MultiScenarioGenerator(seed=0).scenario(24)
    assert scenario.hazard == "starve" and scenario.n_cpus == 4

    def still_fails(candidate):
        return candidate.hazard == "starve"

    small = shrink_scenario(scenario, fails=still_fails)
    assert small.hazard == "starve"
    assert small.n_cpus <= scenario.n_cpus
    assert all(n.hw_stage is None for n in small.nodes)
    assert small.tokens <= scenario.tokens
