"""Golden-trace corpus: format, drift classification, tampering."""

import json
from pathlib import Path

import pytest

import repro.conformance.golden as golden_mod
from repro.cli import conformance_main
from repro.conformance import (
    bless_golden,
    check_golden,
    load_golden,
    observe,
    write_golden,
)
from repro.conformance.oracle import ScenarioVerdict
from repro.conformance.scenario import OpSpec, PipelineSpec, Scenario

CORPUS = Path(__file__).parent / "golden"

FAST_MODES = ("fast_forward",)


def _tiny_scenario(name="tiny"):
    return Scenario(
        name=name,
        seed="t",
        fifo_depth=4,
        pipelines=(PipelineSpec(channel=0),),
        ops=(OpSpec(kind="session", channel=0, count=3),),
        max_cycles=20_000,
    )


def test_bless_and_check_roundtrip(tmp_path):
    scenario = _tiny_scenario()
    written = bless_golden(tmp_path, [scenario])
    assert written == [tmp_path / "tiny.json"]
    loaded_scenario, stored = load_golden(written[0])
    assert loaded_scenario == scenario
    assert stored["mode"] == "per_cycle"
    entries = check_golden(tmp_path, modes=FAST_MODES)
    assert [e.kind for e in entries] == ["ok"]


def test_golden_file_is_sorted_reviewable_json(tmp_path):
    path = write_golden(tmp_path, _tiny_scenario(),
                        observe(_tiny_scenario(), "per_cycle"))
    text = path.read_text()
    data = json.loads(text)
    assert json.dumps(data, indent=2, sort_keys=True) + "\n" == text
    assert data["version"] == golden_mod.GOLDEN_VERSION


def test_tampered_golden_names_first_divergent_observable(tmp_path):
    scenario = _tiny_scenario()
    bless_golden(tmp_path, [scenario])
    path = tmp_path / "tiny.json"
    data = json.loads(path.read_text())
    data["observation"]["stall_cycles"] += 7
    path.write_text(json.dumps(data, indent=2, sort_keys=True))

    entries = check_golden(tmp_path, modes=FAST_MODES)
    (entry,) = entries
    assert entry.kind == "semantic-change"
    assert entry.path == "stall_cycles"
    assert entry.stored == data["observation"]["stall_cycles"]
    assert entry.live == data["observation"]["stall_cycles"] - 7
    assert "re-bless" in entry.message


def test_silent_regression_when_live_modes_disagree(tmp_path, monkeypatch):
    scenario = _tiny_scenario()
    bless_golden(tmp_path, [scenario])
    reference = observe(scenario, "per_cycle")

    def fake_check_scenario(sc, modes):
        verdict = ScenarioVerdict(scenario=sc, reference=reference)
        verdict.observations["per_cycle"] = reference
        verdict.divergences["fast_forward"] = {
            "path": "cycles", "reference": reference.cycles,
            "observed": reference.cycles + 1,
        }
        return verdict

    monkeypatch.setattr(golden_mod, "check_scenario", fake_check_scenario)
    (entry,) = check_golden(tmp_path, modes=FAST_MODES)
    assert entry.kind == "silent-regression"
    assert entry.path == "cycles"
    assert "re-blessing cannot fix this" in entry.message
    assert entry.mode_divergences["fast_forward"]["path"] == "cycles"


def test_version_mismatch_is_an_error(tmp_path):
    bless_golden(tmp_path, [_tiny_scenario()])
    path = tmp_path / "tiny.json"
    data = json.loads(path.read_text())
    data["version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="version"):
        load_golden(path)
    (entry,) = check_golden(tmp_path, modes=FAST_MODES)
    assert entry.kind == "error"
    assert "version" in entry.message


def test_corrupt_golden_file_is_an_error(tmp_path):
    (tmp_path / "broken.json").write_text("{not json")
    (entry,) = check_golden(tmp_path, modes=FAST_MODES)
    assert entry.kind == "error"
    assert entry.name == "broken"


def test_cli_golden_check_and_tamper(tmp_path, capsys):
    corpus = tmp_path / "golden"
    assert conformance_main(["--seed", "3", "--corpus", str(corpus),
                             "--bless", "--pin", "0,1"]) == 0
    capsys.readouterr()
    assert conformance_main(["--corpus", str(corpus), "--count", "0",
                             "--modes", "fast_forward"]) == 0
    assert "2/2 golden traces clean" in capsys.readouterr().out

    path = sorted(corpus.glob("*.json"))[0]
    data = json.loads(path.read_text())
    data["observation"]["instructions"] += 1
    path.write_text(json.dumps(data, indent=2, sort_keys=True))
    assert conformance_main(["--corpus", str(corpus), "--count", "0",
                             "--modes", "fast_forward"]) == 1
    out = capsys.readouterr().out
    assert "semantic-change" in out
    assert "instructions" in out


def test_cli_empty_corpus_is_usage_error(tmp_path, capsys):
    empty = tmp_path / "nothing"
    empty.mkdir()
    assert conformance_main(["--corpus", str(empty), "--count", "0"]) == 2
    assert "no golden traces" in capsys.readouterr().err


def test_committed_corpus_loads():
    from repro.conformance import MultiScenario

    files = sorted(CORPUS.glob("*.json"))
    assert len(files) >= 8
    multi_seen = 0
    for path in files:
        scenario, stored = load_golden(path)
        assert scenario.name == path.stem
        assert stored["mode"] == "per_cycle"
        if isinstance(scenario, MultiScenario):
            # K-CPU traces keep the register files per node
            multi_seen += 1
            assert len(stored["cpus"]) == scenario.n_cpus
            for surface in stored["cpus"].values():
                assert len(surface["regs"]) == 32
        else:
            assert len(stored["regs"]) == 32
    assert multi_seen >= 8, "the blessed multi-CPU corpus went missing"


@pytest.mark.conformance
def test_committed_corpus_has_no_drift():
    entries = check_golden(CORPUS)
    assert entries
    assert all(e.ok for e in entries), \
        [e.to_dict() for e in entries if not e.ok]
