"""The deprecated spellings of the unified run/engine API.

Contract: every old spelling (pre-``RunPolicy``/``engine=`` surface)
still works, produces the same results as the new spelling, and emits
its :class:`DeprecationWarning` exactly once per process no matter how
often it is used.
"""

from __future__ import annotations

import types
import warnings

import pytest

from repro.cosim.environment import CoSimulation
from repro.faults.campaign import build_design
from repro.runapi import RunPolicy, reset_deprecation_registry
from repro.runapi.engine import resolve_engine


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_deprecation_registry()
    yield
    reset_deprecation_registry()


def _sim():
    design = build_design("cordic", dict(p=2, iters=8, ndata=6))
    return CoSimulation(design.program, design.model, design.mb,
                        cpu_config=design.cpu_config)


def _fields(result):
    return (result.exit_code, result.cycles, result.instructions,
            result.stall_cycles, result.halt_reason)


def _deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


# ----------------------------------------------------------------------
# CoSimulation.run keywords
# ----------------------------------------------------------------------
def test_max_cycles_keyword_still_works_and_warns_once():
    ref = _sim().run(until=700)
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        got = _sim().run(max_cycles=700)
        again = _sim().run(max_cycles=700)
    assert _fields(got) == _fields(ref)
    assert _fields(again) == _fields(ref)
    warned = _deprecations(record)
    assert len(warned) == 1
    assert "run(until=...)" in str(warned[0].message)


def test_until_wins_over_deprecated_max_cycles():
    ref = _sim().run(until=500)
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        got = _sim().run(until=500, max_cycles=123_456)
    assert _fields(got) == _fields(ref)


def test_wall_timeout_keyword_still_works_and_warns_once():
    ref = _sim().run(until=700, policy=RunPolicy(wall_timeout_s=60.0))
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        got = _sim().run(until=700, wall_timeout_s=60.0)
        _sim().run(until=700, wall_timeout_s=60.0)
    assert _fields(got) == _fields(ref)
    warned = _deprecations(record)
    assert len(warned) == 1
    assert "RunPolicy(wall_timeout_s=...)" in str(warned[0].message)


# ----------------------------------------------------------------------
# engine selection shims
# ----------------------------------------------------------------------
def test_force_interpreter_flag_resolves_and_warns_once():
    model = types.SimpleNamespace(force_interpreter=True)
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        assert resolve_engine("auto", model=model) == "interpreter"
        assert resolve_engine("auto", model=model) == "interpreter"
    warned = _deprecations(record)
    assert len(warned) == 1
    assert "force_interpreter" in str(warned[0].message)


def test_interp_env_var_resolves_and_warns_once(monkeypatch):
    monkeypatch.setenv("REPRO_SYSGEN_INTERP", "1")
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        assert resolve_engine("auto") == "interpreter"
        assert resolve_engine("auto") == "interpreter"
    warned = _deprecations(record)
    assert len(warned) == 1
    assert "REPRO_SYSGEN_INTERP" in str(warned[0].message)


def test_new_spellings_do_not_warn():
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        _sim().run(until=500, policy=RunPolicy(wall_timeout_s=60.0))
        assert resolve_engine("interpreter") == "interpreter"
    assert not _deprecations(record)


def test_registry_reset_rearms_the_warning():
    model = types.SimpleNamespace(force_interpreter=True)
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        resolve_engine("auto", model=model)
        reset_deprecation_registry()
        resolve_engine("auto", model=model)
    assert len(_deprecations(record)) == 2
