"""The deterministic chaos harness, from plan algebra to the full
acceptance campaign.

Tier-1 runs the plan/workload determinism tests and a small live smoke
campaign; the full acceptance campaign (200+ jobs, 30+ faults, a
gateway crash + ``--recover`` mid-load) is marked ``chaos`` and runs
in CI's chaos-smoke job:

    PYTHONPATH=src python -m pytest tests/test_chaos.py -m chaos
"""

from __future__ import annotations

import json

import pytest

from repro.farm.chaos import (
    CHAOS_KINDS,
    ChaosPlan,
    ChaosSpec,
    build_workload,
    generate_chaos_plan,
    run_chaos_campaign,
)


class TestPlan:
    def test_same_seed_same_plan(self):
        a = generate_chaos_plan(7, 100, faults=20)
        b = generate_chaos_plan(7, 100, faults=20)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_plan(self):
        a = generate_chaos_plan(7, 100, faults=20)
        b = generate_chaos_plan(8, 100, faults=20)
        assert a.to_dict() != b.to_dict()

    def test_round_trip(self):
        plan = generate_chaos_plan(3, 50, faults=12)
        assert ChaosPlan.from_dict(plan.to_dict()).to_dict() == \
            plan.to_dict()

    def test_fault_budget_and_restart_placement(self):
        plan = generate_chaos_plan(1, 200, faults=30, gateway_restarts=1)
        assert len(plan.events) == 30
        restarts = [e for e in plan.events if e.kind == "gateway_restart"]
        assert len(restarts) == 1
        assert 0 < restarts[0].at < 200  # mid-load, never at the edges
        assert all(0 < e.at < 200 for e in plan.events)

    def test_kind_filter(self):
        plan = generate_chaos_plan(
            1, 50, faults=10,
            kinds=("worker_kill", "conn_drop"), gateway_restarts=1,
        )
        assert {e.kind for e in plan.events} <= {"worker_kill", "conn_drop"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            generate_chaos_plan(1, 50, kinds=("meteor_strike",))
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSpec(kind="meteor_strike", at=1)

    def test_events_sorted_by_index(self):
        plan = generate_chaos_plan(2, 120, faults=25)
        assert [e.at for e in plan.events] == \
            sorted(e.at for e in plan.events)


class TestWorkload:
    def test_deterministic(self):
        assert build_workload(5, 80) == build_workload(5, 80)

    def test_covers_all_three_kinds(self):
        kinds = {kind for kind, _ in build_workload(0, 200)}
        assert kinds == {"simulate", "sweep", "campaign"}

    def test_payloads_are_json_clean(self):
        for _kind, payload in build_workload(1, 60):
            assert json.loads(json.dumps(payload)) == payload


class TestSmokeCampaign:
    """A small always-on campaign: every fault kind once, invariant
    checked byte for byte (the full-size version is ``-m chaos``)."""

    def test_small_campaign_invariant_holds(self, tmp_path):
        report = run_chaos_campaign(
            tmp_path,
            seed=5,
            jobs=24,
            faults=8,
            workers=2,
            collect_timeout_s=300,
        )
        assert report.ok, {
            "divergent": report.divergent,
            "failed": report.failed,
            "second_divergent": report.second_divergent,
            "second_failed": report.second_failed,
        }
        assert report.faults_applied == 8
        assert report.restarts == 1
        # every fault counted on the gateway metrics registry
        doc = report.to_dict()
        assert doc["ok"] and doc["format"] == "mb32-chaos-report"
        assert report.table().startswith("fault kind")

    def test_cli_chaos_smoke(self, tmp_path, capsys):
        from repro.cli import farm_main

        code = farm_main([
            "chaos", "--seed", "2", "--jobs", "14", "--faults", "4",
            "--workers", "2", "--root", str(tmp_path),
            "--report", str(tmp_path / "report.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariant held" in out
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["ok"] is True
        assert report["jobs"] == 14


@pytest.mark.chaos
class TestAcceptanceCampaign:
    """The ISSUE's acceptance bar: 200+ jobs over simulate/sweep/
    campaign, 30+ infrastructure faults including a gateway kill and
    ``--recover``, every job byte-identical to the fault-free run."""

    def test_full_campaign(self, tmp_path):
        report = run_chaos_campaign(
            tmp_path,
            seed=0,
            jobs=200,
            faults=30,
            workers=3,
            gateway_restarts=1,
            collect_timeout_s=900,
        )
        assert report.jobs >= 200
        assert report.faults_applied >= 30
        assert report.restarts >= 1
        kinds_hit = {k for k, n in report.fired.items() if n > 0}
        assert "gateway_restart" in kinds_hit
        assert "worker_kill" in kinds_hit
        assert report.ok, {
            "divergent": report.divergent,
            "failed": report.failed,
            "second_divergent": report.second_divergent,
            "second_failed": report.second_failed,
        }
        # damaged cache writes were quarantined, never served
        torn = report.fired.get("cache_torn_write", 0)
        flipped = report.fired.get("cache_bitflip", 0)
        assert report.cache_quarantined <= torn + flipped
        # the cache ends the campaign fully intact
        assert report.cache_intact <= report.cache_entries
        assert report.metrics.get("farm.recovery.requeued", 0) >= 1
