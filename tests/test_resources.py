"""Tests for resource estimation (Section III-C) and the PAR actuals."""

import pytest

from repro.iss.cpu import CPUConfig
from repro.mcc import CompileOptions, build_executable
from repro.resources import (
    BRAM_BYTES,
    Resources,
    estimate_design,
    microblaze_resources,
    program_brams,
)
from repro.sysgen import Model
from repro.sysgen.blocks import Add, Mult, Register


class TestResourcesVector:
    def test_addition(self):
        a = Resources(slices=10, brams=1, mult18=2)
        b = Resources(slices=5)
        total = a + b
        assert (total.slices, total.brams, total.mult18) == (15, 1, 2)

    def test_scalar_multiplication(self):
        assert (3 * Resources(slices=4)).slices == 12

    def test_str(self):
        assert "slices" in str(Resources(slices=1))


class TestDatasheet:
    def test_base_configuration(self):
        base = microblaze_resources(use_hw_multiplier=False,
                                    use_barrel_shifter=False)
        assert base.mult18 == 0
        assert base.slices == 450

    def test_multiplier_option_adds_mult18(self):
        with_mult = microblaze_resources(use_hw_multiplier=True,
                                         use_barrel_shifter=False)
        assert with_mult.mult18 == 3  # the paper's Table I constant

    def test_options_monotone(self):
        small = microblaze_resources(False, False, False)
        big = microblaze_resources(True, True, True)
        assert big.slices > small.slices


class TestProgramBrams:
    def test_small_program_one_bram_per_2kb(self):
        program = build_executable(
            "int main(void) { return 0; }",
            CompileOptions(memory_size=4096, stack_size=2048),
        )
        assert program_brams(program) == 2  # 4 KB / 2 KB

    def test_auto_sized_program(self):
        program = build_executable("int main(void) { return 0; }")
        assert program.memory_size % BRAM_BYTES == 0
        assert program_brams(program) == program.memory_size // BRAM_BYTES

    def test_bigger_data_more_brams(self):
        small = build_executable("int main(void) { return 0; }")
        big = build_executable(
            "int blob[4096]; int main(void) { return blob[0]; }"
        )
        assert program_brams(big) > program_brams(small)


class TestDesignEstimate:
    def test_composition(self):
        model = Model()
        model.add(Add("a", width=32))
        model.add(Register("r", width=32))
        model.add(Mult("m", 18, 18))
        program = build_executable("int main(void) { return 0; }")
        est = estimate_design(model=model, program=program,
                              cpu_config=CPUConfig(), n_fsl_links=2)
        assert est.processor.slices >= 450
        assert est.fsl_links.slices == 48
        assert est.peripheral.mult18 == 1
        assert est.total.slices == (
            est.processor.slices + est.lmb_controllers.slices
            + est.fsl_links.slices + est.peripheral.slices
        )
        assert est.total.brams == est.program_brams

    def test_report_text(self):
        est = estimate_design(program=build_executable(
            "int main(void) { return 0; }"
        ))
        text = est.report()
        assert "MicroBlaze core" in text
        assert "TOTAL" in text

    def test_software_only_design(self):
        est = estimate_design(cpu_config=CPUConfig())
        assert est.peripheral.slices == 0
        assert est.fsl_links.slices == 0


class TestParActuals:
    def test_mapped_counts_scale_with_design(self):
        from repro.resources.par import peripheral_actual

        small = Model("s")
        small.add(Add("a", width=8))
        big = Model("b")
        big.add(Add("a", width=32))
        big.add(Register("r", width=32))
        assert peripheral_actual(big).slices > peripheral_actual(small).slices

    def test_par_report_format(self):
        from repro.resources.par import ParReport

        rep = ParReport(Resources(slices=10, brams=1, mult18=2),
                        Resources(slices=9, brams=1, mult18=2))
        assert "10 / 9 slices" in rep.row()
