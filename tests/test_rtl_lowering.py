"""Differential tests: RTL lowering vs the arithmetic-level models,
and complete-system RTL simulation of the real applications."""

import pytest

from repro.apps.cordic.algorithm import cordic_divide_fixed, to_fixed
from repro.apps.cordic.design import CordicDesign
from repro.apps.cordic.hardware import build_cordic_model
from repro.apps.matmul.algorithm import generate_matrices, matmul_reference
from repro.apps.matmul.design import MatmulDesign
from repro.apps.matmul.hardware import build_matmul_model
from repro.rtl.kernel import Kernel
from repro.rtl.lowering import lower_model
from repro.rtl.system import CLOCK_PERIOD, RTLSystem
from repro.resources.par import design_actual, peripheral_actual


def run_lowered_cycles(kernel, n):
    kernel.run(CLOCK_PERIOD * n)


class TestCordicLoweredEquivalence:
    def _run_rtl_datum(self, p, a_raw, b_raw):
        model, mb = build_cordic_model(p)
        kernel = Kernel()
        clk = kernel.add_clock("clk", CLOCK_PERIOD)
        lower_model(model, kernel, clk)
        to_hw = mb.to_hw_channel(0)
        from_hw = mb.from_hw_channel(0)
        one = 1 << 16
        to_hw.push(one, control=True)
        to_hw.push(a_raw & 0xFFFFFFFF)
        to_hw.push(b_raw & 0xFFFFFFFF)
        to_hw.push(0)
        run_lowered_cycles(kernel, p + 16)
        y = from_hw.pop()
        z = from_hw.pop()
        assert y is not None and z is not None

        def s32(v):
            return v - 0x100000000 if v & 0x80000000 else v

        return s32(y.data), s32(z.data)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_netlist_matches_golden(self, p):
        a = to_fixed(2.5)
        b = to_fixed(1.25)
        got = self._run_rtl_datum(p, a, b)
        assert got == cordic_divide_fixed(b, a, p)

    def test_netlist_has_real_cells(self):
        model, mb = build_cordic_model(2)
        kernel = Kernel()
        clk = kernel.add_clock("clk", CLOCK_PERIOD)
        lowered = lower_model(model, kernel, clk)
        stats = lowered.netlist.stats
        assert stats.luts > 100  # two 32-bit addsubs per PE, sequencers
        assert stats.ffs > 100
        assert stats.mult18 == 0


class TestMatmulLoweredEquivalence:
    def test_block_product_matches(self):
        n = 2
        model, mb = build_matmul_model(n, fifo_depth=64)
        kernel = Kernel()
        clk = kernel.add_clock("clk", CLOCK_PERIOD)
        lower_model(model, kernel, clk)
        to_hw = mb.to_hw_channel(0)
        from_hw = mb.from_hw_channel(0)
        a, b = generate_matrices(n, seed=3)
        for j in range(n):
            for k in range(n):
                to_hw.push(b[k][j] & 0xFFFFFFFF, control=True)
        for k in range(n):
            for i in range(n):
                to_hw.push(a[i][k] & 0xFFFFFFFF)
        run_lowered_cycles(kernel, 4 * n * n + 24)
        assert len(from_hw) == n * n
        out = [[0] * n for _ in range(n)]
        for j in range(n):
            for i in range(n):
                raw = from_hw.pop().data
                out[i][j] = raw - 0x100000000 if raw & 0x80000000 else raw
        assert out == matmul_reference(a, b)

    def test_multiplier_cells_counted(self):
        model, _ = build_matmul_model(2)
        assert peripheral_actual(model).mult18 == 2


class TestRTLSystem:
    def test_software_only_program(self):
        d = CordicDesign(p=0, iters=4, ndata=2)
        system = RTLSystem(d.program)
        result = system.run(max_cycles=200_000)
        assert result.exit_code == 0
        assert result.events > 0

    def test_cordic_full_system(self):
        d = CordicDesign(p=2, iters=4, ndata=2)
        system = RTLSystem(d.program, d.model, d.mb)
        result = system.run(max_cycles=500_000)
        assert result.exit_code == 0
        # verify outputs in BRAM against the golden model
        d._verify(system.cpu)

    def test_matmul_full_system(self):
        d = MatmulDesign(block=2, matn=2)
        system = RTLSystem(d.program, d.model, d.mb)
        result = system.run(max_cycles=500_000)
        assert result.exit_code == 0
        d._verify(system.cpu)

    def test_rtl_slower_than_cosim(self):
        """The headline claim: high-level co-simulation is much faster
        per simulated cycle than the event-driven baseline."""
        d = CordicDesign(p=2, iters=4, ndata=2)
        cosim_result = d.run()
        d2 = CordicDesign(p=2, iters=4, ndata=2)
        rtl_result = RTLSystem(d2.program, d2.model, d2.mb).run()
        assert rtl_result.cycles_per_wall_second < \
            cosim_result.cycles_per_wall_second


class TestParActuals:
    def test_actual_close_to_estimate(self):
        d = CordicDesign(p=4, iters=8, ndata=4)
        est = d.estimate().total
        act = design_actual(model=d.model, program=d.program,
                            cpu_config=d.cpu_config, n_fsl_links=d.mb.n_links)
        assert act.mult18 == est.mult18
        assert act.brams == est.brams
        # slice counts agree within ~35% (Table I shows single-digit
        # percent; our packing model is coarser)
        assert abs(act.slices - est.slices) / est.slices < 0.35

    def test_actual_grows_with_p(self):
        a2 = peripheral_actual(build_cordic_model(2)[0])
        a4 = peripheral_actual(build_cordic_model(4)[0])
        assert a4.slices > a2.slices
