"""Tests for the command-line toolchain."""

import threading

import pytest

from repro.cli import (
    as_main,
    cc_main,
    load_image,
    objdump_main,
    run_main,
    save_image,
)
from repro.mcc import build_executable

HELLO = """
int main(void) {
    __builtin_putchar('h');
    __builtin_putchar('i');
    __builtin_putchar('\\n');
    return 0;
}
"""


@pytest.fixture
def hello_c(tmp_path):
    path = tmp_path / "hello.c"
    path.write_text(HELLO)
    return path


class TestImageContainer:
    def test_round_trip(self, tmp_path):
        program = build_executable("int main(void) { return 7; }")
        path = tmp_path / "p.img"
        save_image(program, str(path))
        loaded = load_image(str(path))
        assert loaded.image == program.image
        assert loaded.entry == program.entry
        assert loaded.symbols == program.symbols
        assert loaded.memory_size == program.memory_size

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.img"
        path.write_bytes(b'{"magic": "NOPE"}\n')
        with pytest.raises(ValueError, match="not an MB32 image"):
            load_image(str(path))


class TestCc:
    def test_compile_to_image(self, hello_c, tmp_path, capsys):
        out = tmp_path / "hello.img"
        rc = cc_main([str(hello_c), "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_emit_assembly(self, hello_c, capsys):
        rc = cc_main([str(hello_c), "-S"])
        assert rc == 0
        asm = capsys.readouterr().out
        assert ".global main" in asm
        assert "brlid" in asm

    def test_error_reporting(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main(void) { return undeclared; }")
        rc = cc_main([str(bad)])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_target_flags(self, hello_c, tmp_path):
        out = tmp_path / "soft.img"
        rc = cc_main([str(hello_c), "--no-mult", "--no-barrel",
                      "-o", str(out)])
        assert rc == 0


class TestAs:
    def test_assemble_and_link(self, tmp_path, capsys):
        src = tmp_path / "prog.s"
        src.write_text(
            ".global _start\n"
            "_start: addik r3, r0, 3\n"
            "        li r12, 0xFFFF0000\n"
            "        swi r3, r12, 0\n"
        )
        out = tmp_path / "prog.img"
        rc = as_main([str(src), "-o", str(out)])
        assert rc == 0
        assert run_main([str(out)]) == 3

    def test_error(self, tmp_path, capsys):
        src = tmp_path / "bad.s"
        src.write_text("bogus r1, r2\n")
        assert as_main([str(src)]) == 1

    def test_stdin_dash(self, tmp_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                ".global _start\n"
                "_start: addik r3, r0, 5\n"
                "        li r12, 0xFFFF0000\n"
                "        swi r3, r12, 0\n"
            ),
        )
        out = tmp_path / "stdin.img"
        assert as_main(["-", "-o", str(out)]) == 0
        assert run_main([str(out)]) == 5


class TestRun:
    def test_runs_and_prints_console(self, hello_c, tmp_path, capsys):
        out = tmp_path / "hello.img"
        cc_main([str(hello_c), "-o", str(out)])
        capsys.readouterr()
        rc = run_main([str(out), "--stats"])
        text = capsys.readouterr().out
        assert rc == 0
        assert "hi" in text
        assert "instructions" in text
        assert "exit code 0" in text

    def test_exit_code_propagated(self, tmp_path, capsys):
        src = tmp_path / "six.c"
        src.write_text("int main(void) { return 6; }")
        img = tmp_path / "six.img"
        cc_main([str(src), "-o", str(img)])
        assert run_main([str(img)]) == 6

    def test_trace_option(self, hello_c, tmp_path, capsys):
        img = tmp_path / "h.img"
        cc_main([str(hello_c), "-o", str(img)])
        capsys.readouterr()
        run_main([str(img), "--trace", "5"])
        out = capsys.readouterr().out
        assert out.count("]") >= 5  # five trace lines

    def test_nonterminating_reports(self, tmp_path, capsys):
        src = tmp_path / "loop.s"
        src.write_text(".global _start\n_start: bri 0\n")
        img = tmp_path / "loop.img"
        as_main([str(src), "-o", str(img)])
        rc = run_main([str(img), "--max-cycles", "100"])
        assert rc == 2
        assert "did not exit" in capsys.readouterr().err


class TestObjdump:
    def test_disassembly(self, hello_c, tmp_path, capsys):
        img = tmp_path / "h.img"
        cc_main([str(hello_c), "-o", str(img)])
        capsys.readouterr()
        rc = objdump_main([str(img)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "main:" in out
        assert "rtsd" in out

    def test_symbols(self, hello_c, tmp_path, capsys):
        img = tmp_path / "h.img"
        cc_main([str(hello_c), "-o", str(img)])
        capsys.readouterr()
        objdump_main([str(img), "-t"])
        out = capsys.readouterr().out
        assert "main" in out
        assert "_start" in out


class TestGdbServer:
    def test_serves_one_session(self, hello_c, tmp_path, capsys):
        from repro.cli import gdbserver_main
        from repro.gdb import GdbClient
        import re
        import io
        import contextlib

        img = tmp_path / "h.img"
        cc_main([str(hello_c), "-o", str(img)])

        # run the server main in a thread, scrape the port from stdout
        buf = io.StringIO()
        ready = threading.Event()
        port_holder = {}

        def serve():
            import repro.cli as cli
            from repro.gdb import Debugger, GdbServer
            from repro.iss.run import make_cpu

            program = load_image(str(img))
            cpu = make_cpu(program)
            server = GdbServer(Debugger(cpu, program))
            port_holder["port"] = server.address[1]
            ready.set()
            server.serve_one()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(5)
        client = GdbClient("127.0.0.1", port_holder["port"])
        try:
            assert client.request("?") == "S05"
            reply = client.cont()
            assert reply == "W00"
        finally:
            client.close()
        thread.join(timeout=5)
