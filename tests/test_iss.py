"""Tests for the cycle-accurate instruction-set simulator."""

import pytest

from repro.asm import assemble, link
from repro.bus.fsl import FSLChannel
from repro.iss import BRAM, CPU, CPUConfig, CPUError, HaltReason
from repro.iss.run import make_cpu, run_to_completion


def asm_cpu(body: str, config: CPUConfig | None = None, mem: int = 4096) -> CPU:
    """Assemble a bare program (no crt0) and build a CPU for it."""
    source = ".global _start\n_start:\n" + body
    prog = link(assemble(source))
    bram = BRAM(mem)
    prog.load_into(bram)
    cpu = CPU(bram, config=config)
    return cpu


def run_instrs(cpu: CPU, n: int, max_cycles: int = 1000) -> None:
    """Tick until ``n`` instructions have issued."""
    for _ in range(max_cycles):
        if cpu.stats.instructions >= n and not cpu.busy:
            return
        cpu.tick()
    raise AssertionError("instruction budget not reached")


class TestArithmetic:
    def test_add_basic(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 5
            addik r4, r0, 7
            add   r5, r3, r4
            """
        )
        run_instrs(cpu, 3)
        assert cpu.regs[5] == 12

    def test_r0_is_zero(self):
        cpu = asm_cpu("addik r0, r0, 99\n add r3, r0, r0")
        run_instrs(cpu, 2)
        assert cpu.regs[0] == 0
        assert cpu.regs[3] == 0

    def test_carry_chain(self):
        # 0xFFFFFFFF + 1 = 0 carry 1; addc picks up the carry.
        cpu = asm_cpu(
            """
            addik r3, r0, -1
            addik r4, r0, 1
            add   r5, r3, r4
            addc  r6, r0, r0
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[5] == 0
        assert cpu.regs[6] == 1

    def test_addk_keeps_carry(self):
        cpu = asm_cpu(
            """
            addik r3, r0, -1
            add   r4, r3, r3      # sets carry
            addk  r5, r0, r0      # keeps carry
            addc  r6, r0, r0      # consumes carry -> 1
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[6] == 1

    def test_rsub(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 10
            addik r4, r0, 3
            rsubk r5, r4, r3      # r5 = r3 - r4 = 7
            """
        )
        run_instrs(cpu, 3)
        assert cpu.regs[5] == 7

    def test_cmp_signed(self):
        cpu = asm_cpu(
            """
            addik r3, r0, -5
            addik r4, r0, 3
            cmp   r5, r3, r4      # ra=-5 > rb=3 ? no -> MSB clear
            cmp   r6, r4, r3      # ra=3 > rb=-5 ? yes -> MSB set
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[5] >> 31 == 0
        assert cpu.regs[6] >> 31 == 1

    def test_cmpu_unsigned(self):
        cpu = asm_cpu(
            """
            addik r3, r0, -1      # 0xFFFFFFFF unsigned max
            addik r4, r0, 1
            cmpu  r5, r3, r4      # 0xFFFFFFFF > 1 -> MSB set
            """
        )
        run_instrs(cpu, 3)
        assert cpu.regs[5] >> 31 == 1

    def test_mul(self):
        cpu = asm_cpu("addik r3, r0, 6\n addik r4, r0, 7\n mul r5, r3, r4")
        run_instrs(cpu, 3)
        assert cpu.regs[5] == 42

    def test_muli_negative(self):
        cpu = asm_cpu("addik r3, r0, -4\n muli r5, r3, 3")
        run_instrs(cpu, 2)
        assert cpu.regs[5] == (-12) & 0xFFFFFFFF

    def test_mul_requires_hw_multiplier(self):
        cfg = CPUConfig(use_hw_multiplier=False)
        cpu = asm_cpu("mul r3, r0, r0", config=cfg)
        with pytest.raises(CPUError):
            run_instrs(cpu, 1)

    def test_idiv(self):
        cfg = CPUConfig(use_hw_divider=True)
        cpu = asm_cpu(
            """
            addik r3, r0, 7       # divisor
            addik r4, r0, -23     # dividend
            idiv  r5, r3, r4      # r5 = r4 / r3 = -3 (trunc)
            """,
            config=cfg,
        )
        run_instrs(cpu, 3)
        assert cpu.regs[5] == (-3) & 0xFFFFFFFF

    def test_idiv_by_zero_gives_zero(self):
        cfg = CPUConfig(use_hw_divider=True)
        cpu = asm_cpu("addik r4, r0, 9\n idiv r5, r0, r4", config=cfg)
        run_instrs(cpu, 2)
        assert cpu.regs[5] == 0


class TestShiftsAndLogic:
    def test_barrel_shifts(self):
        cpu = asm_cpu(
            """
            addik r3, r0, -16
            bsrai r4, r3, 2       # arithmetic -> -4
            bsrli r5, r3, 28      # logical    -> 0xF
            bslli r6, r3, 1       # -32
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[4] == (-4) & 0xFFFFFFFF
        assert cpu.regs[5] == 0xF
        assert cpu.regs[6] == (-32) & 0xFFFFFFFF

    def test_shift1_and_carry(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 5
            srl   r4, r3          # 2, carry=1
            addc  r5, r0, r0      # r5 = 1
            """
        )
        run_instrs(cpu, 3)
        assert cpu.regs[4] == 2
        assert cpu.regs[5] == 1

    def test_sra_preserves_sign(self):
        cpu = asm_cpu("addik r3, r0, -8\n sra r4, r3")
        run_instrs(cpu, 2)
        assert cpu.regs[4] == (-4) & 0xFFFFFFFF

    def test_src_shifts_in_carry(self):
        cpu = asm_cpu(
            """
            addik r3, r0, -1
            add   r4, r3, r3      # carry out = 1
            addik r5, r0, 0
            src   r6, r5          # shifts carry into MSB
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[6] == 0x80000000

    def test_logic_ops(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 0xF0
            addik r4, r0, 0x3C
            and   r5, r3, r4
            or    r6, r3, r4
            xor   r7, r3, r4
            andn  r8, r3, r4
            """
        )
        run_instrs(cpu, 6)
        assert cpu.regs[5] == 0x30
        assert cpu.regs[6] == 0xFC
        assert cpu.regs[7] == 0xCC
        assert cpu.regs[8] == 0xC0

    def test_sext(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 0x80
            sext8 r4, r3
            addik r5, r0, 0x7FFF
            sext16 r6, r5
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[4] == 0xFFFFFF80
        assert cpu.regs[6] == 0x7FFF


class TestMemoryAndImm:
    def test_store_load(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 1234
            swi   r3, r0, 0x100
            lwi   r4, r0, 0x100
            """
        )
        run_instrs(cpu, 3)
        assert cpu.regs[4] == 1234

    def test_byte_half_access(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 0xAB
            sbi   r3, r0, 0x101
            lbui  r4, r0, 0x101
            addik r5, r0, 0x1234
            shi   r5, r0, 0x102
            lhui  r6, r0, 0x102
            """
        )
        run_instrs(cpu, 6)
        assert cpu.regs[4] == 0xAB
        assert cpu.regs[6] == 0x1234

    def test_reg_indexed_access(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 0x200
            addik r4, r0, 4
            addik r5, r0, 77
            sw    r5, r3, r4
            lw    r6, r3, r4
            """
        )
        run_instrs(cpu, 5)
        assert cpu.regs[6] == 77

    def test_imm_prefix_forms_32bit(self):
        cpu = asm_cpu(
            """
            imm   0x1234
            addik r3, r0, 0x5678
            """
        )
        run_instrs(cpu, 2)
        assert cpu.regs[3] == 0x12345678

    def test_imm_applies_to_next_only(self):
        cpu = asm_cpu(
            """
            imm   0xFFFF
            addik r3, r0, 0
            addik r4, r0, 1
            """
        )
        run_instrs(cpu, 3)
        assert cpu.regs[3] == 0xFFFF0000
        assert cpu.regs[4] == 1


class TestBranches:
    def test_taken_conditional(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 0
            beqi  r3, target
            addik r4, r0, 99      # skipped
target:     addik r5, r0, 1
            """
        )
        run_instrs(cpu, 3)
        assert cpu.regs[4] == 0
        assert cpu.regs[5] == 1

    def test_not_taken(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 1
            beqi  r3, skip
            addik r4, r0, 42
skip:       nop
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[4] == 42

    def test_delay_slot_executes(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 1
            bneid r3, target
            addik r4, r0, 7       # delay slot: executes
            addik r4, r0, 99      # skipped
target:     nop
            """
        )
        run_instrs(cpu, 4)
        assert cpu.regs[4] == 7

    def test_call_and_return(self):
        cpu = asm_cpu(
            """
            brlid r15, func
            nop
            addik r4, r0, 21      # after return
done:       bri   0
func:       addik r3, r0, 10
            rtsd  r15, 8
            nop
            """
        )
        run_instrs(cpu, 7, max_cycles=100)
        assert cpu.regs[3] == 10
        assert cpu.regs[4] == 21

    def test_loop_counts(self):
        cpu = asm_cpu(
            """
            addik r3, r0, 5
            addik r4, r0, 0
loop:       addik r4, r4, 1
            addik r3, r3, -1
            bnei  r3, loop
            """
        )
        run_instrs(cpu, 2 + 3 * 5, max_cycles=200)
        assert cpu.regs[4] == 5

    def test_branch_in_delay_slot_rejected(self):
        cpu = asm_cpu(
            """
            brid  next
            bri   0
next:       nop
            """
        )
        with pytest.raises(CPUError):
            for _ in range(10):
                cpu.tick()


class TestTiming:
    def test_single_cycle_alu(self):
        cpu = asm_cpu("addik r3, r0, 1\n addik r4, r0, 2")
        cpu.tick()
        assert cpu.stats.instructions == 1
        cpu.tick()
        assert cpu.stats.instructions == 2

    def test_mul_takes_three_cycles(self):
        cpu = asm_cpu("mul r3, r0, r0\n addik r4, r0, 1")
        cpu.tick()
        assert cpu.stats.instructions == 1
        cpu.tick()
        cpu.tick()
        assert cpu.stats.instructions == 1  # still busy
        cpu.tick()
        assert cpu.stats.instructions == 2

    def test_load_takes_two_cycles(self):
        cpu = asm_cpu("lwi r3, r0, 0x100\n addik r4, r0, 1")
        cpu.tick()
        cpu.tick()
        assert cpu.stats.instructions == 1
        cpu.tick()
        assert cpu.stats.instructions == 2

    def test_taken_branch_three_cycles(self):
        cpu = asm_cpu("bri next\nnext: addik r3, r0, 1")
        cpu.tick()
        cpu.tick()
        cpu.tick()
        assert cpu.stats.instructions == 1
        cpu.tick()
        assert cpu.regs[3] == 1

    def test_delayed_branch_two_cycles_total(self):
        # brid (1 cycle) + delay-slot addik (1 cycle) = 2 cycles.
        cpu = asm_cpu(
            """
            brid  next
            addik r3, r0, 5
next:       addik r4, r0, 1
            """
        )
        cpu.tick()  # brid
        cpu.tick()  # delay slot
        assert cpu.regs[3] == 5
        assert cpu.stats.cycles == 2
        cpu.tick()
        assert cpu.regs[4] == 1


class TestFSL:
    def make_fsl_cpu(self, body, depth=16):
        cpu = asm_cpu(body)
        to_hw = FSLChannel(depth=depth, name="to_hw")
        from_hw = FSLChannel(depth=depth, name="from_hw")
        cpu.fsl.connect_output(0, to_hw)
        cpu.fsl.connect_input(0, from_hw)
        return cpu, to_hw, from_hw

    def test_put_pushes_word(self):
        cpu, to_hw, _ = self.make_fsl_cpu("addik r3, r0, 55\n put r3, rfsl0")
        run_instrs(cpu, 2)
        word = to_hw.pop()
        assert word.data == 55
        assert word.control is False

    def test_cput_sets_control(self):
        cpu, to_hw, _ = self.make_fsl_cpu("addik r3, r0, 9\n cput r3, rfsl0")
        run_instrs(cpu, 2)
        assert to_hw.pop().control is True

    def test_get_reads_word(self):
        cpu, _, from_hw = self.make_fsl_cpu("get r3, rfsl0")
        from_hw.push(1234)
        run_instrs(cpu, 1)
        assert cpu.regs[3] == 1234

    def test_blocking_get_stalls_until_data(self):
        cpu, _, from_hw = self.make_fsl_cpu("get r3, rfsl0\n addik r4, r0, 1")
        for _ in range(10):
            cpu.tick()
        assert cpu.regs[3] == 0  # still stalled
        assert cpu.stats.stall_cycles > 0
        from_hw.push(42)
        for _ in range(3):
            cpu.tick()
        assert cpu.regs[3] == 42

    def test_blocking_put_stalls_when_full(self):
        cpu, to_hw, _ = self.make_fsl_cpu(
            "addik r3, r0, 1\n put r3, rfsl0\n put r3, rfsl0\n addik r4, r0, 9",
            depth=1,
        )
        for _ in range(12):
            cpu.tick()
        assert cpu.regs[4] == 0  # second put blocked
        to_hw.pop()
        for _ in range(4):
            cpu.tick()
        assert cpu.regs[4] == 9

    def test_nonblocking_get_sets_carry_on_empty(self):
        cpu, _, _ = self.make_fsl_cpu(
            "nget r3, rfsl0\n addc r4, r0, r0"  # r4 = carry
        )
        run_instrs(cpu, 2)
        assert cpu.regs[4] == 1

    def test_nonblocking_get_clears_carry_on_success(self):
        cpu, _, from_hw = self.make_fsl_cpu("nget r3, rfsl0\n addc r4, r0, r0")
        from_hw.push(7)
        run_instrs(cpu, 2)
        assert cpu.regs[3] == 7
        assert cpu.regs[4] == 0

    def test_control_mismatch_sets_error(self):
        cpu, _, from_hw = self.make_fsl_cpu("get r3, rfsl0")
        from_hw.push(7, control=True)  # data get, control word arrives
        run_instrs(cpu, 1)
        assert cpu.fsl.error is True

    def test_fsl_takes_two_cycles_minimum(self):
        cpu, _, from_hw = self.make_fsl_cpu("get r3, rfsl0")
        from_hw.push(5)
        cpu.tick()
        assert cpu.regs[3] == 0
        cpu.tick()
        assert cpu.regs[3] == 5
        assert cpu.stats.cycles == 2


class TestHaltAndRun:
    def test_exit_device(self):
        source = """
            .global _start
_start:     addik r3, r0, 7
            li    r12, 0xFFFF0000
            swi   r3, r12, 0
        """
        prog = link(assemble(source))
        code, cpu = run_to_completion(prog)
        assert code == 7
        assert cpu.halt_reason is HaltReason.EXIT

    def test_max_cycles(self):
        prog = link(assemble(".global _start\n_start: bri 0"))
        cpu = make_cpu(prog)
        reason = cpu.run(max_cycles=50)
        assert reason is HaltReason.MAX_CYCLES

    def test_breakpoint(self):
        source = """
            .global _start
_start:     addik r3, r0, 1
stop_here:  addik r3, r3, 1
            bri   0
        """
        prog = link(assemble(source))
        cpu = make_cpu(prog)
        cpu.breakpoints.add(prog.symbols["stop_here"])
        cpu.run(max_cycles=100)
        assert cpu.halt_reason is HaltReason.BREAKPOINT
        assert cpu.regs[3] == 1
        cpu.resume()
        cpu.breakpoints.clear()
        cpu.run(max_cycles=10)
        assert cpu.regs[3] == 2

    def test_console_device(self):
        source = """
            .global _start
_start:     addik r3, r0, 'H'
            li    r12, 0xFFFF0004
            swi   r3, r12, 0
            addik r3, r0, 'i'
            swi   r3, r12, 0
            addik r3, r0, 0
            li    r12, 0xFFFF0000
            swi   r3, r12, 0
        """
        prog = link(assemble(source))
        code, cpu = run_to_completion(prog)
        assert code == 0
        assert cpu.mem.console.text == "Hi"

    def test_decode_cache_invalidation_on_store(self):
        # Self-modifying code: overwrite the second instruction.
        source = """
            .global _start
_start:     lwi   r4, r0, patch    # load 'addik r3, r0, 99' encoding
            swi   r4, r0, target
target:     addik r3, r0, 1
            li    r12, 0xFFFF0000
            swi   r3, r12, 0
            .data
patch:      .word 0x30600063       # addik r3, r0, 99
        """
        prog = link(assemble(source))
        # Warm the decode cache by a first run, then re-run after reset.
        code, cpu = run_to_completion(prog)
        assert code == 99

    def test_simulated_time(self):
        prog = link(assemble(".global _start\n_start: bri 0"))
        cpu = make_cpu(prog)
        cpu.run(max_cycles=500)
        assert cpu.simulated_time_s() == pytest.approx(500 / 50e6)
