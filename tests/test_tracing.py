"""Tests for instruction and FSL transaction tracing."""

import pytest

from repro.apps.cordic.design import CordicDesign
from repro.cosim.environment import CoSimulation
from repro.cosim.trace import FSLTrace
from repro.iss.run import make_cpu
from repro.iss.trace import InstructionTracer
from repro.mcc import build_executable

LOOP_SRC = """
int main(void) {
    int sum = 0;
    for (int i = 0; i < 10; i++) sum += i;
    return sum;
}
"""


class TestInstructionTracer:
    def test_records_entries(self):
        cpu = make_cpu(build_executable(LOOP_SRC))
        tracer = InstructionTracer(cpu).install()
        cpu.run()
        assert cpu.exit_code == 45
        assert len(tracer.entries) == cpu.stats.instructions
        assert tracer.entries[0].pc == 0  # _start
        assert "addik" in tracer.text(last=100)

    def test_limit_bounds_memory(self):
        cpu = make_cpu(build_executable(LOOP_SRC))
        tracer = InstructionTracer(cpu, limit=5).install()
        cpu.run()
        assert len(tracer.entries) == 5
        # the histogram still counts everything
        assert sum(tracer.pc_histogram.values()) == cpu.stats.instructions

    def test_hottest_finds_the_loop(self):
        cpu = make_cpu(build_executable(LOOP_SRC))
        tracer = InstructionTracer(cpu, limit=0).install()
        cpu.run()
        hottest_pc, count = tracer.hottest(1)[0]
        assert count >= 10  # executed once per loop iteration

    def test_double_install_rejected(self):
        cpu = make_cpu(build_executable(LOOP_SRC))
        InstructionTracer(cpu).install()
        with pytest.raises(RuntimeError):
            InstructionTracer(cpu).install()

    def test_uninstall(self):
        cpu = make_cpu(build_executable(LOOP_SRC))
        tracer = InstructionTracer(cpu).install()
        tracer.uninstall()
        cpu.run()
        assert tracer.entries == []


class TestFSLTrace:
    def make_traced_run(self):
        design = CordicDesign(p=2, iters=4, ndata=2)
        sim = CoSimulation(design.program, design.model, design.mb,
                           cpu_config=design.cpu_config)
        trace = FSLTrace(design.mb, clock=lambda: sim.cpu.cycle).install()
        result = sim.run()
        assert result.exit_code == 0
        return design, trace

    def test_transactions_recorded(self):
        design, trace = self.make_traced_run()
        # 2 passes x 2 data x 3 words + 2 control words pushed to HW
        to_hw = trace.for_channel("mb_out0")
        pushes = [t for t in to_hw if t.direction == "push"]
        assert len(pushes) == 2 * (2 * 3 + 1)
        controls = [t for t in pushes if t.control]
        assert len(controls) == 2  # one C0 per pass

    def test_push_pop_balance(self):
        _, trace = self.make_traced_run()
        for name in ("mb_out0", "mb_in0"):
            events = trace.for_channel(name)
            pushes = sum(1 for t in events if t.direction == "push")
            pops = sum(1 for t in events if t.direction == "pop")
            assert pushes == pops  # everything produced was consumed

    def test_occupancy_never_negative_or_over_depth(self):
        design, trace = self.make_traced_run()
        for name in ("mb_out0", "mb_in0"):
            for _cycle, depth in trace.occupancy_timeline(name):
                assert 0 <= depth <= design.fifo_depth

    def test_cycles_monotone(self):
        _, trace = self.make_traced_run()
        cycles = [t.cycle for t in trace.transactions]
        assert cycles == sorted(cycles)

    def test_text_rendering(self):
        _, trace = self.make_traced_run()
        text = trace.text(last=5)
        assert "mb_" in text

    def test_install_uses_public_channels_accessor(self):
        """FSLTrace subscribes to exactly the channels
        MicroBlazeBlock.channels() exposes — both directions, no
        private-dict reach-ins."""
        design = CordicDesign(p=2, iters=4, ndata=2)
        channels = design.mb.channels()
        assert {ch.name for ch in channels} == {"mb_out0", "mb_in0"}
        trace = FSLTrace(design.mb, clock=lambda: 0).install()
        for ch in channels:
            # install() attaches an event bus to every public channel
            assert ch.events is not None
            assert ch.events.subscriber_count >= 1
        assert set(design.mb.channel_occupancies()) == \
            {ch.name for ch in channels}
        assert trace.transactions == []

    def test_uninstall_stops_recording(self):
        design = CordicDesign(p=2, iters=4, ndata=2)
        sim = CoSimulation(design.program, design.model, design.mb,
                           cpu_config=design.cpu_config)
        trace = FSLTrace(design.mb, clock=lambda: sim.cpu.cycle).install()
        trace.uninstall()
        sim.run()
        assert trace.transactions == []
