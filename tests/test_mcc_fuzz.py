"""Compiler fuzzing: random expression trees, compiled and executed,
must match an interpreter with C semantics (32-bit wrap, truncating
division, arithmetic/logical shifts)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.iss.run import run_to_completion
from repro.mcc import CompileOptions, build_executable

_M32 = 0xFFFFFFFF


def _s32(v: int) -> int:
    v &= _M32
    return v - 0x100000000 if v & 0x80000000 else v


# ----------------------------------------------------------------------
# Expression AST as tuples: ('var', name) | ('num', v) | (op, l, r) | ('neg'|'not'|'inv', e)
# ----------------------------------------------------------------------
_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "<", ">", "==", "!=",
           "/", "%"]
_UNOPS = ["neg", "inv", "not"]


def _exprs(depth: int):
    leaf = st.one_of(
        st.sampled_from([("var", "a"), ("var", "b"), ("var", "c")]),
        st.integers(-100, 100).map(lambda v: ("num", v)),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(_BINOPS), sub, sub),
        st.tuples(st.sampled_from(_UNOPS), sub),
    )


def render(e) -> str:
    kind = e[0]
    if kind == "var":
        return e[1]
    if kind == "num":
        return f"({e[1]})"
    if kind == "neg":
        return f"(-{render(e[1])})"
    if kind == "inv":
        return f"(~{render(e[1])})"
    if kind == "not":
        return f"(!{render(e[1])})"
    op, left, right = e
    return f"({render(left)} {op} {render(right)})"


class Unsafe(Exception):
    """Expression hits C UB (div by zero, over-shift) — skip it."""


def evaluate(e, env) -> int:
    kind = e[0]
    if kind == "var":
        return env[e[1]]
    if kind == "num":
        return e[1]
    if kind == "neg":
        return _s32(-evaluate(e[1], env))
    if kind == "inv":
        return _s32(~evaluate(e[1], env))
    if kind == "not":
        return int(evaluate(e[1], env) == 0)
    op, l, r = e
    lv = evaluate(l, env)
    rv = evaluate(r, env)
    if op == "+":
        return _s32(lv + rv)
    if op == "-":
        return _s32(lv - rv)
    if op == "*":
        return _s32(lv * rv)
    if op == "&":
        return _s32(lv & rv)
    if op == "|":
        return _s32(lv | rv)
    if op == "^":
        return _s32(lv ^ rv)
    if op == "<<":
        if not 0 <= rv <= 31:
            raise Unsafe
        return _s32(lv << rv)
    if op == ">>":
        if not 0 <= rv <= 31:
            raise Unsafe
        return _s32(lv >> rv)
    if op == "<":
        return int(lv < rv)
    if op == ">":
        return int(lv > rv)
    if op == "==":
        return int(lv == rv)
    if op == "!=":
        return int(lv != rv)
    if op in ("/", "%"):
        if rv == 0 or (lv == -(1 << 31) and rv == -1):
            raise Unsafe
        q = abs(lv) // abs(rv)
        if (lv < 0) != (rv < 0):
            q = -q
        if op == "/":
            return _s32(q)
        return _s32(lv - q * rv)
    raise AssertionError(op)


def check(expr, env, options=None) -> None:
    try:
        expected = evaluate(expr, env)
    except Unsafe:
        return  # UB in C; nothing to verify
    src = f"""
    int main(void) {{
        int a = {env['a']};
        int b = {env['b']};
        int c = {env['c']};
        return {render(expr)};
    }}
    """
    code, _ = run_to_completion(build_executable(src, options))
    assert code == expected, f"{render(expr)} with {env}"


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(expr=_exprs(3), a=st.integers(-500, 500), b=st.integers(-500, 500),
       c=st.integers(-500, 500))
def test_fuzz_expressions(expr, a, b, c):
    check(expr, {"a": a, "b": b, "c": c})


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(expr=_exprs(2), a=st.integers(-500, 500), b=st.integers(-500, 500),
       c=st.integers(-500, 500))
def test_fuzz_expressions_no_hw_units(expr, a, b, c):
    """Same property on the minimal processor configuration (soft
    multiply, soft shifts)."""
    from repro.iss.cpu import CPUConfig

    try:
        expected = evaluate(expr, {"a": a, "b": b, "c": c})
    except Unsafe:
        return
    src = f"""
    int main(void) {{
        int a = {a};
        int b = {b};
        int c = {c};
        return {render(expr)};
    }}
    """
    options = CompileOptions(hw_multiplier=False, hw_barrel_shifter=False)
    config = CPUConfig(use_hw_multiplier=False, use_barrel_shifter=False)
    code, _ = run_to_completion(build_executable(src, options), config=config)
    assert code == expected, f"{render(expr)} with a={a} b={b} c={c}"


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(exprs=st.lists(_exprs(2), min_size=1, max_size=4),
       a=st.integers(-100, 100), b=st.integers(-100, 100))
def test_fuzz_statement_sequences(exprs, a, b):
    """Chains of assignments through a variable must accumulate the
    same way (exercises statement-level codegen and register reuse)."""
    env = {"a": a, "b": b, "c": 7}
    acc = 0
    lines = []
    ok = True
    for i, expr in enumerate(exprs):
        try:
            value = evaluate(expr, env)
        except Unsafe:
            ok = False
            break
        acc = _s32(acc ^ value)
        lines.append(f"acc ^= {render(expr)};")
    if not ok:
        return
    src = f"""
    int main(void) {{
        int a = {a};
        int b = {b};
        int c = 7;
        int acc = 0;
        {' '.join(lines)}
        return acc;
    }}
    """
    code, _ = run_to_completion(build_executable(src))
    assert code == acc
