"""Integration tests for the co-simulation environment: compiled mini-C
software exchanging data with sysgen hardware over FSL channels."""

import pytest

from repro.cosim import CoSimulation, MicroBlazeBlock
from repro.iss.cpu import CPUConfig
from repro.mcc import CompileOptions, build_executable
from repro.sysgen import Model
from repro.sysgen.blocks import Delay, Inverter, Logical, Shift
from repro.resources.estimator import estimate_design


def doubler_design(fifo_depth: int = 16, extra_latency: int = 0):
    """A peripheral that reads x from FSL0 and writes back 2*x.

    ``extra_latency`` inserts a pipeline delay to exercise stalling.
    """
    model = Model("doubler")
    mb = MicroBlazeBlock(model, fifo_depth=fifo_depth)
    rd = mb.master_fsl(0)
    wr = mb.slave_fsl(0)
    shl = model.add(Shift("shl", width=32, amount=1, direction="left"))
    notfull = model.add(Inverter("notfull", width=1))
    strobe = model.add(Logical("strobe", width=1, op="and"))
    model.connect(wr.o("full"), notfull.i("a"))
    model.connect(rd.o("exists"), strobe.i("d0"))
    model.connect(notfull.o("out"), strobe.i("d1"))
    model.connect(rd.o("data"), shl.i("a"))
    model.connect(strobe.o("out"), rd.i("read"))
    if extra_latency:
        dly_d = model.add(Delay("dly_d", width=32, n=extra_latency))
        dly_v = model.add(Delay("dly_v", width=1, n=extra_latency))
        model.connect(shl.o("s"), dly_d.i("d"))
        model.connect(strobe.o("out"), dly_v.i("d"))
        model.connect(dly_d.o("q"), wr.i("data"))
        model.connect(dly_v.o("q"), wr.i("write"))
    else:
        model.connect(shl.o("s"), wr.i("data"))
        model.connect(strobe.o("out"), wr.i("write"))
    return model, mb


def build_cosim(source: str, model, mb, options=None):
    options = options or CompileOptions()
    program = build_executable(source, options)
    config = CPUConfig(
        use_hw_multiplier=options.hw_multiplier,
        use_hw_divider=options.hw_divider,
    )
    return CoSimulation(program, model, mb, cpu_config=config)


ECHO_SUM_SRC = """
int main(void) {
    int sum = 0;
    for (int i = 1; i <= 5; i++) {
        putfsl(i, 0);
        sum += getfsl(0);
    }
    return sum;   /* doubler: 2+4+6+8+10 = 30 */
}
"""


class TestCoSimulation:
    def test_doubler_round_trip(self):
        model, mb = doubler_design()
        sim = build_cosim(ECHO_SUM_SRC, model, mb)
        result = sim.run()
        assert result.exit_code == 30
        assert result.cycles > 0
        assert result.instructions > 0

    def test_doubler_with_pipeline_latency(self):
        model, mb = doubler_design(extra_latency=8)
        sim = build_cosim(ECHO_SUM_SRC, model, mb)
        result = sim.run()
        assert result.exit_code == 30
        assert result.stall_cycles > 0  # CPU blocked while data in flight

    def test_deeper_latency_costs_cycles(self):
        model0, mb0 = doubler_design(extra_latency=0)
        base = build_cosim(ECHO_SUM_SRC, model0, mb0).run()
        model8, mb8 = doubler_design(extra_latency=8)
        slow = build_cosim(ECHO_SUM_SRC, model8, mb8).run()
        assert slow.cycles > base.cycles

    def test_burst_write_set_by_set(self):
        # The paper processes large inputs "set by set", each set sized
        # to not overflow the output FSL FIFO.  40 words through a
        # depth-4 FIFO as 10 sets of 4.
        src = """
        int main(void) {
            int sum = 0;
            for (int s = 0; s < 10; s++) {
                for (int i = 0; i < 4; i++) putfsl(s * 4 + i, 0);
                for (int i = 0; i < 4; i++) sum += getfsl(0);
            }
            return sum == 2 * (39 * 40 / 2);
        }
        """
        model, mb = doubler_design(fifo_depth=4)
        sim = build_cosim(src, model, mb)
        result = sim.run()
        assert result.exit_code == 1

    def test_fifo_overflow_deadlock_detected(self):
        # Writing a whole 40-word set through depth-4 FIFOs without
        # draining results is the overflow deadlock the paper warns
        # about; the environment must detect it rather than hang.
        from repro.cosim.environment import CoSimDeadlock

        src = """
        int main(void) {
            int sum = 0;
            for (int i = 0; i < 40; i++) putfsl(i, 0);
            for (int i = 0; i < 40; i++) sum += getfsl(0);
            return sum;
        }
        """
        model, mb = doubler_design(fifo_depth=4)
        sim = build_cosim(src, model, mb)
        with pytest.raises(CoSimDeadlock):
            sim.run()

    def test_nonblocking_polling(self):
        # Non-blocking reads poll until data arrives (carry flag).
        src = """
        int main(void) {
            int v;
            putfsl(21, 0);
            v = ngetfsl(0);
            while (fsl_isinvalid()) { v = ngetfsl(0); }
            return v;
        }
        """
        model, mb = doubler_design(extra_latency=6)
        sim = build_cosim(src, model, mb)
        result = sim.run()
        assert result.exit_code == 42

    def test_cosim_reset_reruns(self):
        model, mb = doubler_design()
        sim = build_cosim(ECHO_SUM_SRC, model, mb)
        first = sim.run()
        sim.reset()
        second = sim.run()
        assert first.exit_code == second.exit_code == 30
        assert first.cycles == second.cycles  # deterministic

    def test_result_metrics(self):
        model, mb = doubler_design()
        sim = build_cosim(ECHO_SUM_SRC, model, mb)
        result = sim.run()
        assert result.simulated_seconds == pytest.approx(result.cycles / 50e6)
        assert result.wall_seconds > 0
        assert result.cycles_per_wall_second > 0

    def test_resource_estimate_includes_links(self):
        model, mb = doubler_design()
        program = build_executable(ECHO_SUM_SRC)
        est = estimate_design(model=model, program=program,
                              n_fsl_links=mb.n_links)
        assert mb.n_links == 2
        assert est.fsl_links.slices == 48
        assert est.total.slices > 450  # includes the processor
        assert est.program_brams >= 1


class TestMicroBlazeBlock:
    def test_duplicate_channel_rejected(self):
        model = Model()
        mb = MicroBlazeBlock(model)
        mb.master_fsl(0)
        with pytest.raises(ValueError):
            mb.master_fsl(0)

    def test_channel_id_range(self):
        model = Model()
        mb = MicroBlazeBlock(model)
        with pytest.raises(ValueError):
            mb.master_fsl(8)

    def test_channel_objects_shared(self):
        model = Model()
        mb = MicroBlazeBlock(model)
        rd = mb.master_fsl(2)
        assert rd.channel is mb.to_hw_channel(2)
        assert mb.fsl_ports.outputs[2] is mb.to_hw_channel(2)
