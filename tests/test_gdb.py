"""Tests for the debugger and the RSP TCP link."""

import pytest

from repro.gdb import Debugger, GdbClient, GdbServer, StopReason
from repro.gdb.rsp import (
    RspError,
    decode_packet,
    encode_packet,
    extract_packets,
)
from repro.iss.run import make_cpu
from repro.mcc import build_executable

COUNT_SRC = """
int counter = 0;
int bump(int x) { counter += x; return counter; }
int main(void) {
    for (int i = 1; i <= 5; i++) bump(i);
    return counter;  /* 15 */
}
"""


def make_debugger():
    program = build_executable(COUNT_SRC)
    cpu = make_cpu(program)
    return Debugger(cpu, program), program


class TestRspFraming:
    def test_round_trip(self):
        pkt = encode_packet("m200,4")
        assert decode_packet(pkt) == "m200,4"

    def test_checksum_validation(self):
        pkt = bytearray(encode_packet("g"))
        pkt[-1] ^= 1
        with pytest.raises(RspError, match="checksum"):
            decode_packet(bytes(pkt))

    def test_extract_multiple(self):
        stream = encode_packet("a") + b"+" + encode_packet("bb") + b"$cc#"
        payloads, rest = extract_packets(stream)
        assert payloads == ["a", "bb"]
        assert rest == b"$cc#"  # incomplete remains buffered

    def test_garbage_resync(self):
        stream = b"junk" + encode_packet("ok")
        payloads, _ = extract_packets(stream)
        assert payloads == ["ok"]


class TestDebugger:
    def test_breakpoint_by_symbol(self):
        dbg, _ = make_debugger()
        dbg.set_breakpoint("bump")
        info = dbg.cont()
        assert info.reason is StopReason.BREAKPOINT
        assert info.pc == dbg.resolve("bump")

    def test_step_instruction(self):
        dbg, _ = make_debugger()
        start_pc = dbg.cpu.pc
        info = dbg.step_instruction()
        assert info.reason is StopReason.STEP
        assert dbg.cpu.stats.instructions == 1
        assert dbg.cpu.pc != start_pc

    def test_run_to_exit(self):
        dbg, _ = make_debugger()
        info = dbg.cont()
        assert info.reason is StopReason.EXITED
        assert info.exit_code == 15

    def test_register_patching(self):
        """The paper's key use: mb-gdb 'changes the status of the
        registers of the MicroBlaze processor based on the results from
        the customized hardware designs'."""
        dbg, _ = make_debugger()
        dbg.set_breakpoint("bump")
        dbg.cont()
        # patch the argument register (r5) before resuming
        dbg.write_register(5, 100)
        dbg.clear_breakpoint("bump")
        info = dbg.cont()
        assert info.reason is StopReason.EXITED
        assert info.exit_code == 100 + 2 + 3 + 4 + 5

    def test_memory_access(self):
        dbg, program = make_debugger()
        dbg.cont()
        addr = program.symbol("counter")
        assert int.from_bytes(dbg.read_memory(addr, 4), "big") == 15
        dbg.write_memory(addr, (99).to_bytes(4, "big"))
        assert dbg.read_word("counter") == 99

    def test_r0_not_writable(self):
        dbg, _ = make_debugger()
        dbg.write_register(0, 123)
        assert dbg.read_register(0) == 0

    def test_disassemble_at_pc(self):
        dbg, _ = make_debugger()
        listing = dbg.disassemble_at(count=4)
        assert "=>" in listing

    def test_where_reports_symbol(self):
        dbg, _ = make_debugger()
        dbg.set_breakpoint("bump")
        dbg.cont()
        assert "<bump" in dbg.where()


class TestTcpLink:
    def make_session(self):
        dbg, program = make_debugger()
        server = GdbServer(dbg)
        server.start()
        client = GdbClient(*server.address)
        return dbg, program, server, client

    def test_halt_reason(self):
        dbg, _, server, client = self.make_session()
        try:
            assert client.request("?") == "S05"
        finally:
            client.close()
            server.stop()

    def test_register_read_write(self):
        dbg, _, server, client = self.make_session()
        try:
            regs = client.read_registers()
            assert len(regs) == 33
            client.write_register(5, 0xDEAD)
            assert client.read_register(5) == 0xDEAD
            assert dbg.cpu.regs[5] == 0xDEAD
        finally:
            client.close()
            server.stop()

    def test_memory_round_trip(self):
        _, program, server, client = self.make_session()
        try:
            addr = program.symbol("counter")
            client.write_memory(addr, b"\x00\x00\x01\x02")
            assert client.read_memory(addr, 4) == b"\x00\x00\x01\x02"
        finally:
            client.close()
            server.stop()

    def test_breakpoint_continue_exit(self):
        _, program, server, client = self.make_session()
        try:
            client.set_breakpoint(program.symbol("bump"))
            assert client.cont() == "S05"  # stopped at breakpoint
            client.remove_breakpoint(program.symbol("bump"))
            reply = client.cont()
            assert reply == f"W{15:02x}"  # exited with code 15
        finally:
            client.close()
            server.stop()

    def test_step_over_tcp(self):
        dbg, _, server, client = self.make_session()
        try:
            assert client.step() == "S05"
            assert dbg.cpu.stats.instructions == 1
        finally:
            client.close()
            server.stop()

    def test_unsupported_packet_empty_reply(self):
        _, _, server, client = self.make_session()
        try:
            assert client.request("vMustReplyEmpty") == ""
        finally:
            client.close()
            server.stop()
