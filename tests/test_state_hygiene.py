"""State hygiene: ``reset()`` must return every stateful component to
exactly the state a freshly constructed twin reports.

The property compared is ``state_dict()`` equality — the same snapshot
checkpointing serializes — so any internal field a ``reset()``
implementation forgets to clear shows up here (instead of as a
miscompare between a re-run and a restored run three layers up).

Each component is perturbed by actually exercising it (clock edges with
nonzero inputs, pushes/pops, executed cycles), then by scribbling over
its ports directly, before ``reset()`` is called.
"""

from __future__ import annotations

import pytest

from repro.bus.fsl import FSLChannel
from repro.conformance.oracle import _make_sim
from repro.conformance.scenario import ScenarioGenerator, build_program
from repro.sysgen.blocks import (
    FIFO,
    RAM,
    ROM,
    Accumulator,
    Add,
    AddSub,
    Concat,
    Constant,
    Convert,
    Counter,
    Delay,
    FSLRead,
    FSLWrite,
    GatewayIn,
    GatewayOut,
    Inverter,
    Logical,
    Mult,
    Mux,
    Negate,
    OPBRegisterBank,
    Register,
    Relational,
    Shift,
    Slice,
    Sub,
)

@pytest.fixture(autouse=True)
def _engine(sysgen_engine):
    """Run every test here under both execution engines — the
    simulation-level tests build models whose reset path must be
    engine-independent; see conftest."""


#: one factory per exported sysgen block type, with enough non-default
#: construction parameters that internal pipelines/memories exist
BLOCK_FACTORIES = {
    "Add": lambda: Add("b", width=32, latency=2),
    "Sub": lambda: Sub("b", width=32, latency=1),
    "AddSub": lambda: AddSub("b", width=32, latency=2),
    "Mult": lambda: Mult("b", latency=3),
    "Negate": lambda: Negate("b", width=32, latency=1),
    "Shift": lambda: Shift("b", width=32, amount=3, direction="left",
                           latency=2),
    "Accumulator": lambda: Accumulator("b", width=32),
    "Convert": lambda: Convert("b", in_width=32, in_frac=8, out_width=16,
                               out_frac=4, latency=1),
    "Constant": lambda: Constant("b", value=0x5A5A, width=32),
    "Counter": lambda: Counter("b", width=16, step=3),
    "GatewayIn": lambda: GatewayIn("b", width=16, frac=4),
    "GatewayOut": lambda: GatewayOut("b", width=16, frac=4),
    "Mux": lambda: Mux("b", width=32, n=3),
    "Relational": lambda: Relational("b", width=32),
    "Logical": lambda: Logical("b", width=32, op="xor"),
    "Inverter": lambda: Inverter("b", width=8),
    "Slice": lambda: Slice("b", msb=15, lsb=4),
    "Concat": lambda: Concat("b", widths=[8, 8, 16]),
    "Register": lambda: Register("b", width=32, init=0x77),
    "Delay": lambda: Delay("b", width=32, n=3),
    "FIFO": lambda: FIFO("b", width=32, depth=4),
    "ROM": lambda: ROM("b", contents=[3, 1, 4, 1, 5, 9, 2, 6]),
    "RAM": lambda: RAM("b", depth=8, width=32),
    "FSLRead": lambda: _bound(FSLRead("b")),
    "FSLWrite": lambda: _bound(FSLWrite("b")),
    "OPBRegisterBank": lambda: OPBRegisterBank("b", n_command=2, n_status=2),
}


def _bound(block):
    channel = FSLChannel(depth=4, name="hygiene")
    channel.push(0xAB, False)
    block.bind(channel)
    return block


def _perturb(block) -> None:
    """Drive the block hard through its normal simulation hooks, then
    scribble over the output ports for good measure."""
    if isinstance(block, GatewayIn):
        block.drive_raw(0x3FF)
    for i, port in enumerate(block.inputs.values(), start=1):
        # unconnected inputs read their default — perturb through it
        # (odd values so 1-bit strobes like ``write`` actually assert)
        port.default = ((0x9E3779B1 * i) | 1) & 0xFFFFFFFF
    for _ in range(5):
        block.present()
        block.evaluate()
        block.clock()
    for i, port in enumerate(block.outputs.values(), start=1):
        port.value = ((0xDEADBEEF ^ i) | 1) & ((1 << port.width) - 1)


@pytest.mark.parametrize("kind", sorted(BLOCK_FACTORIES))
def test_block_reset_matches_fresh(kind):
    factory = BLOCK_FACTORIES[kind]
    fresh = factory()
    used = factory()
    _perturb(used)
    assert used.state_dict() != fresh.state_dict() or not used.sequential, (
        f"{kind}: perturbation did not change sequential state — "
        "the test would pass vacuously")
    used.reset()
    assert used.state_dict() == fresh.state_dict(), (
        f"{kind}.reset() left state behind")


def test_fsl_channel_reset_matches_fresh():
    fresh = FSLChannel(depth=4, name="ch")
    used = FSLChannel(depth=4, name="ch")
    used.push(1, False)
    used.push(2, True)
    used.pop()
    used.push(3, False)
    used.push(4, False)
    used.push(5, False)  # rejected: full
    assert used.state_dict() != fresh.state_dict()
    used.reset(reset_stats=True)
    assert used.state_dict() == fresh.state_dict()


def _without_bram(sim_or_cpu_state: dict) -> dict:
    """Drop BRAM contents from a cpu/sim state dict.

    ``reset()`` does not (and must not) erase data memory — a re-run's
    program deterministically rewrites every location it uses, which is
    what the ``reset_rerun`` conformance mode verifies.  Stale stack or
    BSS bytes from the interrupted run are therefore expected; all
    *architectural* state must still match a fresh twin exactly.
    """
    state = dict(sim_or_cpu_state)
    cpu = dict(state["cpu"]) if "cpu" in state else state
    mem = dict(cpu["mem"])
    del mem["bram"]
    cpu["mem"] = mem
    if "cpu" in state:
        state["cpu"] = cpu
        return state
    return cpu


def test_cpu_reset_matches_fresh():
    """A CPU that executed a real co-simulated program and is then
    reset (the way ``CoSimulation.reset`` does it: architectural reset
    + program image reload) reports the state of a never-run twin."""
    scenario = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(0)
    program = build_program(scenario)
    fresh_sim, _t1 = _make_sim(scenario, program, fast_forward=False)
    used_sim, _t2 = _make_sim(scenario, program, fast_forward=False)
    used_sim.run(until=200)
    assert used_sim.cpu.state_dict() != fresh_sim.cpu.state_dict()
    used_sim.cpu.reset(pc=program.entry)
    program.load_into(used_sim.cpu.mem.bram)
    assert (_without_bram({"cpu": used_sim.cpu.state_dict()})
            == _without_bram({"cpu": fresh_sim.cpu.state_dict()}))
    # the program image region itself must be restored verbatim
    image = program.image
    base = getattr(program, "base", 0)
    assert used_sim.cpu.mem.bram.dump()[base:base + len(image)] == image


def test_full_sim_reset_matches_fresh():
    """The composite: ``CoSimulation.reset()`` restores the *entire*
    simulation state dict (modulo data-memory contents, see above)."""
    scenario = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(1)
    program = build_program(scenario)
    fresh_sim, _t1 = _make_sim(scenario, program, fast_forward=False)
    used_sim, _t2 = _make_sim(scenario, program, fast_forward=False)
    used_sim.run(until=300)
    used_sim.reset()
    assert (_without_bram(used_sim.state_dict())
            == _without_bram(fresh_sim.state_dict()))


# ----------------------------------------------------------------------
# K-CPU systems: reset must be per-CPU clean
# ----------------------------------------------------------------------
def _without_bram_multi(state: dict) -> dict:
    """The multi-CPU face of :func:`_without_bram`: drop every node's
    data-memory contents, keep all other state verbatim."""
    state = dict(state)
    state["cpus"] = {name: _without_bram({"cpu": cpu_state})["cpu"]
                     for name, cpu_state in state["cpus"].items()}
    return state


def _multi_sim(index: int = 0, seed: int = 5):
    from repro.conformance.multicpu import (
        MultiScenarioGenerator,
        build_multi_sim,
    )

    scenario = MultiScenarioGenerator(seed=seed).scenario(index)
    sim, _trace = build_multi_sim(scenario, fast_forward=False)
    return sim


def test_multicpu_reset_matches_fresh():
    """``MultiCoSimulation.reset()`` restores the whole-system state
    dict — global clock, every CPU, every link, every node-local
    peripheral — to a freshly built twin's (modulo data memory)."""
    fresh = _multi_sim()
    used = _multi_sim()
    used.run(until=400)
    assert used.state_dict() != fresh.state_dict()
    used.reset()
    assert (_without_bram_multi(used.state_dict())
            == _without_bram_multi(fresh.state_dict()))


def test_multicpu_reset_clears_fsl_error_per_cpu():
    """Each CPU's sticky ``fsl.error`` and its FSL statistics clear
    independently on reset — an error flagged on one node must not
    survive anywhere, and the other nodes' stats must not be disturbed
    before the reset."""
    fresh = _multi_sim(index=1)
    used = _multi_sim(index=1)
    used.run(until=200)
    # flag an error on exactly one CPU and scribble its link stats
    victim, bystander = used.nodes[0], used.nodes[1]
    victim.cpu.fsl.error = True
    assert not bystander.cpu.fsl.error, (
        "perturbation leaked across CPUs — each node must own its "
        "FSL error flag")
    for channel in used.all_channels():
        channel.push(0xBAD, True)
    used.reset()
    for node in used.nodes:
        assert not node.cpu.fsl.error, f"{node.name}: fsl.error survived"
    for channel in used.all_channels():
        assert channel.occupancy == 0
        stats = channel.state_dict().get("stats")
        if stats is not None:
            assert not any(stats.values()), (
                f"{channel.name}: statistics survived reset")
    assert (_without_bram_multi(used.state_dict())
            == _without_bram_multi(fresh.state_dict()))
