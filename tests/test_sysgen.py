"""Tests for the System Generator-style block modeling framework."""

import pytest

from repro.bus.fsl import FSLChannel
from repro.fixedpoint import Overflow, Rounding
from repro.sysgen import Model, ModelError
from repro.sysgen.blocks import (
    FIFO,
    RAM,
    ROM,
    Accumulator,
    Add,
    AddSub,
    Concat,
    Constant,
    Convert,
    Counter,
    Delay,
    FSLRead,
    FSLWrite,
    GatewayIn,
    GatewayOut,
    Inverter,
    Logical,
    Mult,
    Mux,
    Negate,
    Register,
    Relational,
    Shift,
    Slice,
    Sub,
)


@pytest.fixture(autouse=True)
def _engine(sysgen_engine):
    """Run every test in this module under both execution engines
    (compiled schedule and per-cycle interpreter) — see conftest."""


def single_block_model(block, in_map, out_port="out"):
    """Drive a block's inputs with constants; settle; read one output."""
    m = Model("t")
    m.add(block)
    for port, value in in_map.items():
        c = m.add(Constant(f"c_{port}", value, width=64))
        m.connect(c.o("out"), block.i(port))
    m.settle()
    return block.out_value(out_port)


class TestCombBlocks:
    def test_add_wraps(self):
        b = Add("a", width=8)
        assert single_block_model(b, {"a": 200, "b": 100}, "s") == (300) & 0xFF

    def test_sub(self):
        b = Sub("s", width=16)
        assert single_block_model(b, {"a": 5, "b": 9}, "d") == (5 - 9) & 0xFFFF

    def test_addsub_modes(self):
        b = AddSub("x", width=16)
        assert single_block_model(b, {"a": 10, "b": 3, "sub": 1}, "s") == 7
        b2 = AddSub("y", width=16)
        assert single_block_model(b2, {"a": 10, "b": 3, "sub": 0}, "s") == 13

    def test_mult_signed(self):
        b = Mult("m", width_a=16, width_b=16, latency=0)
        neg3 = (-3) & 0xFFFF
        assert single_block_model(b, {"a": neg3, "b": 7}, "p") == (-21) & 0xFFFFFFFF

    def test_negate(self):
        b = Negate("n", width=8)
        assert single_block_model(b, {"a": 1}, "n") == 0xFF

    def test_shift_arith_right(self):
        b = Shift("sh", width=8, amount=2, direction="right", arithmetic=True)
        assert single_block_model(b, {"a": 0xF0}, "s") == 0xFC  # -16>>2 = -4

    def test_shift_logical_right(self):
        b = Shift("sh", width=8, amount=2, direction="right", arithmetic=False)
        assert single_block_model(b, {"a": 0xF0}, "s") == 0x3C

    def test_shift_left(self):
        b = Shift("sh", width=8, amount=3, direction="left")
        assert single_block_model(b, {"a": 3}, "s") == 24

    def test_mux(self):
        b = Mux("m", width=8, n=3)
        assert single_block_model(b, {"sel": 2, "d0": 5, "d1": 6, "d2": 7}) == 7

    def test_mux_out_of_range_sel_wraps(self):
        # non-power-of-two fan-in: sel wraps modulo n (5 % 3 == 2)
        b = Mux("m", width=8, n=3)
        assert single_block_model(b, {"sel": 5, "d0": 5, "d1": 6, "d2": 7}) == 7

    def test_mux_out_of_range_sel_wraps_pow2(self):
        # power-of-two fan-in takes the masked path: 6 & 3 == 6 % 4 == 2
        b = Mux("m", width=8, n=4)
        assert single_block_model(
            b, {"sel": 6, "d0": 1, "d1": 2, "d2": 3, "d3": 4}) == 3

    def test_mux_unconnected_sel_default_wraps(self):
        # an unconnected sel reads its default — folded to a literal by
        # the compiled engine, so the wrap must happen at codegen too
        b = Mux("m", width=8, n=3)
        b.inputs["sel"].default = 5
        assert single_block_model(b, {"d0": 5, "d1": 6, "d2": 7}) == 7

    def test_relational_signed(self):
        b = Relational("r", width=8, op="lt", signed=True)
        assert single_block_model(b, {"a": 0xFF, "b": 1}) == 1  # -1 < 1

    def test_relational_unsigned(self):
        b = Relational("r", width=8, op="lt", signed=False)
        assert single_block_model(b, {"a": 0xFF, "b": 1}) == 0  # 255 !< 1

    @pytest.mark.parametrize("op,expected", [
        ("and", 0x30), ("or", 0xFC), ("xor", 0xCC),
        ("nand", 0xFFCF), ("nor", 0xFF03), ("xnor", 0xFF33),
    ])
    def test_logical_ops(self, op, expected):
        b = Logical("l", width=16, op=op)
        assert single_block_model(b, {"d0": 0xF0, "d1": 0x3C}) == expected

    def test_inverter(self):
        b = Inverter("i", width=4)
        assert single_block_model(b, {"a": 0b1010}) == 0b0101

    def test_slice(self):
        b = Slice("s", msb=7, lsb=4)
        assert single_block_model(b, {"a": 0xAB}) == 0xA

    def test_slice_reversed_range_rejected(self):
        with pytest.raises(ModelError, match="msb >= lsb"):
            Slice("s", msb=3, lsb=7)

    def test_slice_negative_lsb_rejected(self):
        with pytest.raises(ModelError, match="msb >= lsb"):
            Slice("s", msb=3, lsb=-1)

    def test_concat(self):
        b = Concat("c", widths=[4, 8])
        assert single_block_model(b, {"d0": 0xA, "d1": 0xBC}) == 0xABC

    def test_convert_round_and_saturate(self):
        b = Convert("cv", in_width=16, in_frac=8, out_width=8, out_frac=4,
                    rounding=Rounding.ROUND, overflow=Overflow.SATURATE)
        # 1.5 in Fix16_8 is 0x0180; converts to 0x18 in Fix8_4
        assert single_block_model(b, {"in": 0x0180}) == 0x18
        # large value saturates to max positive 0x7F
        b2 = Convert("cv2", in_width=16, in_frac=8, out_width=8, out_frac=4,
                     overflow=Overflow.SATURATE)
        assert single_block_model(b2, {"in": 0x7F00}) == 0x7F

    def test_rom(self):
        b = ROM("r", contents=[10, 20, 30], width=8)
        assert single_block_model(b, {"addr": 1}, "data") == 20

    def test_rom_addr_wraps(self):
        # out-of-range address wraps modulo the (non-power-of-two)
        # table size: 7 % 3 == 1
        b = ROM("r", contents=[10, 20, 30], width=8)
        assert single_block_model(b, {"addr": 7}, "data") == 20


class TestSeqBlocks:
    def test_register_delays_one_cycle(self):
        m = Model()
        g = m.add(GatewayIn("g", width=8))
        r = m.add(Register("r", width=8))
        m.connect(g.o("out"), r.i("d"))
        g.drive(5)
        m.step()
        assert r.out_value("q") == 0  # old state visible during cycle 0
        m.step()
        assert r.out_value("q") == 5

    def test_register_enable(self):
        m = Model()
        g = m.add(GatewayIn("g", width=8))
        en = m.add(GatewayIn("en", width=1))
        r = m.add(Register("r", width=8))
        m.connect(g.o("out"), r.i("d"))
        m.connect(en.o("out"), r.i("en"))
        g.drive(9)
        en.drive(0)
        m.step()
        m.step()
        assert r.out_value("q") == 0  # never latched
        en.drive(1)
        m.step()
        m.step()
        assert r.out_value("q") == 9

    def test_delay_line(self):
        m = Model()
        g = m.add(GatewayIn("g", width=8))
        d = m.add(Delay("d", width=8, n=3))
        out = m.add(GatewayOut("o", width=8))
        m.connect(g.o("out"), d.i("d"))
        m.connect(d.o("q"), out.i("in"))
        seen = []
        for v in [1, 2, 3, 4, 5, 6]:
            g.drive(v)
            m.step()
            seen.append(out.raw)
        assert seen == [0, 0, 0, 1, 2, 3]

    def test_counter(self):
        m = Model()
        c = m.add(Counter("c", width=4))
        values = []
        for _ in range(18):
            m.step()
            values.append(c.out_value("q"))
        assert values[:5] == [0, 1, 2, 3, 4]
        assert values[16] == 0  # wrapped at 16

    def test_accumulator(self):
        m = Model()
        g = m.add(GatewayIn("g", width=16))
        acc = m.add(Accumulator("a", width=16))
        m.connect(g.o("out"), acc.i("d"))
        for v in [5, 10, 20]:
            g.drive(v)
            m.step()
        m.settle()
        assert acc.out_value("q") == 35

    def test_mult_latency_three(self):
        m = Model()
        ga = m.add(GatewayIn("a", width=16))
        gb = m.add(GatewayIn("b", width=16))
        mult = m.add(Mult("m", 16, 16, latency=3))
        m.connect(ga.o("out"), mult.i("a"))
        m.connect(gb.o("out"), mult.i("b"))
        ga.drive(6)
        gb.drive(7)
        outs = []
        for _ in range(5):
            m.step()
            outs.append(mult.out_value("p"))
        # product appears on the 4th present (3 pipeline stages)
        assert outs[:3] == [0, 0, 0]
        assert outs[3] == 42

    def test_fifo_flow(self):
        m = Model()
        din = m.add(GatewayIn("din", width=8))
        push = m.add(GatewayIn("push", width=1))
        pop = m.add(GatewayIn("pop", width=1))
        f = m.add(FIFO("f", width=8, depth=2))
        m.connect(din.o("out"), f.i("din"))
        m.connect(push.o("out"), f.i("push"))
        m.connect(pop.o("out"), f.i("pop"))
        m.settle()
        assert f.out_value("empty") == 1
        din.drive(11)
        push.drive(1)
        m.step()
        din.drive(22)
        m.step()
        push.drive(0)
        m.step()
        assert f.out_value("dout") == 11
        assert f.out_value("full") == 1
        pop.drive(1)
        m.step()
        pop.drive(0)
        m.settle()  # new head visible at the next cycle's present
        assert f.out_value("dout") == 22

    def test_ram_sync_read(self):
        m = Model()
        addr = m.add(GatewayIn("addr", width=4))
        din = m.add(GatewayIn("din", width=8))
        we = m.add(GatewayIn("we", width=1))
        ram = m.add(RAM("ram", depth=16, width=8))
        m.connect(addr.o("out"), ram.i("addr"))
        m.connect(din.o("out"), ram.i("din"))
        m.connect(we.o("out"), ram.i("we"))
        addr.drive(3)
        din.drive(99)
        we.drive(1)
        m.step()
        we.drive(0)
        m.step()  # read registered
        assert ram.out_value("dout") == 99


class TestModel:
    def test_comb_loop_rejected(self):
        m = Model()
        a = m.add(Add("a", width=8))
        b = m.add(Add("b", width=8))
        m.connect(a.o("s"), b.i("a"))
        m.connect(b.o("s"), a.i("a"))
        with pytest.raises(ModelError, match="combinational loop"):
            m.compile()

    def test_loop_through_register_ok(self):
        m = Model()
        a = m.add(Add("a", width=8))
        r = m.add(Register("r", width=8))
        one = m.add(Constant("one", 1, width=8))
        m.connect(one.o("out"), a.i("a"))
        m.connect(r.o("q"), a.i("b"))
        m.connect(a.o("s"), r.i("d"))
        m.step(5)
        assert a.out_value("s") == 5  # counts up 1 per cycle

    def test_duplicate_block_name(self):
        m = Model()
        m.add(Add("x"))
        with pytest.raises(ModelError):
            m.add(Sub("x"))

    def test_double_drive_rejected(self):
        m = Model()
        a = m.add(Constant("a", 1))
        b = m.add(Constant("b", 2))
        add = m.add(Add("add"))
        m.connect(a.o("out"), add.i("a"))
        with pytest.raises(ModelError, match="already driven"):
            m.connect(b.o("out"), add.i("a"))

    def test_failed_multi_connect_leaves_model_unchanged(self):
        # a bad target anywhere in the list must not wire *any* target
        # (the historical bug wired the earlier ones before raising)
        m = Model()
        c = m.add(Constant("c", 3, width=8))
        d = m.add(Constant("d", 4, width=8))
        a1 = m.add(Add("a1", width=8))
        a2 = m.add(Add("a2", width=8))
        m.connect(d.o("out"), a2.i("b"))
        n_wires = len(m.connections)
        with pytest.raises(ModelError, match="already driven"):
            m.connect(c.o("out"), a1.i("a"), a1.i("b"), a2.i("b"))
        assert len(m.connections) == n_wires
        assert a1.i("a").port.source is None
        assert a1.i("b").port.source is None
        m.settle()
        assert a1.out_value("s") == 0  # both inputs still at defaults
        assert a2.out_value("s") == 4

    def test_duplicate_target_in_one_connect(self):
        m = Model()
        c = m.add(Constant("c", 1, width=8))
        a = m.add(Add("a", width=8))
        with pytest.raises(ModelError, match="already driven"):
            m.connect(c.o("out"), a.i("a"), a.i("a"))
        assert a.i("a").port.source is None

    def test_connect_after_run_recompiles(self):
        # wiring after a step invalidates the schedule (and any
        # generated code), so the new edge takes effect
        m = Model()
        c = m.add(Constant("c", 7, width=8))
        a = m.add(Add("a", width=8))
        m.step()
        assert a.out_value("s") == 0
        m.connect(c.o("out"), a.i("a"))
        m.settle()
        assert a.out_value("s") == 7

    def test_probe_records(self):
        m = Model()
        c = m.add(Counter("c", width=8))
        p = m.probe(c.o("q"))
        m.step(4)
        assert p.samples == [0, 1, 2, 3]

    def test_fanout(self):
        m = Model()
        c = m.add(Constant("c", 3, width=8))
        a1 = m.add(Add("a1", width=8))
        a2 = m.add(Add("a2", width=8))
        m.connect(c.o("out"), a1.i("a"), a1.i("b"), a2.i("a"), a2.i("b"))
        m.settle()
        assert a1.out_value("s") == 6
        assert a2.out_value("s") == 6

    def test_reset(self):
        m = Model()
        c = m.add(Counter("c", width=8))
        m.step(5)
        m.reset()
        m.settle()
        assert c.out_value("q") == 0
        assert m.cycle == 0

    def test_resources_aggregate(self):
        m = Model()
        m.add(Add("a", width=32))
        m.add(Register("r", width=32))
        m.add(Mult("m", 18, 18))
        total = m.resources()
        assert total.slices >= 32  # 16 + 16 + mult pipeline registers
        assert total.mult18 == 1


class TestGateways:
    def test_gateway_quantization(self):
        m = Model()
        g = m.add(GatewayIn("g", width=16, frac=8))
        out = m.add(GatewayOut("o", width=16, frac=8))
        m.connect(g.o("out"), out.i("in"))
        g.drive(1.5)
        m.settle()
        assert out.raw == 0x0180
        assert out.value == 1.5

    def test_gateway_saturation(self):
        m = Model()
        g = m.add(GatewayIn("g", width=8, frac=0))
        out = m.add(GatewayOut("o", width=8))
        m.connect(g.o("out"), out.i("in"))
        g.drive(1000)  # > 127 saturates
        m.settle()
        assert out.signed_int == 127

    def test_gateway_negative(self):
        m = Model()
        g = m.add(GatewayIn("g", width=16))
        out = m.add(GatewayOut("o", width=16))
        m.connect(g.o("out"), out.i("in"))
        g.drive(-42)
        m.settle()
        assert out.signed_int == -42


class TestFSLBlocks:
    def test_fsl_read_presents_and_pops(self):
        m = Model()
        rd = m.add(FSLRead("rd"))
        read_en = m.add(GatewayIn("ren", width=1))
        m.connect(read_en.o("out"), rd.i("read"))
        ch = FSLChannel(name="cpu_to_hw")
        rd.bind(ch)
        ch.push(77, control=True)
        read_en.drive(0)
        m.step()
        assert rd.out_value("exists") == 1
        assert rd.out_value("data") == 77
        assert rd.out_value("control") == 1
        assert len(ch) == 1  # not consumed without read strobe
        read_en.drive(1)
        m.step()
        assert len(ch) == 0
        m.step()
        assert rd.out_value("exists") == 0

    def test_fsl_write_pushes(self):
        m = Model()
        wr = m.add(FSLWrite("wr"))
        data = m.add(GatewayIn("d", width=32))
        wen = m.add(GatewayIn("w", width=1))
        m.connect(data.o("out"), wr.i("data"))
        m.connect(wen.o("out"), wr.i("write"))
        ch = FSLChannel(name="hw_to_cpu")
        wr.bind(ch)
        data.drive(123)
        wen.drive(1)
        m.step()
        assert len(ch) == 1
        assert ch.pop().data == 123

    def test_fsl_write_full_flag(self):
        m = Model()
        wr = m.add(FSLWrite("wr"))
        wen = m.add(GatewayIn("w", width=1))
        m.connect(wen.o("out"), wr.i("write"))
        ch = FSLChannel(depth=1)
        wr.bind(ch)
        ch.push(1)
        wen.drive(0)
        m.step()
        assert wr.out_value("full") == 1
        wen.drive(1)
        m.step()
        assert wr.dropped == 1

    def test_unbound_channel_raises(self):
        m = Model()
        m.add(FSLRead("rd"))
        with pytest.raises(Exception, match="no bound channel"):
            m.step()
