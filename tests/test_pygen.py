"""Tests for the PyGen-style parameterized generator framework."""

import pytest

from repro.pygen import Parameter, ParameterError, ParameterSpace


def space():
    return ParameterSpace(
        parameters=[
            Parameter("P", default=4, minimum=1, maximum=16),
            Parameter("MODE", default="fast", choices=("fast", "small")),
            Parameter("ITERS", default=24, minimum=1),
        ],
        constraints=[
            lambda b: None if b["ITERS"] % b["P"] == 0
            else f"ITERS={b['ITERS']} not divisible by P={b['P']}",
        ],
    )


class TestParameter:
    def test_range_check(self):
        p = Parameter("x", minimum=1, maximum=4)
        p.check(2)
        with pytest.raises(ParameterError):
            p.check(0)
        with pytest.raises(ParameterError):
            p.check(5)

    def test_choices(self):
        p = Parameter("m", choices=("a", "b"))
        p.check("a")
        with pytest.raises(ParameterError):
            p.check("c")


class TestParameterSpace:
    def test_defaults_applied(self):
        binding = space().bind()
        assert binding == {"P": 4, "MODE": "fast", "ITERS": 24}

    def test_override(self):
        assert space().bind(P=8)["P"] == 8

    def test_unknown_rejected(self):
        with pytest.raises(ParameterError, match="unknown"):
            space().bind(WAT=1)

    def test_constraint_enforced(self):
        with pytest.raises(ParameterError, match="divisible"):
            space().bind(P=5)

    def test_required_parameter(self):
        s = ParameterSpace(parameters=[Parameter("REQ")])
        with pytest.raises(ParameterError, match="required"):
            s.bind()

    def test_sweep_cartesian(self):
        bindings = space().sweep(P=[2, 4], MODE=["fast", "small"])
        assert len(bindings) == 4
        assert {b["P"] for b in bindings} == {2, 4}

    def test_sweep_skips_constraint_violations(self):
        bindings = space().sweep(P=[2, 5])  # ITERS=24: P=5 invalid
        assert [b["P"] for b in bindings] == [2]

    def test_names(self):
        assert space().names() == ["P", "MODE", "ITERS"]
