"""Tests for the generic VCD writer core (repro.rtl.vcd.VCDFile).

The RTL waveform dump and the co-simulation telemetry exporter both
sit on this layer, so its header format, identifier allocation and
dedup/clamping rules are load-bearing for two subsystems.
"""

import io

import pytest

from repro.rtl.kernel import Kernel
from repro.rtl.vcd import VCDFile, VCDWriter, _identifier


class TestIdentifierAllocation:
    def test_first_identifiers_are_printable_singletons(self):
        assert _identifier(0) == "!"
        assert _identifier(1) == '"'
        assert _identifier(93) == "~"

    def test_rolls_over_to_two_characters(self):
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2
        assert _identifier(94) == "!!"

    def test_identifiers_are_unique(self):
        idents = [_identifier(i) for i in range(500)]
        assert len(set(idents)) == 500

    def test_add_var_assigns_sequential_identifiers(self):
        f = VCDFile(io.StringIO())
        assert f.add_var("a") == "!"
        assert f.add_var("b") == '"'
        assert f.add_var("c") == "#"


class TestHeader:
    def test_timescale_and_structure(self):
        out = io.StringIO()
        f = VCDFile(out, timescale="20 ns", scope="cosim", date="unit test")
        f.add_var("clk")
        f.add_var("counter", 8, initial=3)
        f.begin()
        text = out.getvalue()
        assert "$timescale 20 ns $end" in text
        assert "$scope module cosim $end" in text
        assert "$date unit test $end" in text
        assert "$var wire 1 ! clk $end" in text
        assert '$var wire 8 " counter $end' in text
        assert "$enddefinitions $end" in text
        # initial values dumped: scalar format for 1-bit, binary for wide
        assert "0!" in text
        assert 'b11 "' in text

    def test_spaces_in_names_are_sanitized(self):
        out = io.StringIO()
        f = VCDFile(out)
        f.add_var("my signal")
        f.begin()
        assert "my_signal" in out.getvalue()

    def test_add_var_after_begin_is_an_error(self):
        f = VCDFile(io.StringIO())
        f.add_var("a")
        f.begin()
        with pytest.raises(RuntimeError):
            f.add_var("b")

    def test_begin_is_idempotent(self):
        out = io.StringIO()
        f = VCDFile(out)
        f.add_var("a")
        f.begin()
        first = out.getvalue()
        f.begin()
        assert out.getvalue() == first


class TestChanges:
    def make(self):
        out = io.StringIO()
        f = VCDFile(out)
        scalar = f.add_var("flag")
        wide = f.add_var("word", 32)
        f.begin()
        return out, f, scalar, wide

    def body(self, out):
        """Everything after the initial $dumpvars block."""
        return out.getvalue().split("$end\n")[-1]

    def test_change_emits_time_and_value(self):
        out, f, scalar, _ = self.make()
        f.change(5, scalar, 1)
        assert self.body(out) == "#5\n1!\n"

    def test_redundant_changes_are_deduped(self):
        out, f, scalar, _ = self.make()
        f.change(5, scalar, 1)
        f.change(6, scalar, 1)  # same value: dropped entirely
        f.change(7, scalar, 0)
        body = self.body(out)
        assert body.count("1!") == 1
        assert "#6" not in body
        assert "#7\n0!" in body

    def test_initial_value_is_deduped_too(self):
        out, f, scalar, _ = self.make()
        f.change(5, scalar, 0)  # equals the initial dump
        assert self.body(out) == ""

    def test_wide_signals_use_binary_format(self):
        out, f, _, wide = self.make()
        f.change(3, wide, 0xAB)
        assert "b10101011 \"" in self.body(out)

    def test_same_time_changes_share_one_timestamp(self):
        out, f, scalar, wide = self.make()
        f.change(4, scalar, 1)
        f.change(4, wide, 7)
        assert self.body(out).count("#4") == 1

    def test_out_of_order_time_is_clamped(self):
        out, f, scalar, wide = self.make()
        f.change(10, scalar, 1)
        f.change(4, wide, 9)  # earlier than the last emitted time
        body = self.body(out)
        assert "#4" not in body  # clamped to #10
        assert body.count("#10") == 1
        assert 'b1001 "' in body


class TestRTLWriter:
    def test_close_unhooks_the_kernel(self):
        k = Kernel()
        clk = k.add_clock("clk", 10)
        writer = VCDWriter(k, io.StringIO(), signals=[clk])
        assert k._trace_hook is not None
        writer.close()
        assert k._trace_hook is None

    def test_untraced_signals_are_ignored(self):
        k = Kernel()
        clk = k.add_clock("clk", 10)
        k.add_clock("clk2", 6)
        out = io.StringIO()
        writer = VCDWriter(k, out, signals=[clk])
        k.run(25)
        writer.close()
        text = out.getvalue()
        assert "clk2" not in text
        assert "#5" in text and "#15" in text
