"""Sweep-engine robustness features: seeded retry backoff, the resume
journal, and the pluggable ``evaluate`` hook they ride on."""

from __future__ import annotations

import json

import pytest

from repro.cli import dse_main
from repro.cosim.dse import STATUS_OK
from repro.cosim.partition import DesignSpec
from repro.cosim.sweep import (
    SweepJournal,
    retry_backoff_delay,
    sweep,
    sweep_spec_id,
)

CALLS: list[str] = []


def _ok_evaluate(point, cache_dir, timeout_s, telemetry=False):
    """Module-level evaluate hook (picklable, like the real ones)."""
    CALLS.append(point.name)
    return {
        "status": STATUS_OK,
        "error": None,
        "result": None,
        "estimate": None,
        "fingerprint": None,
        "cache_hit": False,
        "metrics": {"name": point.name, "x": point.params["x"] * 10},
    }


def _specs(n=3):
    return [DesignSpec(name=f"p{i}", factory="unused:unused",
                       params={"x": i}) for i in range(n)]


# ----------------------------------------------------------------------
# backoff


def test_backoff_is_deterministic_and_jittered():
    d1 = retry_backoff_delay(0.5, "pt", 1, seed=0)
    assert d1 == retry_backoff_delay(0.5, "pt", 1, seed=0)
    assert 0.25 <= d1 < 0.75  # base * 2**0 * [0.5, 1.5)
    d2 = retry_backoff_delay(0.5, "pt", 2, seed=0)
    assert 0.5 <= d2 < 1.5    # base * 2**1 * [0.5, 1.5)
    assert retry_backoff_delay(0.5, "pt", 1, seed=1) != d1
    assert retry_backoff_delay(0.5, "other", 1, seed=0) != d1


def test_backoff_zero_base_is_free():
    assert retry_backoff_delay(0.0, "pt", 3) == 0.0
    assert retry_backoff_delay(-1.0, "pt", 1) == 0.0


# ----------------------------------------------------------------------
# spec identity


def test_spec_id_tracks_points_and_order():
    a, b = _specs(2)
    assert sweep_spec_id([a, b]) == sweep_spec_id([a, b])
    assert sweep_spec_id([a, b]) != sweep_spec_id([b, a])
    assert sweep_spec_id([a]) != sweep_spec_id([a, b])


# ----------------------------------------------------------------------
# journal


def test_journal_round_trip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = SweepJournal(path)
    journal.open("spec-1", total=3)
    journal.record(0, attempts=1, backoff_s=[],
                   payload={"status": STATUS_OK, "error": None,
                            "result": None, "estimate": None,
                            "fingerprint": None, "cache_hit": False,
                            "metrics": {"i": 0}})
    journal.close()
    loaded = SweepJournal(path).load("spec-1", total=3)
    assert set(loaded) == {0}
    assert loaded[0]["payload"]["metrics"] == {"i": 0}


def test_journal_rejects_foreign_spec(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = SweepJournal(path)
    journal.open("spec-1", total=3)
    journal.close()
    with pytest.raises(ValueError, match="journal"):
        SweepJournal(path).load("spec-2", total=3)


def test_journal_drops_truncated_tail(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = SweepJournal(str(path))
    journal.open("spec-1", total=3)
    journal.record(0, attempts=1, backoff_s=[],
                   payload={"status": STATUS_OK, "error": None,
                            "result": None, "estimate": None,
                            "fingerprint": None, "cache_hit": False,
                            "metrics": None})
    journal.close()
    path.write_text(path.read_text() + '{"index": 1, "att')  # torn write
    loaded = SweepJournal(str(path)).load("spec-1", total=3)
    assert set(loaded) == {0}


# ----------------------------------------------------------------------
# sweep + journal + evaluate hook integration


def test_sweep_resume_skips_completed_points(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    specs = _specs(3)
    CALLS.clear()
    first = sweep(specs, journal=journal, evaluate=_ok_evaluate)
    assert CALLS == ["p0", "p1", "p2"]
    assert [r.metrics["x"] for r in first.results] == [0, 10, 20]

    CALLS.clear()
    resumed = sweep(specs, journal=journal, resume=True,
                    evaluate=_ok_evaluate)
    assert CALLS == []  # every point replayed from the journal
    assert ([r.metrics for r in resumed.results]
            == [r.metrics for r in first.results])


def test_sweep_without_resume_restarts_journal(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    specs = _specs(2)
    sweep(specs, journal=journal, evaluate=_ok_evaluate)
    CALLS.clear()
    sweep(specs, journal=journal, evaluate=_ok_evaluate)
    assert CALLS == ["p0", "p1"]  # stale journal discarded, all re-run


def test_sweep_resume_with_changed_specs_fails_loudly(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    sweep(_specs(3), journal=journal, evaluate=_ok_evaluate)
    with pytest.raises(ValueError, match="journal"):
        sweep(_specs(2), journal=journal, resume=True,
              evaluate=_ok_evaluate)


def test_dse_result_records_backoff_schedule():
    fails: dict[str, int] = {}

    def flaky(point, cache_dir, timeout_s, telemetry=False):
        n = fails.get(point.name, 0)
        fails[point.name] = n + 1
        if n == 0:  # evaluate hooks report failures as statuses
            return {"status": "error", "error": "transient",
                    "result": None, "estimate": None, "fingerprint": None,
                    "cache_hit": False, "metrics": None}
        return _ok_evaluate(point, cache_dir, timeout_s, telemetry)

    report = sweep(_specs(1), retries=1, retry_backoff_s=0.001,
                   evaluate=flaky)
    result = report.results[0]
    assert result.status == STATUS_OK
    assert result.attempts == 2
    assert len(result.backoff_s) == 1
    assert 0.0005 <= result.backoff_s[0] < 0.0015
    assert "backoff_s" in result.to_dict()


# ----------------------------------------------------------------------
# CLI


def test_dse_resume_requires_journal(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(
        {"points": [{"name": "x", "factory": "m:f", "params": {}}]}))
    rc = dse_main([str(spec), "--resume"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "--resume needs --journal" in captured.err
    assert "Traceback" not in captured.err
