"""Property-based tests for the RTL netlist construction idioms:
random-value equivalence of the LUT/MUXCY structures against Python
arithmetic."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.rtl.kernel import Kernel
from repro.rtl.netlist import Netlist

u8 = st.integers(min_value=0, max_value=255)
s8 = st.integers(min_value=-128, max_value=127)


def make():
    k = Kernel()
    return k, Netlist(k, "t")


def drive(k, bus, value):
    for i, bit in enumerate(bus):
        k.schedule(bit, (value >> i) & 1)


def read(bus):
    return sum((bit.value & 1) << i for i, bit in enumerate(bus))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=u8, b=u8)
def test_prop_ripple_adder(a, b):
    k, nl = make()
    ba, bb = nl.bus("a", 8), nl.bus("b", 8)
    s = nl.adder(ba, bb)
    drive(k, ba, a)
    drive(k, bb, b)
    k.run(1)
    assert read(s) == (a + b) & 0xFF


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=u8, b=u8, sub=st.booleans())
def test_prop_addsub_chain(a, b, sub):
    k, nl = make()
    ba, bb = nl.bus("a", 8), nl.bus("b", 8)
    ctl = k.signal("sub", 1, int(sub))
    s = nl.adder(ba, bb, sub=ctl)
    drive(k, ba, a)
    drive(k, bb, b)
    k.run(1)
    assert read(s) == ((a - b) if sub else (a + b)) & 0xFF


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=u8, b=u8)
def test_prop_less_than_unsigned(a, b):
    k, nl = make()
    ba, bb = nl.bus("a", 8), nl.bus("b", 8)
    lt = nl.less_than(ba, bb, signed=False)
    drive(k, ba, a)
    drive(k, bb, b)
    k.run(1)
    assert lt.value == int(a < b)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=s8, b=s8)
def test_prop_less_than_signed(a, b):
    k, nl = make()
    ba, bb = nl.bus("a", 8), nl.bus("b", 8)
    lt = nl.less_than(ba, bb, signed=True)
    drive(k, ba, a & 0xFF)
    drive(k, bb, b & 0xFF)
    k.run(1)
    assert lt.value == int(a < b)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=st.lists(u8, min_size=4, max_size=4), sel=st.integers(0, 3))
def test_prop_mux_tree(values, sel):
    k, nl = make()
    sel_bus = nl.bus("sel", 2)
    inputs = [nl.const_bus(v, 8) for v in values]
    out = nl.mux_tree(sel_bus, inputs)
    drive(k, sel_bus, sel)
    k.run(1)
    assert read(out) == values[sel]


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=u8, value=u8)
def test_prop_equals_const(a, value):
    k, nl = make()
    ba = nl.bus("a", 8)
    eq = nl.equals_const(ba, value)
    drive(k, ba, a)
    k.run(1)
    assert eq.value == int(a == value)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=st.integers(-(1 << 17), (1 << 17) - 1),
       b=st.integers(-(1 << 17), (1 << 17) - 1))
def test_prop_mult18_signed(a, b):
    k, nl = make()
    ba, bb = nl.bus("a", 18), nl.bus("b", 18)
    p = nl.mult18(ba, bb, 36)
    drive(k, ba, a & 0x3FFFF)
    drive(k, bb, b & 0x3FFFF)
    k.run(1)
    assert read(p) == (a * b) & ((1 << 36) - 1)
