"""Tests for the CORDIC division application (paper Section IV-A)."""

import pytest

from repro.apps.cordic.algorithm import (
    cordic_divide_fixed,
    from_fixed,
    generate_dataset,
    quotient_error,
    to_fixed,
)
from repro.apps.cordic.design import CordicDesign
from repro.apps.cordic.hardware import CordicPipelineGenerator, build_cordic_model
from repro.pygen.params import ParameterError


class TestAlgorithm:
    def test_converges_to_quotient(self):
        a = to_fixed(3.0)
        b = to_fixed(1.5)
        _, z = cordic_divide_fixed(b, a, 24)
        assert abs(from_fixed(z) - 0.5) < 1e-4

    def test_more_iterations_tighter(self):
        a = to_fixed(2.7)
        b = to_fixed(1.9)
        err8 = quotient_error(a, b, cordic_divide_fixed(b, a, 8)[1])
        err24 = quotient_error(a, b, cordic_divide_fixed(b, a, 24)[1])
        assert err24 <= err8

    def test_dataset_deterministic(self):
        assert generate_dataset(8, seed=42) == generate_dataset(8, seed=42)
        assert generate_dataset(8, seed=42) != generate_dataset(8, seed=43)

    def test_dataset_in_convergence_domain(self):
        for a, b in generate_dataset(64):
            assert 0 <= b < a

    def test_whole_dataset_accuracy(self):
        for a, b in generate_dataset(16):
            _, z = cordic_divide_fixed(b, a, 24)
            assert quotient_error(a, b, z) < 2e-3

    def test_to_fixed_overflow(self):
        with pytest.raises(OverflowError):
            to_fixed(1 << 20, frac=16)


class TestPipelineModel:
    """Drive the raw sysgen pipeline without the CPU."""

    def _run_datum(self, p, a_raw, b_raw, s0=0):
        model, mb = build_cordic_model(p)
        to_hw = mb.to_hw_channel(0)
        from_hw = mb.from_hw_channel(0)
        one = 1 << 16
        to_hw.push((one >> s0) & 0xFFFFFFFF, control=True)
        to_hw.push((a_raw >> s0) & 0xFFFFFFFF)
        to_hw.push(b_raw & 0xFFFFFFFF)
        to_hw.push(0)
        model.step(p + 12)  # plenty of cycles to flush
        y = from_hw.pop()
        z = from_hw.pop()
        assert y is not None and z is not None

        def s32(v):
            return v - 0x100000000 if v & 0x80000000 else v

        return s32(y.data), s32(z.data)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_golden_one_pass(self, p):
        a = to_fixed(3.25)
        b = to_fixed(1.0)
        got_y, got_z = self._run_datum(p, a, b)
        exp_y, exp_z = cordic_divide_fixed(b, a, p)
        assert (got_y, got_z) == (exp_y, exp_z)

    def test_second_pass_control_word(self):
        # Running pass 2 (s0 = P) must continue exactly where the
        # golden model's iteration P left off.
        p = 4
        a = to_fixed(2.0)
        b = to_fixed(1.2)
        y1, z1 = cordic_divide_fixed(b, a, p)
        model, mb = build_cordic_model(p)
        to_hw = mb.to_hw_channel(0)
        from_hw = mb.from_hw_channel(0)
        one = 1 << 16
        # pass 2: send intermediate y/z with C0 = 2^-P
        to_hw.push((one >> p) & 0xFFFFFFFF, control=True)
        to_hw.push((a >> p) & 0xFFFFFFFF)
        to_hw.push(y1 & 0xFFFFFFFF)
        to_hw.push(z1 & 0xFFFFFFFF)
        model.step(p + 12)
        y = from_hw.pop().data
        z = from_hw.pop().data

        def s32(v):
            return v - 0x100000000 if v & 0x80000000 else v

        exp_y, exp_z = cordic_divide_fixed(b, a, 2 * p)
        assert (s32(y), s32(z)) == (exp_y, exp_z)

    def test_pipeline_throughput(self):
        # A stream of data keeps the pipeline full: M inputs need about
        # 3*M + latency cycles, not M * (pipeline length).
        p = 4
        model, mb = build_cordic_model(p)
        to_hw = mb.to_hw_channel(0)
        from_hw = mb.from_hw_channel(0)
        one = 1 << 16
        to_hw.push(one, control=True)
        data = generate_dataset(4)
        for a, b in data:
            to_hw.push(a & 0xFFFFFFFF)
            to_hw.push(b & 0xFFFFFFFF)
            to_hw.push(0)
        model.step(3 * len(data) + p + 8)
        assert len(from_hw) == 2 * len(data)
        for a, b in data:
            y = from_hw.pop().data
            z = from_hw.pop().data

            def s32(v):
                return v - 0x100000000 if v & 0x80000000 else v

            exp_y, exp_z = cordic_divide_fixed(b, a, p)
            assert (s32(y), s32(z)) == (exp_y, exp_z)

    def test_resources_grow_linearly_with_p(self):
        r2 = build_cordic_model(2)[0].resources()
        r4 = build_cordic_model(4)[0].resources()
        r6 = build_cordic_model(6)[0].resources()
        assert r4.slices - r2.slices == r6.slices - r4.slices > 0
        assert r4.mult18 == 0  # PEs use no multipliers (paper Table I)


class TestDesign:
    def test_software_design_verifies(self):
        d = CordicDesign(p=0, iters=16, ndata=4)
        result = d.run()
        assert result.exit_code == 0
        assert result.cycles > 0

    @pytest.mark.parametrize("p", [2, 4])
    def test_hw_design_verifies(self, p):
        d = CordicDesign(p=p, iters=8, ndata=4)
        result = d.run()
        assert result.exit_code == 0

    def test_hw_beats_software(self):
        sw = CordicDesign(p=0, iters=24, ndata=8).run()
        hw = CordicDesign(p=4, iters=24, ndata=8).run()
        assert hw.cycles < sw.cycles

    def test_more_pes_fewer_cycles(self):
        c4 = CordicDesign(p=4, iters=24, ndata=8).run().cycles
        c8 = CordicDesign(p=8, iters=24, ndata=8).run().cycles
        assert c8 < c4

    def test_effective_iterations_rounds_up(self):
        d = CordicDesign(p=6, iters=16, ndata=4)
        assert d.effective_iterations == 18

    def test_estimate_includes_pipeline(self):
        sw = CordicDesign(p=0, iters=8, ndata=4).estimate()
        hw = CordicDesign(p=4, iters=8, ndata=4).estimate()
        assert hw.total.slices > sw.total.slices
        assert hw.fsl_links.slices > 0

    def test_verification_catches_wrong_data(self):
        from repro.apps.common import VerificationError

        d = CordicDesign(p=2, iters=8, ndata=4)
        # sabotage: swap the golden model for different iterations
        d.iters = 9  # changes expected_results but not the program
        with pytest.raises(VerificationError):
            d.run()


class TestGenerator:
    def test_sweep_generates_designs(self):
        gen = CordicPipelineGenerator()
        designs = gen.sweep(P=[2, 4])
        assert len(designs) == 2
        assert designs[0].model.name == "cordic_p2"
        assert "putfsl" in designs[0].c_source

    def test_parameter_validation(self):
        gen = CordicPipelineGenerator()
        with pytest.raises(ParameterError):
            gen.generate(P=99)
        with pytest.raises(ParameterError):
            gen.generate(BOGUS=1)
