"""Shared fixtures.

``sysgen_engine`` parametrizes a test over both hardware-model
execution engines — the compiled schedule (default) and the per-cycle
interpreter (via an ambient ``engine_scope``) — so every behavioural
test that opts in becomes an equivalence check between them.  Modules that
want *all* their tests doubled add::

    @pytest.fixture(autouse=True)
    def _engine(sysgen_engine):
        pass
"""

from __future__ import annotations

import pytest

ENGINES = ("compiled", "interpreter")


@pytest.fixture(params=ENGINES, ids=lambda e: f"engine={e}")
def sysgen_engine(request, monkeypatch):
    """Run the test once per sysgen execution engine.

    The ambient engine scope is entered *before* the test body runs, so
    any ``Model`` compiled inside the test picks the requested engine;
    the fixture yields the engine name for tests that assert on
    ``Model.engine`` directly.
    """
    from repro.runapi import engine_scope

    monkeypatch.delenv("REPRO_SYSGEN_INTERP", raising=False)
    with engine_scope(request.param):
        yield request.param
