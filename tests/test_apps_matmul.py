"""Tests for the block matrix multiplication application (Section IV-B)."""

import pytest

from repro.apps.matmul.algorithm import (
    block_matmul_reference,
    generate_matrices,
    matmul_reference,
)
from repro.apps.matmul.design import MatmulDesign
from repro.apps.matmul.hardware import MatmulBlockGenerator, build_matmul_model
from repro.pygen.params import ParameterError


class TestAlgorithm:
    def test_reference_small(self):
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        assert matmul_reference(a, b) == [[19, 22], [43, 50]]

    def test_blocked_equals_plain(self):
        a, b = generate_matrices(8)
        plain = matmul_reference(a, b)
        assert block_matmul_reference(a, b, 2) == plain
        assert block_matmul_reference(a, b, 4) == plain

    def test_block_divisibility_check(self):
        a, b = generate_matrices(6)
        with pytest.raises(ValueError):
            block_matmul_reference(a, b, 4)

    def test_matrices_deterministic(self):
        assert generate_matrices(4, seed=7) == generate_matrices(4, seed=7)

    def test_wrap_semantics(self):
        big = [[0x7FFFFFFF]]
        two = [[2]]
        # 2 * INT_MAX wraps in 32-bit two's complement
        assert matmul_reference(big, two) == [[-2]]


class TestPeripheralModel:
    """Drive the raw block multiplier without the CPU."""

    def _run_block(self, n, a_block, b_block):
        # deep FIFO so the whole test stimulus can be preloaded
        model, mb = build_matmul_model(n, fifo_depth=64)
        to_hw = mb.to_hw_channel(0)
        from_hw = mb.from_hw_channel(0)
        # load B column by column (k fast)
        for j in range(n):
            for k in range(n):
                to_hw.push(b_block[k][j] & 0xFFFFFFFF, control=True)
        # stream A column by column (i fast)
        for k in range(n):
            for i in range(n):
                to_hw.push(a_block[i][k] & 0xFFFFFFFF)
        model.step(3 * n * n + 24)
        assert len(from_hw) == n * n
        out = [[0] * n for _ in range(n)]
        for j in range(n):
            for i in range(n):
                word = from_hw.pop()
                raw = word.data
                out[i][j] = raw - 0x100000000 if raw & 0x80000000 else raw
        return out

    @pytest.mark.parametrize("n", [2, 4])
    def test_single_block_product(self, n):
        a, b = generate_matrices(n, seed=11)
        assert self._run_block(n, a, b) == matmul_reference(a, b)

    def test_negative_entries(self):
        a = [[-3, 2], [7, -5]]
        b = [[4, -1], [-6, 8]]
        assert self._run_block(2, a, b) == matmul_reference(a, b)

    def test_b_block_reused_across_a_blocks(self):
        # One B load, two A blocks streamed back to back.
        n = 2
        model, mb = build_matmul_model(n)
        to_hw = mb.to_hw_channel(0)
        from_hw = mb.from_hw_channel(0)
        b = [[2, 3], [5, 7]]
        a1 = [[1, 0], [0, 1]]
        a2 = [[1, 1], [1, 1]]
        for j in range(n):
            for k in range(n):
                to_hw.push(b[k][j], control=True)
        for blk in (a1, a2):
            for k in range(n):
                for i in range(n):
                    to_hw.push(blk[i][k])
        model.step(40)
        results = []
        for _ in range(2):
            out = [[0] * n for _ in range(n)]
            for j in range(n):
                for i in range(n):
                    out[i][j] = from_hw.pop().data
            results.append(out)
        assert results[0] == matmul_reference(a1, b)
        assert results[1] == matmul_reference(a2, b)

    def test_multiplier_count_matches_block_size(self):
        r2 = build_matmul_model(2)[0].resources()
        r4 = build_matmul_model(4)[0].resources()
        assert r2.mult18 == 2  # paper Table I: +2 multipliers for 2x2
        assert r4.mult18 == 4  # and +4 for 4x4
        assert r4.slices > r2.slices

    def test_block_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            build_matmul_model(3)


class TestDesign:
    def test_software_design_verifies(self):
        r = MatmulDesign(block=0, matn=4).run()
        assert r.exit_code == 0

    @pytest.mark.parametrize("block", [2, 4])
    def test_hw_design_verifies(self, block):
        r = MatmulDesign(block=block, matn=4 if block == 2 else 8).run()
        assert r.exit_code == 0

    def test_paper_crossover_shape(self):
        """The paper's headline: 2x2 blocks lose to pure software,
        4x4 blocks win (communication vs. parallelism trade-off)."""
        sw = MatmulDesign(block=0, matn=8).run().cycles
        hw2 = MatmulDesign(block=2, matn=8).run().cycles
        hw4 = MatmulDesign(block=4, matn=8).run().cycles
        assert hw2 > sw  # 2x2 slower than software
        assert hw4 < sw  # 4x4 faster than software

    def test_estimates_ranked(self):
        e0 = MatmulDesign(block=0, matn=4).estimate().total
        e2 = MatmulDesign(block=2, matn=4).estimate().total
        e4 = MatmulDesign(block=4, matn=8).estimate().total
        assert e0.slices < e2.slices < e4.slices
        assert (e0.mult18, e2.mult18, e4.mult18) == (3, 5, 7)  # Table I


class TestGenerator:
    def test_constraint_block_divides_matrix(self):
        gen = MatmulBlockGenerator()
        with pytest.raises(ParameterError):
            gen.generate(BLOCK=4, MATN=6)

    def test_constraint_fifo(self):
        gen = MatmulBlockGenerator()
        with pytest.raises(ParameterError):
            gen.generate(BLOCK=8, MATN=16, FIFO_DEPTH=16)

    def test_sweep_skips_invalid(self):
        gen = MatmulBlockGenerator()
        designs = gen.sweep(BLOCK=[2, 4], MATN=[4, 6])
        # (2,4), (2,6), (4,4) valid; (4,6) invalid
        assert len(designs) == 3
