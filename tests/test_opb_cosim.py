"""Co-simulation over the OPB: memory-mapped peripheral registers.

The paper supports attaching customized hardware over the IBM OPB in
addition to FSL; these tests exercise the full path: mini-C pointer
dereferences → CPU load/store → OPB bus transaction (with its higher
latency) → OPB register bank block inside the sysgen model.
"""

import pytest

from repro.bus.opb import OPBBus
from repro.cosim import CoSimulation, MicroBlazeBlock
from repro.iss.run import make_cpu
from repro.mcc import build_executable
from repro.sysgen import Model
from repro.sysgen.blocks import Add, OPBRegisterBank

OPB_BASE = 0x0001_0000


def build_opb_adder():
    """A peripheral computing cmd0 + cmd1 -> sts0, attached over OPB."""
    model = Model("opb_adder")
    bank = model.add(OPBRegisterBank("bank", n_command=2, n_status=1))
    adder = model.add(Add("sum", width=32))
    model.connect(bank.o("cmd0"), adder.i("a"))
    model.connect(bank.o("cmd1"), adder.i("b"))
    model.connect(adder.o("s"), bank.i("sts0"))
    bus = OPBBus()
    bus.attach(OPB_BASE, bank.opb_size, bank)
    return model, bank, bus


SOURCE = f"""
int main(void) {{
    int *cmd = (int *){OPB_BASE};
    int *sts = (int *)({OPB_BASE} + 8);
    int total = 0;
    for (int i = 1; i <= 4; i++) {{
        cmd[0] = i * 10;
        cmd[1] = i;
        /* wait a couple of bus transactions for the result register */
        int v = sts[0];
        v = sts[0];
        total += v;
    }}
    return total;   /* (10+1)+(20+2)+(30+3)+(40+4) = 110 */
}}
"""


class TestOPBRegisterBank:
    def test_slave_protocol(self):
        _, bank, _ = build_opb_adder()
        bank.opb_write(0, 7)
        bank.opb_write(4, 8)
        assert bank.opb_read(0) == 7
        assert bank.opb_read(4) == 8
        with pytest.raises(IndexError):
            bank.opb_write(8, 1)  # status register is read-only

    def test_model_sees_command_registers(self):
        model, bank, _ = build_opb_adder()
        bank.opb_write(0, 30)
        bank.opb_write(4, 12)
        model.step(2)
        assert bank.opb_read(8) == 42  # sts0 latched the adder output

    def test_wr_count_strobe(self):
        model, bank, _ = build_opb_adder()
        bank.opb_write(0, 1)
        bank.opb_write(4, 2)
        model.step()
        assert bank.out_value("wr_count") == 2

    def test_resources_nonzero(self):
        _, bank, _ = build_opb_adder()
        assert bank.resources().slices > 0


class TestOPBCoSimulation:
    def build_sim(self):
        model, bank, bus = build_opb_adder()
        mb = MicroBlazeBlock(model)  # no FSLs used; provides the ports
        program = build_executable(SOURCE)
        sim = CoSimulation(program, model, mb)
        sim.cpu.mem.map_opb(bus, OPB_BASE, bank.opb_size)
        return sim, bus

    def test_end_to_end(self):
        sim, _ = self.build_sim()
        result = sim.run()
        assert result.exit_code == 110

    def test_opb_latency_charged(self):
        sim, bus = self.build_sim()
        result = sim.run()
        # each OPB transaction costs READ/WRITE_LATENCY instead of the
        # 2-cycle LMB access; verify the bus saw the traffic
        assert bus.writes == 8   # 2 command writes x 4 iterations
        assert bus.reads == 8    # 2 status reads  x 4 iterations

    def test_opb_slower_than_lmb(self):
        """The same loop against plain BRAM completes in fewer cycles
        than against 3-cycle OPB registers."""
        sim, _ = self.build_sim()
        opb_cycles = sim.run().cycles

        lmb_src = SOURCE.replace(f"(int *){OPB_BASE}", "(int *)0x2000") \
                        .replace(f"(int *)({OPB_BASE} + 8)", "(int *)0x2000")
        program = build_executable(lmb_src)
        cpu = make_cpu(program, memory_size=0x4000)
        cpu.run()
        assert opb_cycles > cpu.cycle

    def test_window_validation(self):
        sim, bus = self.build_sim()
        with pytest.raises(ValueError):
            sim.cpu.mem.map_opb(bus, 0x10, 16)  # overlaps BRAM
