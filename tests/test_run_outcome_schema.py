"""The RunOutcome contract: one result schema across the toolkit.

``CoSimResult`` (one co-simulation), ``DSEResult`` (one sweep point)
and ``TrialOutcome`` (one fault-campaign trial) all derive from
:class:`repro.runapi.RunOutcome` and serialize through ``to_dict()``
with a stable shared key core (``status`` / ``error`` / ``cycles``).
This suite diffs representative instances of all three against the
checked-in contract in ``tests/contracts/run_outcome_contract.json`` —
growing a result type's surface means updating the contract
deliberately, in the same commit.
"""

import json
import pathlib

import pytest

from repro.cosim.dse import DSEResult, STATUS_OK, STATUS_TIMEOUT
from repro.cosim.environment import CoSimResult
from repro.cosim.partition import DesignSpec
from repro.faults.campaign import OUTCOME_MASKED, OUTCOME_SDC, TrialOutcome
from repro.iss.cpu import HaltReason
from repro.runapi import OUTCOME_CORE_KEYS, RunOutcome

CONTRACT_PATH = (
    pathlib.Path(__file__).parent / "contracts" / "run_outcome_contract.json"
)
CONTRACT = json.loads(CONTRACT_PATH.read_text())


def make_cosim_result(exit_code=0, halt=HaltReason.EXIT) -> CoSimResult:
    return CoSimResult(
        exit_code=exit_code,
        cycles=1234,
        instructions=1000,
        stall_cycles=234,
        wall_seconds=0.5,
        simulated_seconds=1234 / 50e6,
        halt_reason=halt,
    )


def make_dse_result(status=STATUS_OK, error=None) -> DSEResult:
    spec = DesignSpec(
        name="pt", factory="repro.cosim.sweep:SyntheticDesign", params={}
    )
    return DSEResult(point=spec, result=None, estimate=None,
                     status=status, error=error)


def make_trial_record(outcome=OUTCOME_MASKED, detail="") -> dict:
    # the exact key set run_trial/run_campaign produce per trial
    return {
        "seed": "2005/0",
        "plan": {},
        "injected": [],
        "rollbacks": 0,
        "backoff_s": [],
        "checkpoint_cycle": 100,
        "outcome": outcome,
        "original_outcome": outcome,
        "detail": detail,
        "cycles": 5000,
        "exit_code": 0,
        "trial": 0,
    }


OUTCOMES = {
    "CoSimResult": make_cosim_result,
    "DSEResult": make_dse_result,
    "TrialOutcome": lambda: TrialOutcome(make_trial_record()),
}


@pytest.mark.parametrize("name", sorted(OUTCOMES))
def test_is_run_outcome(name):
    assert isinstance(OUTCOMES[name](), RunOutcome)


@pytest.mark.parametrize("name", sorted(OUTCOMES))
def test_core_keys_present_and_typed(name):
    out = OUTCOMES[name]().to_dict()
    for key in CONTRACT["core_keys"]:
        assert key in out, f"{name}.to_dict() missing core key {key!r}"
    assert isinstance(out["status"], str)
    assert out["error"] is None or isinstance(out["error"], str)
    assert out["cycles"] is None or isinstance(out["cycles"], int)


@pytest.mark.parametrize("name", sorted(OUTCOMES))
def test_to_dict_matches_contract(name):
    out = OUTCOMES[name]().to_dict()
    assert sorted(out) == CONTRACT["schemas"][name], (
        f"{name}.to_dict() key set drifted from the checked-in contract "
        f"({CONTRACT_PATH.name}); update the contract in the same commit "
        f"if the change is intentional"
    )


@pytest.mark.parametrize("name", sorted(OUTCOMES))
def test_core_matches_attributes(name):
    outcome = OUTCOMES[name]()
    out = outcome.to_dict()
    assert out["status"] == outcome.status
    assert out["error"] == outcome.error
    assert out["cycles"] == outcome.cycles


def test_contract_core_matches_runapi():
    assert tuple(CONTRACT["core_keys"]) == OUTCOME_CORE_KEYS


def test_ok_semantics():
    assert make_cosim_result().ok
    assert not make_cosim_result(exit_code=3).ok
    assert make_cosim_result(exit_code=3).status == "exit"
    budget = make_cosim_result(exit_code=None, halt=HaltReason.MAX_CYCLES)
    assert budget.status == "max-cycles"
    assert budget.error == "cycle budget exhausted without exit"

    assert make_dse_result().ok
    timed_out = make_dse_result(STATUS_TIMEOUT, "budget")
    assert not timed_out.ok
    assert timed_out.to_dict()["cycles"] is None

    masked = TrialOutcome(make_trial_record())
    assert masked.ok and masked.status == "ok"
    sdc = TrialOutcome(make_trial_record(OUTCOME_SDC, "wrong answer"))
    assert not sdc.ok
    assert sdc.status == OUTCOME_SDC
    assert sdc.error == "wrong answer"
    # the full record survives alongside the core keys
    assert sdc.to_dict()["outcome"] == OUTCOME_SDC
    assert sdc.to_dict()["seed"] == "2005/0"
