"""Cross-cutting property-based tests (hypothesis).

The strongest correctness evidence in the repository: differential
testing of the whole toolchain (random C expressions compiled and
executed on the ISS vs Python semantics), random-stimulus equivalence
of the hardware pipelines against golden models, and encode/decode
round trips over the full instruction set.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.cordic.algorithm import cordic_divide_fixed
from repro.apps.cordic.hardware import build_cordic_model
from repro.apps.matmul.algorithm import matmul_reference
from repro.apps.matmul.hardware import build_matmul_model
from repro.asm import assemble, disassemble, link
from repro.isa import BY_MNEMONIC, decode, encode
from repro.iss.run import run_to_completion
from repro.mcc import build_executable

_M32 = 0xFFFFFFFF


def _s32(v: int) -> int:
    v &= _M32
    return v - 0x100000000 if v & 0x80000000 else v


# ----------------------------------------------------------------------
# ISA: encode/decode round trip over random operand values
# ----------------------------------------------------------------------
@given(
    mnemonic=st.sampled_from(sorted(BY_MNEMONIC)),
    rd=st.integers(0, 31),
    ra=st.integers(0, 31),
    rb=st.integers(0, 31),
    imm=st.integers(-(1 << 15), (1 << 15) - 1),
    fsl=st.integers(0, 7),
)
def test_prop_isa_round_trip(mnemonic, rd, ra, rb, imm, fsl):
    spec = BY_MNEMONIC[mnemonic]
    fields = {}
    for op in spec.operands:
        if op in ("rd", "ra", "rb"):
            fields[op] = {"rd": rd, "ra": ra, "rb": rb}[op]
        elif op == "imm":
            fields[op] = (imm & 31) if spec.kind == "bs" else imm
        elif op == "fsl":
            fields[op] = fsl
    word = encode(spec, **fields)
    instr = decode(word)
    assert instr.mnemonic == mnemonic
    for op, value in fields.items():
        if op == "imm":
            if spec.kind == "bs":
                assert instr.imm & 31 == value
            elif spec.kind == "imm":
                assert instr.imm & 0xFFFF == value & 0xFFFF
            else:
                assert instr.imm == value
        elif op == "fsl":
            assert instr.fsl_id == value
        else:
            assert getattr(instr, op) == value


@given(
    mnemonic=st.sampled_from(
        [m for m, s in BY_MNEMONIC.items()
         if s.fmt == "A" and s.kind not in ("fsl",)]
    ),
    rd=st.integers(0, 31),
    ra=st.integers(0, 31),
    rb=st.integers(0, 31),
)
def test_prop_disassembler_reassembles(mnemonic, rd, ra, rb):
    """disassemble → assemble → identical word."""
    spec = BY_MNEMONIC[mnemonic]
    fields = {}
    for op in spec.operands:
        fields[op] = {"rd": rd, "ra": ra, "rb": rb}[op]
    word = encode(spec, **fields)
    text = disassemble(word)
    module = assemble(f".global _start\n_start: {text}")
    prog = link(module)
    assert int.from_bytes(prog.image[0:4], "big") == word


# ----------------------------------------------------------------------
# Compiler differential testing: expressions
# ----------------------------------------------------------------------
small_int = st.integers(min_value=-1000, max_value=1000)
shift_amt = st.integers(min_value=0, max_value=31)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=small_int, b=small_int, c=small_int)
def test_prop_compiled_arithmetic_matches_python(a, b, c):
    src = f"""
    int main(void) {{
        int a = {a};
        int b = {b};
        int c = {c};
        return (a + b) * c - (a - c) + (b ^ c) + (a & b) - (a | c);
    }}
    """
    expected = _s32((a + b) * c - (a - c) + (b ^ c) + (a & b) - (a | c))
    code, _ = run_to_completion(build_executable(src))
    assert code == expected


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=st.integers(min_value=-(1 << 30), max_value=(1 << 30) - 1),
       b=st.integers(min_value=1, max_value=1 << 20))
def test_prop_compiled_division_truncates_like_c(a, b):
    src = f"""
    int main(void) {{
        int a = {a};
        int b = {b};
        return (a / b) + (a % b) * 3;
    }}
    """
    q = abs(a) // b * (1 if a >= 0 else -1)
    r = a - q * b
    expected = _s32(q + r * 3)
    code, _ = run_to_completion(build_executable(src))
    assert code == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
       n=shift_amt)
def test_prop_compiled_shifts_match(a, n):
    src = f"""
    int main(void) {{
        int a = {a};
        unsigned u = (unsigned){a};
        int n = {n};
        return (a >> n) ^ (int)(u >> n) ^ (a << n);
    }}
    """
    sra = _s32(a) >> n
    srl = (a & _M32) >> n
    sll = _s32((a << n) & _M32)
    expected = _s32(sra ^ _s32(srl) ^ sll)
    code, _ = run_to_completion(build_executable(src))
    assert code == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=st.lists(small_int, min_size=1, max_size=12))
def test_prop_compiled_array_sum(values):
    inits = ", ".join(str(v) for v in values)
    src = f"""
    int data[{len(values)}] = {{{inits}}};
    int main(void) {{
        int sum = 0;
        for (int i = 0; i < {len(values)}; i++) sum += data[i];
        return sum;
    }}
    """
    code, _ = run_to_completion(build_executable(src))
    assert code == sum(values)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(a=small_int, b=small_int)
def test_prop_compiled_comparisons_match(a, b):
    src = f"""
    int main(void) {{
        int a = {a};
        int b = {b};
        return (a < b) + 2*(a <= b) + 4*(a > b) + 8*(a >= b)
             + 16*(a == b) + 32*(a != b);
    }}
    """
    expected = ((a < b) + 2 * (a <= b) + 4 * (a > b) + 8 * (a >= b)
                + 16 * (a == b) + 32 * (a != b))
    code, _ = run_to_completion(build_executable(src))
    assert code == expected


# ----------------------------------------------------------------------
# Hardware pipelines vs golden models on random stimuli
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    a=st.integers(min_value=1 << 14, max_value=1 << 20),
    b=st.integers(min_value=0, max_value=1 << 19),
    p=st.sampled_from([1, 2, 4]),
)
def test_prop_cordic_pipeline_matches_golden(a, b, p):
    model, mb = build_cordic_model(p)
    to_hw = mb.to_hw_channel(0)
    from_hw = mb.from_hw_channel(0)
    to_hw.push(1 << 16, control=True)
    to_hw.push(a & _M32)
    to_hw.push(b & _M32)
    to_hw.push(0)
    model.step(p + 12)
    y = from_hw.pop()
    z = from_hw.pop()
    exp_y, exp_z = cordic_divide_fixed(b, a, p)
    assert (_s32(y.data), _s32(z.data)) == (exp_y, exp_z)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.lists(st.integers(min_value=-1000, max_value=1000),
                  min_size=8, max_size=8)
)
def test_prop_matmul_block_matches_reference(data):
    n = 2
    a = [data[0:2], data[2:4]]
    b = [data[4:6], data[6:8]]
    model, mb = build_matmul_model(n, fifo_depth=64)
    to_hw = mb.to_hw_channel(0)
    from_hw = mb.from_hw_channel(0)
    for j in range(n):
        for k in range(n):
            to_hw.push(b[k][j] & _M32, control=True)
    for k in range(n):
        for i in range(n):
            to_hw.push(a[i][k] & _M32)
    model.step(3 * n * n + 24)
    out = [[0] * n for _ in range(n)]
    for j in range(n):
        for i in range(n):
            out[i][j] = _s32(from_hw.pop().data)
    assert out == matmul_reference(a, b)


# ----------------------------------------------------------------------
# Assembler/linker invariants
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
                min_size=1, max_size=16))
def test_prop_data_words_round_trip(values):
    body = "\n".join(f"    .word {v}" for v in values)
    prog = link(assemble(f".global _start\n_start: nop\n.data\ntab:\n{body}"))
    base = prog.symbols["tab"]
    for i, v in enumerate(values):
        got = int.from_bytes(prog.image[base + 4 * i : base + 4 * i + 4],
                             "big")
        assert got == v & _M32
