"""``mb32-profile`` CLI error paths: a bad input image or an unwritable
output destination must exit 2 with a one-line diagnostic in
milliseconds — never a traceback, never after the simulation ran."""

import os

import pytest

from repro.cli import profile_main


def _run(args, capsys):
    rc = profile_main(args)
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    assert "Traceback" not in captured.out
    return rc, captured


def test_missing_image_exits_2(tmp_path, capsys):
    rc, captured = _run(["run", str(tmp_path / "nope.img")], capsys)
    assert rc == 2
    assert "not found" in captured.err
    assert captured.err.count("\n") == 1


def test_directory_as_source_exits_2(tmp_path, capsys):
    rc, captured = _run(["run", str(tmp_path)], capsys)
    assert rc == 2
    assert "directory" in captured.err


@pytest.mark.skipif(os.geteuid() == 0, reason="root ignores permissions")
def test_unreadable_source_exits_2(tmp_path, capsys):
    src = tmp_path / "secret.c"
    src.write_text("int main() { return 0; }")
    src.chmod(0o000)
    try:
        rc, captured = _run(["run", str(src)], capsys)
    finally:
        src.chmod(0o644)
    assert rc == 2
    assert "permission denied" in captured.err


@pytest.mark.parametrize("flag", ["--trace", "--vcd", "--metrics"])
def test_output_into_missing_directory_exits_2(flag, tmp_path, capsys):
    out = str(tmp_path / "no" / "such" / "dir" / "out.json")
    rc, captured = _run(["cordic", "--p", "1", flag, out], capsys)
    assert rc == 2
    assert flag in captured.err
    assert "does not exist" in captured.err


@pytest.mark.parametrize("flag", ["--trace", "--vcd", "--metrics"])
def test_output_path_is_a_directory_exits_2(flag, tmp_path, capsys):
    rc, captured = _run(["cordic", "--p", "1", flag, str(tmp_path)], capsys)
    assert rc == 2
    assert "is a directory" in captured.err


@pytest.mark.skipif(os.geteuid() == 0, reason="root ignores permissions")
@pytest.mark.parametrize("flag", ["--trace", "--vcd", "--metrics"])
def test_unwritable_output_directory_exits_2(flag, tmp_path, capsys):
    locked = tmp_path / "locked"
    locked.mkdir()
    locked.chmod(0o555)
    try:
        rc, captured = _run(
            ["cordic", "--p", "1", flag, str(locked / "out.json")], capsys)
    finally:
        locked.chmod(0o755)
    assert rc == 2
    assert "permission denied" in captured.err


def test_preflight_happens_before_any_simulation(tmp_path, capsys):
    """The bad output path must fail even when the *input* is also
    expensive — combined flags still produce exactly one message."""
    out = str(tmp_path / "ghost" / "trace.json")
    rc, captured = _run(
        ["cordic", "--p", "4", "--ndata", "32", "--trace", out], capsys)
    assert rc == 2
    assert captured.err.startswith("mb32-profile: error: ")
    assert captured.err.count("\n") == 1


def test_stdin_source_skips_input_checks(tmp_path, capsys):
    """'-' means stdin: the preflight must not stat it — but a bad
    output flag still fails fast before any source is read."""
    rc, captured = _run(
        ["run", "-", "--metrics", str(tmp_path / "void" / "m.json")], capsys)
    assert rc == 2
    assert "--metrics" in captured.err
