"""Tests for hierarchical subsystems."""

import pytest

from repro.sysgen import Model, ModelError, Subsystem
from repro.sysgen.blocks import Add, Constant, Register


def build_hierarchy():
    m = Model("top")
    pe = Subsystem(m, "pe0")
    a = pe.add(Add("adder", width=16))
    r = pe.add(Register("reg", width=16))
    inner = pe.subsystem("ctl")
    c = inner.add(Constant("one", 1, width=16))
    return m, pe, inner, a, r, c


class TestSubsystem:
    def test_namespacing(self):
        m, pe, inner, a, r, c = build_hierarchy()
        assert a.name == "pe0/adder"
        assert c.name == "pe0/ctl/one"
        assert m.block("pe0/adder") is a

    def test_relative_lookup(self):
        _, pe, inner, a, _, c = build_hierarchy()
        assert pe.block("adder") is a
        assert inner.block("one") is c

    def test_same_leaf_name_in_different_subsystems(self):
        m = Model()
        s1 = Subsystem(m, "a")
        s2 = Subsystem(m, "b")
        s1.add(Add("x", width=8))
        s2.add(Add("x", width=8))  # no clash: a/x vs b/x
        assert len(m.blocks) == 2

    def test_resource_rollup(self):
        m, pe, inner, a, r, c = build_hierarchy()
        assert pe.resources().slices == (
            a.resources().slices + r.resources().slices
            + c.resources().slices
        )
        assert inner.resources().slices == c.resources().slices

    def test_all_blocks_recursive(self):
        _, pe, _, a, r, c = build_hierarchy()
        assert set(pe.all_blocks()) == {a, r, c}

    def test_report_tree(self):
        _, pe, _, _, _, _ = build_hierarchy()
        text = pe.report()
        assert "pe0:" in text
        assert "ctl:" in text

    def test_simulation_unaffected(self):
        m = Model()
        s = Subsystem(m, "s")
        one = s.add(Constant("one", 1, width=8))
        add = s.add(Add("a", width=8))
        m.connect(one.o("out"), add.i("a"), add.i("b"))
        m.settle()
        assert add.out_value("s") == 2

    def test_name_validation(self):
        with pytest.raises(ModelError):
            Subsystem(Model(), "bad/name")

    def test_path_nesting(self):
        m = Model()
        a = Subsystem(m, "a")
        b = a.subsystem("b")
        c = b.subsystem("c")
        assert c.path == "a/b/c"
