"""Unit tests for the lockstep batched model engine.

A kitchen-sink model exercises every vectorized block class plus a
user-defined fallback block; N parameter variants run scalar
(compiled engine) and batched, and every probe trace and port value
must match bit for bit — including after lane deactivation and reset.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.sysgen.batched import (
    BatchedModel,
    BatchUnsupported,
    lockstep_signature,
)
from repro.sysgen.block import SeqBlock
from repro.sysgen.blocks.arith import Accumulator, Add, AddSub, Mult, Negate, Shift
from repro.sysgen.blocks.control import Constant, Counter
from repro.sysgen.blocks.logic import Concat, Inverter, Logical, Mux, Relational, Slice
from repro.sysgen.blocks.memory import FIFO, RAM, ROM, Delay, Register
from repro.sysgen.model import Model


class Scrambler(SeqBlock):
    """User block with no emitters: forces per-lane fallback dispatch."""

    def __init__(self, name: str):
        super().__init__(name)
        self.add_input("d")
        self.add_output("q", 16)
        self._acc = 0

    def present(self) -> None:
        self.outputs["q"].value = self._acc

    def clock(self) -> None:
        self._acc = (self._acc * 5 + self.in_value("d") + 1) & 0xFFFF

    def reset(self) -> None:
        super().reset()
        self._acc = 0

    def extra_state(self) -> dict:
        return {"acc": self._acc}

    def load_extra_state(self, extra: dict) -> None:
        self._acc = extra["acc"]


def build_sink(value: int = 5, step: int = 1, init: int = 0) -> Model:
    """One model touching every vectorized block class."""
    m = Model("sink")
    cnt = m.add(Counter("cnt", width=8, step=step))
    k = m.add(Constant("k", value, width=16))
    add = m.add(Add("add", width=16, latency=2))
    m.connect(cnt.o("q"), add.i("a"))
    m.connect(k.o("out"), add.i("b"))
    mult = m.add(Mult("mult", width_a=16, width_b=8, latency=3))
    m.connect(add.o("s"), mult.i("a"))
    m.connect(cnt.o("q"), mult.i("b"))
    bit0 = m.add(Slice("bit0", 0, 0))
    m.connect(cnt.o("q"), bit0.i("a"))
    bit1 = m.add(Slice("bit1", 1, 1))
    m.connect(cnt.o("q"), bit1.i("a"))
    asb = m.add(AddSub("asb", width=16))
    m.connect(add.o("s"), asb.i("a"))
    m.connect(k.o("out"), asb.i("b"))
    m.connect(bit0.o("out"), asb.i("sub"))
    mux = m.add(Mux("mux", width=16, n=3))
    m.connect(cnt.o("q"), mux.i("sel"))
    m.connect(add.o("s"), mux.i("d0"))
    m.connect(asb.o("s"), mux.i("d1"))
    m.connect(k.o("out"), mux.i("d2"))
    rel = m.add(Relational("rel", width=16, op="lt", signed=True))
    m.connect(mux.o("out"), rel.i("a"))
    m.connect(k.o("out"), rel.i("b"))
    logi = m.add(Logical("logi", width=16, op="xnor"))
    m.connect(add.o("s"), logi.i("d0"))
    m.connect(asb.o("s"), logi.i("d1"))
    inv = m.add(Inverter("inv", width=16))
    m.connect(logi.o("out"), inv.i("a"))
    cat = m.add(Concat("cat", [8, 8]))
    m.connect(cnt.o("q"), cat.i("d0"))
    m.connect(inv.o("out"), cat.i("d1"))
    neg = m.add(Negate("neg", width=16))
    m.connect(mux.o("out"), neg.i("a"))
    shl = m.add(Shift("shl", width=16, amount=3, direction="left"))
    m.connect(cat.o("out"), shl.i("a"))
    shr = m.add(Shift("shr", width=16, amount=2, direction="right",
                      arithmetic=True))
    m.connect(neg.o("n"), shr.i("a"))
    reg = m.add(Register("reg", width=16, init=init))
    m.connect(mux.o("out"), reg.i("d"))
    m.connect(rel.o("out"), reg.i("en"))
    m.connect(bit1.o("out"), reg.i("rst"))
    dly = m.add(Delay("dly", width=16, n=3))
    m.connect(reg.o("q"), dly.i("d"))
    acc = m.add(Accumulator("acc", width=24))
    m.connect(mux.o("out"), acc.i("d"))
    m.connect(bit1.o("out"), acc.i("rst"))
    addr = m.add(Slice("addr", 3, 0))
    m.connect(cnt.o("q"), addr.i("a"))
    ram = m.add(RAM("ram", depth=16, width=16))
    m.connect(addr.o("out"), ram.i("addr"))
    m.connect(mux.o("out"), ram.i("din"))
    m.connect(rel.o("out"), ram.i("we"))
    rom = m.add(ROM("rom", [7, 1, 2, 9, 4, 11], width=16))
    m.connect(cnt.o("q"), rom.i("addr"))
    fifo = m.add(FIFO("fifo", width=16, depth=4))
    m.connect(cnt.o("q"), fifo.i("din"))
    m.connect(bit0.o("out"), fifo.i("push"))
    m.connect(rel.o("out"), fifo.i("pop"))
    scr = m.add(Scrambler("scr"))
    m.connect(mux.o("out"), scr.i("d"))
    for ref in (mult.o("p"), mux.o("out"), reg.o("q"), dly.o("q"),
                acc.o("q"), ram.o("dout"), rom.o("data"), fifo.o("dout"),
                fifo.o("count"), cat.o("out"), shl.o("s"), shr.o("s"),
                rel.o("out"), scr.o("q")):
        m.probe(ref)
    return m


PARAMS = [
    {"value": 5, "step": 1, "init": 0},
    {"value": 40000, "step": 3, "init": 7},
    {"value": 17, "step": 5, "init": 1},
    {"value": 0, "step": 7, "init": 65535},
    {"value": 255, "step": 2, "init": 12},
]


def scalar_runs(cycles: int):
    """Per-cycle scalar (compiled-engine) reference traces."""
    runs = []
    for p in PARAMS:
        m = build_sink(**p)
        m.step(cycles)
        runs.append(m)
    return runs


def assert_lanes_match(batched, refs, cycles_per_lane=None):
    for lane, ref in enumerate(refs):
        want = cycles_per_lane[lane] if cycles_per_lane else None
        for k, probe in enumerate(ref.probes):
            got = batched.models[lane].probes[k].samples
            expect = probe.samples if want is None else probe.samples[:want]
            assert got == expect, (
                f"lane {lane} probe {probe.name} diverged: "
                f"{got[:10]}... != {expect[:10]}..."
            )


def test_lockstep_matches_scalar():
    cycles = 200
    refs = scalar_runs(cycles)
    batch = BatchedModel([build_sink(**p) for p in PARAMS])
    assert batch.fallback_blocks == ["scr"]
    batch.step(cycles)
    assert batch.cycle == cycles
    assert_lanes_match(batch, refs)
    # port arrays match the scalar ports too
    for lane, ref in enumerate(refs):
        for block in ref.blocks:
            for port in block.outputs.values():
                got = int(batch.peek(block.name, port.name)[lane])
                assert got == port.value, (
                    f"lane {lane} port {block.name}.{port.name}: "
                    f"{got} != {port.value}"
                )
    # probe samples are plain ints (JSON-safe), not numpy scalars
    sample = batch.models[0].probes[0].samples[5]
    assert type(sample) is int


def test_lane_masking_freezes_deactivated_lanes():
    refs = scalar_runs(200)
    batch = BatchedModel([build_sink(**p) for p in PARAMS])
    stops = [200, 60, 125, 200, 1]
    for cycle in range(200):
        if not batch.any_active:
            break
        batch.step(1)
        for lane, stop in enumerate(stops):
            if cycle + 1 == stop and batch.active[lane]:
                batch.deactivate(lane)
    assert_lanes_match(batch, refs, cycles_per_lane=stops)
    # frozen lanes hold their final port values
    for lane, stop in enumerate(stops):
        ref = build_sink(**PARAMS[lane])
        ref.step(stop)
        got = int(batch.peek("reg", "q")[lane])
        assert got == ref.block("reg").outputs["q"].value
        assert batch.models[lane].cycle == stop


def test_reset_reruns_identically():
    batch = BatchedModel([build_sink(**p) for p in PARAMS])
    batch.step(150)
    first = [list(p.samples) for m in batch.models for p in m.probes]
    batch.reset()
    assert batch.cycle == 0
    assert all(not p.samples for m in batch.models for p in m.probes)
    batch.step(150)
    second = [list(p.samples) for m in batch.models for p in m.probes]
    assert first == second


def test_poke_is_copy_on_write():
    batch = BatchedModel([build_sink(**p) for p in PARAMS])
    batch.step(10)
    before = batch.peek("reg", "q")
    batch.poke("reg", "q", 2, 0x1234)
    after = batch.peek("reg", "q")
    assert int(after[2]) == 0x1234
    others = [lane for lane in range(len(PARAMS)) if lane != 2]
    assert [int(after[i]) for i in others] == [int(before[i]) for i in others]


def test_structural_mismatch_rejected():
    a = build_sink(**PARAMS[0])
    b = build_sink(**PARAMS[1])
    extra = Model("sink")
    extra.add(Counter("cnt", width=8))
    with pytest.raises(BatchUnsupported, match="lane 1"):
        BatchedModel([a, extra])
    # value-like parameters do NOT break structural identity
    assert lockstep_signature(a) == lockstep_signature(b)


def test_wide_ports_rejected():
    def wide():
        m = Model("wide")
        c = m.add(Counter("c", width=61))
        r = m.add(Register("r", width=61))
        m.connect(c.o("q"), r.i("d"))
        return m

    with pytest.raises(BatchUnsupported, match="too wide"):
        BatchedModel([wide(), wide()])


def test_single_lane_batch():
    ref = build_sink(**PARAMS[0])
    ref.step(50)
    batch = BatchedModel([build_sink(**PARAMS[0])])
    batch.step(50)
    assert_lanes_match(batch, [ref])
