"""Gateway crash recovery and farm-cache durability.

The contract under test: a farm that crashes (SIGKILL semantics — no
drain, no goodbye) and restarts with ``--recover`` on the same journal
and cache finishes every accepted job with exactly the bytes a crash-
free farm would have produced; a damaged cache entry is never served.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.farm import (
    FarmCache,
    FarmClient,
    FarmError,
    FarmUnavailable,
    GatewayJournal,
    start_farm_thread,
)
from repro.farm.wal import EV_DONE, EV_SUBMIT
from repro.runapi.durable import QUARANTINE_DIR


def synth_payload(seconds: float = 0.0, cycles: int = 1234) -> dict:
    return {
        "design": {
            "factory": "repro.cosim.sweep:SyntheticDesign",
            "params": {"seconds": seconds, "cycles": cycles},
        }
    }


# ----------------------------------------------------------------------
# the write-ahead journal
# ----------------------------------------------------------------------
class TestGatewayJournal:
    def _journal(self, tmp_path, events):
        journal = GatewayJournal(tmp_path / "wal.jsonl")
        journal.open()
        for ev in events:
            journal.record(ev)
        journal.close()
        return journal

    def test_record_replay_round_trip(self, tmp_path):
        events = [
            {"ev": EV_SUBMIT, "id": "j1", "fingerprint": "f" * 8,
             "spec": {"kind": "simulate"}},
            {"ev": EV_DONE, "id": "j1", "cached": True},
        ]
        journal = self._journal(tmp_path, events)
        replayed = GatewayJournal(journal.path).replay()
        assert [
            {k: v for k, v in rec.items() if k != "sha"}
            for rec in replayed
        ] == events

    def test_missing_file_replays_empty(self, tmp_path):
        assert GatewayJournal(tmp_path / "absent.jsonl").replay() == []

    def test_torn_tail_stops_replay(self, tmp_path):
        journal = self._journal(tmp_path, [
            {"ev": EV_SUBMIT, "id": "j1"},
            {"ev": EV_DONE, "id": "j1"},
        ])
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "submit", "id": "j2", "trunc')  # crash mid-append
        replayed = GatewayJournal(journal.path).replay()
        assert [rec["ev"] for rec in replayed] == ["submit", "done"]

    def test_damaged_line_stops_replay(self, tmp_path):
        journal = self._journal(tmp_path, [
            {"ev": EV_SUBMIT, "id": "j1"},
            {"ev": EV_DONE, "id": "j1"},
        ])
        lines = journal.path.read_text().splitlines()
        doctored = json.loads(lines[1])
        doctored["id"] = "j9"  # flipped after sealing
        lines[1] = json.dumps(doctored)
        journal.path.write_text("\n".join(lines) + "\n")
        replayed = GatewayJournal(journal.path).replay()
        assert replayed == []  # prefix ends before the damaged line

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "notes.jsonl"
        path.write_text('{"just": "some json"}\n')
        with pytest.raises(ValueError, match="write-ahead journal"):
            GatewayJournal(path).replay()

    def test_append_survives_reopen(self, tmp_path):
        journal = self._journal(tmp_path, [{"ev": EV_SUBMIT, "id": "j1"}])
        second = GatewayJournal(journal.path)
        second.open()
        second.record({"ev": EV_DONE, "id": "j1"})
        second.close()
        replayed = GatewayJournal(journal.path).replay()
        assert [rec["ev"] for rec in replayed] == ["submit", "done"]


# ----------------------------------------------------------------------
# FarmCache durability (regression: torn entry -> miss -> re-execute)
# ----------------------------------------------------------------------
class TestFarmCacheDurability:
    def test_truncated_entry_is_miss_and_quarantined(self, tmp_path):
        cache = FarmCache(tmp_path)
        cache.put("a" * 16, b'{"result": "bytes"}')
        (entry,) = list(tmp_path.glob("*.json"))
        entry.write_bytes(entry.read_bytes()[:10])

        assert cache.get("a" * 16) is None
        assert cache.stats["quarantined"] == 1
        assert cache.quarantined() == 1
        assert not entry.exists()

    def test_bitflipped_entry_is_miss(self, tmp_path):
        cache = FarmCache(tmp_path)
        cache.put("b" * 16, b'{"result": "bytes"}')
        (entry,) = list(tmp_path.glob("*.json"))
        blob = bytearray(entry.read_bytes())
        blob[-3] ^= 0x10
        entry.write_bytes(bytes(blob))
        assert cache.get("b" * 16) is None
        assert cache.stats["quarantined.corrupt"] == 1

    def test_verify_all_sweeps_damage_in_place(self, tmp_path):
        cache = FarmCache(tmp_path)
        cache.put("c" * 16, b"intact")
        cache.put("d" * 16, b"doomed")
        entry = tmp_path / ("d" * 16 + ".json")
        entry.write_bytes(entry.read_bytes()[:8])
        assert cache.verify_all() == 1
        assert cache.quarantined() == 1
        assert cache.get("c" * 16) == b"intact"

    def test_clear_sweeps_staging_orphans(self, tmp_path):
        cache = FarmCache(tmp_path)
        cache.put("e" * 16, b"x")
        (tmp_path / "f.json.tmp.4242").write_bytes(b"orphaned staging")
        assert cache.clear() == 1
        assert cache.stats["scavenged"] == 1
        assert not list(tmp_path.glob("*.tmp.*"))
        assert len(cache) == 0

    def test_startup_scavenge_collects_stale_orphans_only(self, tmp_path):
        import os

        stale = tmp_path / "old.json.tmp.7"
        stale.write_bytes(b"")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        young = tmp_path / "new.json.tmp.8"
        young.write_bytes(b"")

        cache = FarmCache(tmp_path)
        assert cache.stats["scavenged"] == 1
        assert young.exists() and not stale.exists()

    def test_legacy_raw_entry_reads_verbatim(self, tmp_path):
        raw = b'{"pre": "envelope entry"}'
        (tmp_path / ("f" * 16 + ".json")).write_bytes(raw)
        cache = FarmCache(tmp_path)
        assert cache.get("f" * 16) == raw

    def test_farm_reexecutes_after_cache_damage(self, tmp_path):
        """End to end: damage the cached result of a completed job; a
        re-submission quarantines it, misses, and re-executes to the
        same bytes."""
        farm = start_farm_thread(
            workers=1, cache_dir=str(tmp_path / "cache")
        )
        try:
            with FarmClient(farm.host, farm.port) as client:
                payload = synth_payload(cycles=90_210)
                first = client.submit("simulate", payload, wait=True)
                assert first["state"] == "done"
                original = client.result_bytes(first["id"])

                cache_dir = tmp_path / "cache"
                (entry,) = list(cache_dir.glob("*.json"))
                entry.write_bytes(entry.read_bytes()[:-7])  # torn

                second = client.submit("simulate", payload, wait=True)
                assert second["state"] == "done"
                assert not second["cache_hit"]
                assert second["executions"] == 1  # really re-ran
                assert client.result_bytes(second["id"]) == original

                status = client.farm_status()
                assert status["cache_quarantined"] == 1
                assert status["cache_stats"]["quarantined"] == 1
            assert len(list(
                (cache_dir / QUARANTINE_DIR).iterdir()
            )) == 1
        finally:
            farm.stop()


# ----------------------------------------------------------------------
# crash + recover, end to end
# ----------------------------------------------------------------------
class TestGatewayRecovery:
    def _boot(self, tmp_path, *, recover: bool, workers: int = 2):
        return start_farm_thread(
            workers=workers,
            cache_dir=str(tmp_path / "cache"),
            journal_path=str(tmp_path / "gateway.wal"),
            recover=recover,
        )

    def test_queued_jobs_survive_crash(self, tmp_path):
        farm = self._boot(tmp_path, recover=False)
        ids = {}
        try:
            with FarmClient(farm.host, farm.port) as client:
                # one long job occupies the pool; the rest stay queued
                for i in range(6):
                    doc = client.submit(
                        "simulate",
                        synth_payload(
                            seconds=0.5 if i < 2 else 0.0,
                            cycles=40_000 + i,
                        ),
                    )
                    ids[i] = doc["id"]
        finally:
            farm.crash()

        recovered = self._boot(tmp_path, recover=True)
        try:
            with FarmClient(recovered.host, recovered.port) as client:
                for i, job_id in ids.items():
                    doc = client.status(job_id, wait=True, timeout_s=60)
                    assert doc["state"] == "done", (i, doc)
                    result = json.loads(
                        client.result_bytes(job_id)
                    )
                    assert result["result"]["cycles"] == 40_000 + i
                status = client.farm_status()
                metrics = status["metrics"]
                assert metrics.get("farm.recovery.requeued", 0) >= 1
                assert status["wal_records"] >= 1
        finally:
            recovered.stop()

    def test_completed_jobs_replay_from_cache_byte_identical(
        self, tmp_path
    ):
        farm = self._boot(tmp_path, recover=False)
        payload = synth_payload(cycles=777_000)
        try:
            with FarmClient(farm.host, farm.port) as client:
                doc = client.submit("simulate", payload, wait=True)
                job_id = doc["id"]
                original = client.result_bytes(job_id)
        finally:
            farm.crash()

        recovered = self._boot(tmp_path, recover=True)
        try:
            with FarmClient(recovered.host, recovered.port) as client:
                doc = client.status(job_id)
                assert doc["state"] == "done"
                assert client.result_bytes(job_id) == original
                metrics = client.farm_status()["metrics"]
                assert metrics.get("farm.recovery.replayed_done") == 1
                # and the worker pool was never touched
                resubmit = client.submit("simulate", payload, wait=True)
                assert resubmit["cache_hit"]
        finally:
            recovered.stop()

    def test_quarantined_result_reexecutes_on_recovery(self, tmp_path):
        farm = self._boot(tmp_path, recover=False)
        payload = synth_payload(cycles=31_337)
        try:
            with FarmClient(farm.host, farm.port) as client:
                doc = client.submit("simulate", payload, wait=True)
                job_id = doc["id"]
                original = client.result_bytes(job_id)
        finally:
            farm.crash()

        (entry,) = list((tmp_path / "cache").glob("*.json"))
        entry.write_bytes(entry.read_bytes()[: len(entry.read_bytes()) // 2])

        recovered = self._boot(tmp_path, recover=True)
        try:
            with FarmClient(recovered.host, recovered.port) as client:
                doc = client.status(job_id, wait=True, timeout_s=60)
                assert doc["state"] == "done"
                assert client.result_bytes(job_id) == original
                metrics = client.farm_status()["metrics"]
                assert metrics.get("farm.recovery.reexecuted") == 1
        finally:
            recovered.stop()

    def test_sharded_job_resumes_missing_units_only(self, tmp_path):
        """A sweep interrupted by the crash re-runs only what the WAL
        does not already hold, and merges byte-identically."""
        points = [
            {
                "factory": "repro.cosim.sweep:SyntheticDesign",
                "params": {"seconds": 0.08, "cycles": 5_000 + k},
            }
            for k in range(6)
        ]
        payload = {"points": points}

        reference = start_farm_thread(
            workers=2, cache_dir=str(tmp_path / "refcache")
        )
        try:
            with FarmClient(reference.host, reference.port) as client:
                doc = client.submit("sweep", payload, wait=True,
                                    timeout_s=120)
                expected = client.result_bytes(doc["id"])
        finally:
            reference.stop()

        farm = self._boot(tmp_path, recover=False)
        try:
            with FarmClient(farm.host, farm.port) as client:
                doc = client.submit("sweep", payload)
                job_id = doc["id"]
                time.sleep(0.35)  # let some units complete + journal
        finally:
            farm.crash()

        recovered = self._boot(tmp_path, recover=True)
        try:
            with FarmClient(recovered.host, recovered.port) as client:
                doc = client.status(job_id, wait=True, timeout_s=120)
                assert doc["state"] == "done"
                assert client.result_bytes(job_id) == expected
        finally:
            recovered.stop()

    def test_failed_jobs_stay_failed_after_recovery(self, tmp_path):
        farm = self._boot(tmp_path, recover=False)
        try:
            with FarmClient(farm.host, farm.port) as client:
                doc = client.submit("sweep", {"points": []}, wait=True)
                job_id = doc["id"]
                assert doc["state"] == "failed"
        finally:
            farm.crash()

        recovered = self._boot(tmp_path, recover=True)
        try:
            with FarmClient(recovered.host, recovered.port) as client:
                doc = client.status(job_id)
                assert doc["state"] == "failed"
                metrics = client.farm_status()["metrics"]
                assert metrics.get("farm.recovery.failed") == 1
        finally:
            recovered.stop()

    def test_recover_requires_journal(self):
        from repro.farm.gateway import FarmGateway

        with pytest.raises(ValueError, match="journal_path"):
            FarmGateway(workers=1, recover=True)


# ----------------------------------------------------------------------
# client resilience (typed errors, idempotent retries)
# ----------------------------------------------------------------------
def _dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestClientResilience:
    def test_unreachable_gateway_raises_typed_error(self):
        client = FarmClient("127.0.0.1", _dead_port())
        with pytest.raises(FarmUnavailable) as err:
            client.farm_status()
        assert err.value.status == 0
        assert "unreachable" in str(err.value)
        assert isinstance(err.value, FarmError)  # typed, not a socket error

    def test_retries_respect_deadline(self):
        client = FarmClient(
            "127.0.0.1", _dead_port(),
            retries=1_000, backoff_s=0.01, deadline_s=0.3,
        )
        start = time.monotonic()
        with pytest.raises(FarmUnavailable):
            client.farm_status()
        assert time.monotonic() - start < 5.0

    def test_retry_succeeds_after_dropped_response(self, tmp_path):
        """One-shot response drop (the chaos harness's conn_drop): a
        retrying client resubmits idempotently and still gets the
        result."""
        from repro.farm import httpio

        farm = start_farm_thread(
            workers=1, cache_dir=str(tmp_path / "cache")
        )
        try:
            fired = []

            def fault(request, response):
                httpio.set_response_fault(None)
                fired.append(request.path)
                return ("drop", 0)

            httpio.set_response_fault(fault)
            with FarmClient(
                farm.host, farm.port, retries=4, backoff_s=0.01
            ) as client:
                doc = client.submit(
                    "simulate", synth_payload(cycles=246_810), wait=True
                )
            assert doc["state"] == "done"
            assert fired  # the fault really hit this exchange
        finally:
            httpio.set_response_fault(None)
            farm.stop()

    def test_truncated_response_retries(self, tmp_path):
        from repro.farm import httpio

        farm = start_farm_thread(
            workers=1, cache_dir=str(tmp_path / "cache")
        )
        try:
            def fault(request, response):
                httpio.set_response_fault(None)
                return ("truncate", max(1, len(response) // 2))

            httpio.set_response_fault(fault)
            with FarmClient(
                farm.host, farm.port, retries=4, backoff_s=0.01
            ) as client:
                status = client.farm_status()
            assert status["workers"]["total"] == 1
        finally:
            httpio.set_response_fault(None)
            farm.stop()

    def test_load_shedding_becomes_typed_after_retries(self, tmp_path):
        farm = start_farm_thread(
            workers=1,
            cache_dir=str(tmp_path / "cache"),
            max_queue=0,  # shed everything
        )
        try:
            with FarmClient(
                farm.host, farm.port, retries=2, backoff_s=0.01
            ) as client:
                with pytest.raises(FarmUnavailable) as err:
                    client.submit("simulate", synth_payload())
            assert err.value.status == 503
        finally:
            farm.stop()

    def test_default_client_keeps_plain_503_behavior(self, tmp_path):
        farm = start_farm_thread(
            workers=1,
            cache_dir=str(tmp_path / "cache"),
            max_queue=0,
        )
        try:
            with FarmClient(farm.host, farm.port) as client:
                with pytest.raises(FarmError) as err:
                    client.submit("simulate", synth_payload())
            assert err.value.status == 503
            assert not isinstance(err.value, FarmUnavailable)
        finally:
            farm.stop()
