"""``mb32-dse`` CLI error paths: every malformed input must exit
non-zero with a one-line diagnostic — never a traceback."""

import json

import pytest

from repro.cli import _load_sweep_spec, dse_main


def _spec_file(tmp_path, payload) -> str:
    path = tmp_path / "sweep.json"
    text = payload if isinstance(payload, str) else json.dumps(payload)
    path.write_text(text)
    return str(path)


def _run(args, capsys):
    rc = dse_main(args)
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    assert "Traceback" not in captured.out
    return rc, captured


def test_malformed_json_exits_2(tmp_path, capsys):
    rc, captured = _run([_spec_file(tmp_path, "{not json!")], capsys)
    assert rc == 2
    assert "spec error" in captured.err


def test_missing_file_exits_2(tmp_path, capsys):
    rc, captured = _run([str(tmp_path / "nope.json")], capsys)
    assert rc == 2
    assert "spec error" in captured.err


def test_non_object_spec_exits_2(tmp_path, capsys):
    rc, captured = _run([_spec_file(tmp_path, [1, 2, 3])], capsys)
    assert rc == 2
    assert "JSON object" in captured.err


def test_points_must_be_a_list(tmp_path, capsys):
    spec = {"points": {"name": "x", "factory": "m:f"}}
    rc, captured = _run([_spec_file(tmp_path, spec)], capsys)
    assert rc == 2
    assert '"points" must be a JSON array' in captured.err


def test_point_entries_must_be_objects(tmp_path, capsys):
    spec = {"points": ["just-a-string"]}
    rc, captured = _run([_spec_file(tmp_path, spec)], capsys)
    assert rc == 2
    assert '"points"[0]' in captured.err
    assert "str" in captured.err


def test_point_missing_required_key(tmp_path, capsys):
    spec = {"points": [{"name": "incomplete"}]}
    rc, captured = _run([_spec_file(tmp_path, spec)], capsys)
    assert rc == 2
    assert "missing required key" in captured.err


def test_zero_point_sweep_exits_2(tmp_path, capsys):
    rc, captured = _run([_spec_file(tmp_path, {"points": []})], capsys)
    assert rc == 2
    assert "no design points" in captured.err


def test_generate_must_be_an_object(tmp_path, capsys):
    spec = {"generate": ["cordic"]}
    rc, captured = _run([_spec_file(tmp_path, spec)], capsys)
    assert rc == 2
    assert '"generate" must be a JSON object' in captured.err


def test_unknown_generate_app_exits_2(tmp_path, capsys):
    spec = {"generate": {"app": "quantum"}}
    rc, captured = _run([_spec_file(tmp_path, spec)], capsys)
    assert rc == 2
    assert "quantum" in captured.err


def test_unknown_factory_module_fails_cleanly(tmp_path, capsys):
    spec = {"points": [{"name": "ghost",
                        "factory": "no.such.module:Design",
                        "params": {}}]}
    rc, captured = _run([_spec_file(tmp_path, spec), "--quiet"], capsys)
    assert rc == 1  # report written, point marked error
    assert "error" in captured.out
    assert "No module named" in captured.out


def test_bad_factory_format_fails_cleanly(tmp_path, capsys):
    spec = {"points": [{"name": "nocolon",
                        "factory": "module.with.no.callable",
                        "params": {}}]}
    rc, captured = _run([_spec_file(tmp_path, spec), "--quiet"], capsys)
    assert rc == 1
    assert "module.path:callable" in captured.out


def test_loader_validates_directly(tmp_path):
    with pytest.raises(ValueError, match='"points"\\[1\\]'):
        _load_sweep_spec(_spec_file(
            tmp_path,
            {"points": [{"name": "ok", "factory": "m:f"}, 42]}))
