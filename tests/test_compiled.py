"""Compiled-schedule engine: selection surface and bit-exact
equivalence with the per-cycle interpreter.

The "zoo" model used throughout wires one instance of (almost) every
block type into a single design — pipelined arithmetic, literal-guarded
registers, FIFOs/RAM/ROM with non-power-of-two sizes, FSL endpoints
with real channel traffic, and an OPB register bank poked between
cycles — and is driven by a stateless pseudo-random stimulus so a run
can be reproduced (or resumed from a checkpoint) from the cycle index
alone.
"""

from __future__ import annotations

import pytest

from repro.bus.fsl import FSLChannel
from repro.sysgen import Model
from repro.sysgen.block import CombBlock
from repro.sysgen.blocks import (
    FIFO,
    RAM,
    ROM,
    Accumulator,
    Add,
    AddSub,
    Concat,
    Constant,
    Convert,
    Counter,
    Delay,
    FSLRead,
    FSLWrite,
    GatewayIn,
    GatewayOut,
    Inverter,
    Logical,
    Mult,
    Mux,
    Negate,
    OPBRegisterBank,
    Register,
    Relational,
    Shift,
    Slice,
    Sub,
)
from repro.sysgen.compiled import interpreter_forced


def build_zoo():
    """One model exercising every emit() path plus the channels that
    feed it.  Returns ``(model, (g1, g2, ctl), (ch_in, ch_out), bank)``.
    """
    m = Model("zoo")
    g1 = m.add(GatewayIn("g1", width=16))
    g2 = m.add(GatewayIn("g2", width=16))
    ctl = m.add(GatewayIn("ctl", width=4))
    bits = []
    for k in range(4):
        s = m.add(Slice(f"ctl{k}", msb=k, lsb=k))
        m.connect(ctl.o("out"), s.i("a"))
        bits.append(s)

    add = m.add(Add("add", width=16))
    m.connect(g1.o("out"), add.i("a"))
    m.connect(g2.o("out"), add.i("b"))
    sub = m.add(Sub("sub", width=16, latency=1))
    m.connect(g1.o("out"), sub.i("a"))
    m.connect(g2.o("out"), sub.i("b"))
    addsub = m.add(AddSub("addsub", width=16, latency=1))
    m.connect(g1.o("out"), addsub.i("a"))
    m.connect(g2.o("out"), addsub.i("b"))
    m.connect(bits[0].o("out"), addsub.i("sub"))
    mult = m.add(Mult("mult", 16, 16, latency=2))
    m.connect(g1.o("out"), mult.i("a"))
    m.connect(g2.o("out"), mult.i("b"))
    neg = m.add(Negate("neg", width=16))
    m.connect(g2.o("out"), neg.i("a"))
    shl = m.add(Shift("shl", width=16, amount=3, direction="left"))
    m.connect(g1.o("out"), shl.i("a"))
    sar = m.add(Shift("sar", width=16, amount=2, direction="right",
                      arithmetic=True))
    m.connect(g2.o("out"), sar.i("a"))
    conv = m.add(Convert("conv", in_width=16, in_frac=8, out_width=8,
                         out_frac=4, latency=1))
    m.connect(g1.o("out"), conv.i("in"))
    acc = m.add(Accumulator("acc", width=16))
    m.connect(g2.o("out"), acc.i("d"))
    ctr = m.add(Counter("ctr", width=8, step=3))
    k = m.add(Constant("k", 0x1F, width=16))

    reg = m.add(Register("reg", width=16, init=7))
    m.connect(add.o("s"), reg.i("d"))
    m.connect(bits[1].o("out"), reg.i("en"))
    m.connect(bits[2].o("out"), reg.i("rst"))
    dly = m.add(Delay("dly", width=16, n=3))
    m.connect(sub.o("d"), dly.i("d"))
    fifo = m.add(FIFO("fifo", width=16, depth=3))
    m.connect(mult.o("p"), fifo.i("din"))
    m.connect(bits[0].o("out"), fifo.i("push"))
    m.connect(bits[3].o("out"), fifo.i("pop"))
    ram = m.add(RAM("ram", depth=5, width=16))
    m.connect(ctr.o("q"), ram.i("addr"))
    m.connect(g1.o("out"), ram.i("din"))
    m.connect(bits[1].o("out"), ram.i("we"))
    rom = m.add(ROM("rom", contents=[3, 1, 4, 1, 5], width=16))
    m.connect(ctr.o("q"), rom.i("addr"))

    mux = m.add(Mux("mux", width=16, n=3))
    m.connect(ctr.o("q"), mux.i("sel"))
    m.connect(add.o("s"), mux.i("d0"))
    m.connect(rom.o("data"), mux.i("d1"))
    m.connect(k.o("out"), mux.i("d2"))
    rel = m.add(Relational("rel", width=16, op="le", signed=True))
    m.connect(g1.o("out"), rel.i("a"))
    m.connect(g2.o("out"), rel.i("b"))
    lg = m.add(Logical("lg", width=16, op="xnor"))
    m.connect(add.o("s"), lg.i("d0"))
    m.connect(shl.o("s"), lg.i("d1"))
    inv = m.add(Inverter("inv", width=16))
    m.connect(mux.o("out"), inv.i("a"))
    cat = m.add(Concat("cat", widths=[8, 8]))
    m.connect(conv.o("out"), cat.i("d0"))
    m.connect(ctr.o("q"), cat.i("d1"))
    go = m.add(GatewayOut("go", width=16))
    m.connect(lg.o("out"), go.i("in"))

    rd = m.add(FSLRead("rd"))
    m.connect(bits[2].o("out"), rd.i("read"))
    wr = m.add(FSLWrite("wr"))
    m.connect(dly.o("q"), wr.i("data"))
    m.connect(rd.o("exists"), wr.i("write"))
    m.connect(rd.o("control"), wr.i("control"))
    ch_in = FSLChannel(depth=4, name="to_hw")
    ch_out = FSLChannel(depth=4, name="from_hw")
    rd.bind(ch_in)
    wr.bind(ch_out)

    bank = m.add(OPBRegisterBank("bank", n_command=2, n_status=1))
    m.connect(inv.o("out"), bank.i("sts0"))

    m.probe(add.o("s"))
    m.probe(reg.o("q"))
    m.probe(fifo.o("count"))
    m.probe(go.o("out"))
    m.probe(wr.o("full"))
    return m, (g1, g2, ctl), (ch_in, ch_out), bank


def _stim(i: int) -> int:
    """Stateless per-cycle stimulus word (resumable from any cycle)."""
    return (i * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF


def _apply(i, gates, chans, bank) -> None:
    g1, g2, ctl = gates
    ch_in, ch_out = chans
    x = _stim(i)
    g1.drive_raw(x & 0xFFFF)
    g2.drive_raw((x >> 7) & 0xFFFF)
    ctl.drive_raw((x >> 16) & 0xF)
    if i % 5 == 0:
        ch_in.push(x, bool(x & 1))
    if i % 9 == 0 and ch_out.exists:
        ch_out.pop()
    if i % 13 == 0:
        bank.opb_write(((i // 13) % 2) * 4, x)


def _snapshot(m, chans):
    return (m.state_dict(), [ch.state_dict() for ch in chans])


def _run_zoo(force_interp: bool, cycles: int):
    m, gates, chans, bank = build_zoo()
    m.force_interpreter = force_interp
    if force_interp:
        assert m.engine == "interpreter"
    elif not interpreter_forced():
        assert m.engine == "compiled"
    for i in range(cycles):
        _apply(i, gates, chans, bank)
        m.step()
    return _snapshot(m, chans)


# ----------------------------------------------------------------------
# Engine selection surface
# ----------------------------------------------------------------------
def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_SYSGEN_INTERP", "1")
    m = Model()
    m.add(Counter("c", width=4))
    assert m.engine == "interpreter"
    assert m.compiled_source is None
    monkeypatch.setenv("REPRO_SYSGEN_INTERP", "0")  # falsey spelling
    m2 = Model()
    m2.add(Counter("c", width=4))
    assert m2.engine == "compiled"


def test_force_interpreter_attribute(monkeypatch):
    monkeypatch.delenv("REPRO_SYSGEN_INTERP", raising=False)
    m = Model()
    m.add(Counter("c", width=4))
    m.force_interpreter = True
    assert m.engine == "interpreter"
    assert m.compiled_source is None


def test_compiled_source_is_inspectable(monkeypatch):
    monkeypatch.delenv("REPRO_SYSGEN_INTERP", raising=False)
    m, _, _, _ = build_zoo()
    src = m.compiled_source
    assert src is not None
    assert "def _step" in src and "def _settle" in src
    # every block participates in the generated program
    assert m.engine == "compiled"


# ----------------------------------------------------------------------
# Equivalence
# ----------------------------------------------------------------------
def test_engines_bit_identical():
    assert _run_zoo(False, 300) == _run_zoo(True, 300)


def test_step_batching_matches_per_cycle(monkeypatch):
    monkeypatch.delenv("REPRO_SYSGEN_INTERP", raising=False)
    runs = []
    for batched in (True, False):
        m, gates, chans, bank = build_zoo()
        for i in range(40):
            _apply(i, gates, chans, bank)
            m.step()
        if batched:
            m.step(60)
        else:
            for _ in range(60):
                m.step()
        runs.append(_snapshot(m, chans))
    assert runs[0] == runs[1]


def test_probe_added_mid_run(sysgen_engine):
    m = Model()
    c = m.add(Counter("c", width=8))
    m.step(3)
    p = m.probe(c.o("q"))
    m.step(4)
    assert p.samples == [3, 4, 5, 6]


def test_reset_rerun_bit_identical(sysgen_engine):
    m, gates, chans, bank = build_zoo()
    runs = []
    for _ in range(2):
        for i in range(60):
            _apply(i, gates, chans, bank)
            m.step()
        runs.append(_snapshot(m, chans))
        m.reset()
        for ch in chans:
            ch.reset(reset_stats=True)
    assert runs[0] == runs[1]


def test_checkpoint_across_engine_switch():
    """Save under one engine, restore and continue under the other —
    both orders — and land bit-identical with an uninterrupted run."""
    reference = _run_zoo(False, 240)
    assert reference == _run_zoo(True, 240)
    for first, second in ((False, True), (True, False)):
        m1, gates1, chans1, bank1 = build_zoo()
        m1.force_interpreter = first
        for i in range(120):
            _apply(i, gates1, chans1, bank1)
            m1.step()
        saved_model, saved_chans = _snapshot(m1, chans1)

        m2, gates2, chans2, bank2 = build_zoo()
        m2.force_interpreter = second
        m2.load_state(saved_model)
        for ch, payload in zip(chans2, saved_chans):
            ch.load_state(payload)
        for i in range(120, 240):
            _apply(i, gates2, chans2, bank2)
            m2.step()
        assert _snapshot(m2, chans2) == reference, (
            f"engine switch {first}->{second} diverged"
        )


# ----------------------------------------------------------------------
# Fallback dispatch and event hooks
# ----------------------------------------------------------------------
class _XorFold(CombBlock):
    """A user block with no emit() — must run through the interpreter
    fallback inside an otherwise compiled schedule."""

    def __init__(self, name):
        super().__init__(name)
        self.add_input("a")
        self.add_output("out", 16)

    def evaluate(self):
        v = self.in_value("a") & 0xFFFF
        self.outputs["out"].value = (v ^ (v >> 3)) & 0xFFFF


def _fallback_model():
    m = Model("fb")
    c = m.add(Counter("c", width=16))
    x = m.add(_XorFold("x"))
    r = m.add(Register("r", width=16))
    m.connect(c.o("q"), x.i("a"))
    m.connect(x.o("out"), r.i("d"))
    m.probe(r.o("q"))
    return m


def test_fallback_block_in_compiled_schedule(monkeypatch):
    monkeypatch.delenv("REPRO_SYSGEN_INTERP", raising=False)
    m1 = _fallback_model()
    assert m1.engine == "compiled"  # fallback splices, doesn't disable
    m1.step(50)
    m2 = _fallback_model()
    m2.force_interpreter = True
    m2.step(50)
    assert m1.state_dict() == m2.state_dict()


class _Recorder:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def test_fsl_telemetry_events_identical():
    """BLOCK_FIRE events from FSL endpoints (emitted from inside the
    generated clock section) match the interpreter's exactly."""
    runs = []
    for force in (False, True):
        m, gates, chans, bank = build_zoo()
        m.force_interpreter = force
        rec = _Recorder()
        for b in (m.block("rd"), m.block("wr")):
            b.events = rec
        for i in range(120):
            _apply(i, gates, chans, bank)
            m.step()
        runs.append(rec.events)
    assert runs[0] == runs[1]
    assert runs[0], "stimulus never fired an FSL endpoint (vacuous)"
