"""Stability tests for the public fingerprint + backoff APIs.

Two kinds of persistent state are keyed on these digests: the sweep
engine's on-disk result cache and the farm's content-addressed job
cache.  The digests below are **pinned**: if any of these assertions
fail, the hash recipe changed and every existing cache entry silently
became unreachable (or worse, ambiguous).  Bump
``FINGERPRINT_VERSION`` — with a migration story — instead of editing
the expected values.
"""

from __future__ import annotations

import pytest

from repro.cosim.partition import DesignSpec
from repro.cosim.sweep import point_fingerprint
from repro.cosim.sweep import retry_backoff_delay as sweep_backoff
from repro.runapi import (
    FINGERPRINT_VERSION,
    canonical_json,
    design_fingerprint,
    fingerprint_json,
    retry_backoff_delay,
)

# ----------------------------------------------------------------------
# pinned digests — DO NOT update these to make a failing test pass
# ----------------------------------------------------------------------
PINNED_JSON = (
    "c254047a01ea9a9bad2d3db8afd4facf207b930d904be174f17cd02062947732"
)
PINNED_SYNTHETIC = (
    "49c0c40a74b65020e6836f6d67a51405f9cc9ae29ee5febe7f10d2eb422e6d4f"
)
PINNED_CORDIC = (
    "677e7979faee360abedec1f2928cba23d846eafb0c0ea71539320e5660a4cd7a"
)
PINNED_BACKOFF = [0.357567646257, 1.129310613002, 2.762128700812]


def test_fingerprint_version_is_pinned():
    assert FINGERPRINT_VERSION == 1


def test_canonical_json_form():
    assert canonical_json({"b": 2, "a": [1, {"z": None}]}) == \
        '{"a":[1,{"z":null}],"b":2}'


def test_fingerprint_json_pinned_digest():
    assert fingerprint_json(
        {"kind": "scenario", "payload": {"seed": 0, "index": 3}}
    ) == PINNED_JSON


def test_fingerprint_json_is_order_insensitive():
    assert fingerprint_json(
        {"payload": {"index": 3, "seed": 0}, "kind": "scenario"}
    ) == PINNED_JSON


def test_fingerprint_json_distinguishes_payloads():
    assert fingerprint_json({"kind": "scenario", "payload": {"seed": 1}}) \
        != fingerprint_json({"kind": "scenario", "payload": {"seed": 2}})


def _synthetic_spec():
    return DesignSpec(
        name="pin",
        factory="repro.cosim.sweep:SyntheticDesign",
        params={"seconds": 0.01, "cycles": 1234},
    )


def test_design_fingerprint_pinned_synthetic():
    spec = _synthetic_spec()
    assert design_fingerprint(spec, spec.build()) == PINNED_SYNTHETIC


def test_design_fingerprint_pinned_with_program_image():
    """Covers the program-image + cpu-config arms of the recipe: a
    drifting assembler/linker output or CPUConfig repr also breaks
    cache keys, and should be caught here, not in production."""
    spec = DesignSpec(
        name="cordic-pin",
        factory="repro.apps.cordic.design:CordicDesign",
        params={"p": 1, "iters": 8, "ndata": 4},
    )
    assert design_fingerprint(spec, spec.build()) == PINNED_CORDIC


def test_sweep_point_fingerprint_is_the_public_recipe():
    """The sweep cache and the farm cache must key identically."""
    spec = _synthetic_spec()
    instance = spec.build()
    assert point_fingerprint(spec, instance) == \
        design_fingerprint(spec, instance)


def test_param_order_does_not_change_design_fingerprint():
    a = DesignSpec(name="p", factory="repro.cosim.sweep:SyntheticDesign",
                   params={"seconds": 0.01, "cycles": 1234})
    b = DesignSpec(name="p", factory="repro.cosim.sweep:SyntheticDesign",
                   params={"cycles": 1234, "seconds": 0.01})
    assert design_fingerprint(a, a.build()) == \
        design_fingerprint(b, b.build())


# ----------------------------------------------------------------------
# the shared backoff policy
# ----------------------------------------------------------------------
def test_backoff_schedule_pinned():
    got = [retry_backoff_delay(0.5, "pin-point", a, seed=7)
           for a in (1, 2, 3)]
    assert got == pytest.approx(PINNED_BACKOFF, abs=1e-9)


def test_backoff_sweep_alias_is_the_shared_policy():
    assert sweep_backoff is retry_backoff_delay


def test_backoff_zero_base_never_sleeps():
    assert retry_backoff_delay(0.0, "x", 5, seed=3) == 0.0


def test_backoff_is_exponential_within_jitter():
    for attempt in (1, 2, 3, 4):
        d = retry_backoff_delay(1.0, "unit", attempt, seed=0)
        lo = 2 ** (attempt - 1) * 0.5
        hi = 2 ** (attempt - 1) * 1.5
        assert lo <= d < hi
