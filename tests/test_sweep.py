"""Tests for the parallel fault-tolerant design-space sweep engine.

Covers cache hit/miss behavior, structured failure statuses (a
deadlocking point must not kill the sweep), parallel/sequential result
equality, per-point timeouts, bounded retry and the deprecated
``explore()`` shim.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.apps.cordic.design import cordic_design_specs
from repro.cosim import CoSimulation, MicroBlazeBlock
from repro.cosim.dse import (
    STATUS_DEADLOCK,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SELF_CHECK,
    STATUS_TIMEOUT,
    explore,
)
from repro.cosim.environment import CoSimTimeout, run_timeout
from repro.cosim.partition import DesignSpec, PartitionKind
from repro.cosim.sweep import (
    SweepCache,
    point_fingerprint,
    sweep,
    synthetic_specs,
)
from repro.mcc import build_executable
from repro.runapi import RunPolicy
from repro.resources.estimator import estimate_design
from repro.sysgen import Model


# ----------------------------------------------------------------------
# Module-level design factories (picklable for worker processes)
# ----------------------------------------------------------------------
def _cosim(source: str) -> tuple:
    model = Model("sweep_fixture")
    mb = MicroBlazeBlock(model)
    mb.master_fsl(0)  # FSLRead with read tied low: nobody ever drains
    program = build_executable(source)
    return program, model, mb


class DeadlockDesign:
    """Software keeps writing an FSL nobody drains — the classic FIFO
    overflow deadlock the paper warns about."""

    SOURCE = "int main(void) { while (1) { putfsl(1, 0); } return 0; }"

    def __init__(self):
        self.program, self.model, self.mb = _cosim(self.SOURCE)

    def run(self):
        return CoSimulation(self.program, self.model, self.mb).run()

    def estimate(self):
        return estimate_design(program=self.program,
                               n_fsl_links=self.mb.n_links)


class SpinDesign:
    """Runs forever while retiring instructions: never deadlocks, only
    a wall-clock budget stops it."""

    SOURCE = "int main(void) { while (1) { } return 0; }"

    def __init__(self):
        self.program, self.model, self.mb = _cosim(self.SOURCE)

    def run(self):
        return CoSimulation(self.program, self.model, self.mb).run()

    def estimate(self):
        return estimate_design(program=self.program)


class FailingDesign:
    """Completes but fails its self-check (nonzero exit code)."""

    def __init__(self):
        from repro.apps.common import run_software_only

        self._run = run_software_only
        self.program = build_executable("int main(void) { return 3; }")

    def run(self):
        result, _ = self._run(self.program)
        return result

    def estimate(self):
        return estimate_design(program=self.program)


class FlakyDesign:
    """Raises on the first attempt (recorded via a marker file), then
    succeeds — exercises the bounded-retry path across processes."""

    def __init__(self, marker: str):
        self.marker = pathlib.Path(marker)
        self.program = build_executable("int main(void) { return 0; }")

    def run(self):
        from repro.apps.common import run_software_only

        if not self.marker.exists():
            self.marker.write_text("tried")
            raise RuntimeError("transient failure (first attempt)")
        result, _ = run_software_only(self.program)
        return result

    def estimate(self):
        return estimate_design(program=self.program)


def _spec(cls, name: str, **params) -> DesignSpec:
    return DesignSpec(
        name=name, factory=f"{__name__}:{cls.__name__}", params=params
    )


TINY = dict(iters=8, ndata=8)


# ----------------------------------------------------------------------
# Statuses: failures are data, not sweep-killing exceptions
# ----------------------------------------------------------------------
class TestSweepStatuses:
    def test_deadlock_and_failure_do_not_kill_the_sweep(self):
        points = [
            cordic_design_specs(ps=(2,), **TINY)[0],
            _spec(DeadlockDesign, "deadlocker"),
            _spec(FailingDesign, "self-check-fail"),
        ]
        report = sweep(points, workers=0)
        statuses = {r.point.name: r.status for r in report.results}
        assert statuses["cordic-p2-8it"] == STATUS_OK
        assert statuses["deadlocker"] == STATUS_DEADLOCK
        assert statuses["self-check-fail"] == STATUS_SELF_CHECK
        healthy = report.results[0]
        assert healthy.ok and healthy.cycles > 0
        assert healthy.estimate is not None
        deadlocked = report.results[1]
        assert "FSL occupancies" in deadlocked.error
        assert deadlocked.result is None
        failed = report.results[2]
        assert "exit code 3" in failed.error
        assert report.failed == report.results[1:]

    def test_timeout_status_in_process(self):
        report = sweep([_spec(SpinDesign, "spinner")], workers=0,
                       timeout_s=0.05)
        (r,) = report.results
        assert r.status == STATUS_TIMEOUT
        assert "wall-clock budget" in r.error

    def test_timeout_kills_hung_parallel_worker(self):
        report = sweep(
            [_spec(SpinDesign, "spinner")],
            workers=1, timeout_s=0.05, kill_grace_s=30.0,
        )
        (r,) = report.results
        assert r.status == STATUS_TIMEOUT

    def test_build_failure_reported_as_error(self):
        bad = DesignSpec(name="bad", factory="repro.nosuch:Thing")
        report = sweep([bad], workers=0)
        assert report.results[0].status == "error"
        assert "build failed" in report.results[0].error

    def test_retry_recovers_transient_failures(self, tmp_path):
        marker = tmp_path / "tried"
        flaky = _spec(FlakyDesign, "flaky", marker=str(marker))
        report = sweep([flaky], workers=0, retries=1)
        (r,) = report.results
        assert r.ok and r.attempts == 2

    def test_no_retry_for_deterministic_failures(self):
        report = sweep([_spec(DeadlockDesign, "deadlocker")], workers=0,
                       retries=3)
        assert report.results[0].attempts == 1


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestSweepCache:
    def test_cache_miss_then_hit(self, tmp_path):
        specs = cordic_design_specs(ps=(0, 2), **TINY)
        cold = sweep(specs, workers=0, cache_dir=tmp_path)
        warm = sweep(specs, workers=0, cache_dir=tmp_path)
        assert [r.cache_hit for r in cold.results] == [False, False]
        assert [r.cache_hit for r in warm.results] == [True, True]
        assert [r.cycles for r in cold.results] == \
            [r.cycles for r in warm.results]
        assert [r.slices for r in cold.results] == \
            [r.slices for r in warm.results]
        assert warm.cache_hits == 2
        assert len(SweepCache(tmp_path)) == 2

    def test_changed_point_misses(self, tmp_path):
        sweep(cordic_design_specs(ps=(2,), **TINY), workers=0,
              cache_dir=tmp_path)
        other = sweep(cordic_design_specs(ps=(2,), iters=12, ndata=8),
                      workers=0, cache_dir=tmp_path)
        assert other.results[0].cache_hit is False

    def test_failures_are_not_cached(self, tmp_path):
        sweep([_spec(DeadlockDesign, "deadlocker")], workers=0,
              cache_dir=tmp_path)
        assert len(SweepCache(tmp_path)) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        specs = cordic_design_specs(ps=(2,), **TINY)
        report = sweep(specs, workers=0, cache_dir=tmp_path)
        entry = tmp_path / f"{report.results[0].fingerprint}.json"
        entry.write_text("{not json")
        again = sweep(specs, workers=0, cache_dir=tmp_path)
        assert again.results[0].status == STATUS_OK
        assert again.results[0].cache_hit is False

    def test_fingerprint_depends_on_cpu_config(self):
        a, = cordic_design_specs(ps=(2,), **TINY)
        b, = cordic_design_specs(
            ps=(2,), cpu_config={"use_hw_multiplier": False}, **TINY
        )
        fa = point_fingerprint(a, a.build())
        fb = point_fingerprint(b, b.build())
        assert fa != fb


# ----------------------------------------------------------------------
# Parallel vs sequential
# ----------------------------------------------------------------------
class TestParallelSweep:
    def test_parallel_matches_sequential(self):
        specs = cordic_design_specs(ps=(0, 2, 4), **TINY)
        seq = sweep(specs, workers=0)
        par = sweep(specs, workers=4)
        assert [r.point.name for r in par.results] == \
            [r.point.name for r in seq.results]
        assert [r.cycles for r in par.results] == \
            [r.cycles for r in seq.results]
        assert [r.status for r in par.results] == \
            [r.status for r in seq.results]
        assert [r.slices for r in par.results] == \
            [r.slices for r in seq.results]

    def test_workers_overlap_wait_bound_points(self):
        specs = synthetic_specs(4, seconds=0.2)
        seq = sweep(specs, workers=0)
        par = sweep(specs, workers=4)
        assert par.wall_seconds < seq.wall_seconds / 1.5

    def test_failures_isolated_to_their_worker(self):
        points = [
            _spec(DeadlockDesign, "deadlocker"),
            *cordic_design_specs(ps=(2,), **TINY),
            _spec(FailingDesign, "self-check-fail"),
        ]
        report = sweep(points, workers=2)
        assert [r.status for r in report.results] == \
            [STATUS_DEADLOCK, STATUS_OK, STATUS_SELF_CHECK]

    def test_design_points_rejected_in_parallel_mode(self):
        from repro.apps.cordic.design import cordic_design_points

        with pytest.raises(TypeError, match="DesignSpec"):
            sweep(cordic_design_points(ps=(0,)), workers=2)

    def test_progress_callback(self):
        events = []
        specs = synthetic_specs(3, seconds=0.01)
        sweep(specs, workers=2, progress=events.append)
        assert len(events) == 3
        assert events[-1].done == 3 and events[-1].total == 3
        assert events[-1].cycles_done > 0
        assert events[-1].cycles_per_second >= 0


# ----------------------------------------------------------------------
# The run-with-timeout hook
# ----------------------------------------------------------------------
class TestRunTimeout:
    def test_ambient_budget_raises(self):
        design = SpinDesign()
        with pytest.raises(CoSimTimeout, match="wall-clock budget"):
            with run_timeout(0.05):
                design.run()

    def test_explicit_argument_wins(self):
        program, model, mb = _cosim("int main(void) { return 0; }")
        with run_timeout(0.0):
            # a generous explicit budget overrides the ambient zero
            result = CoSimulation(program, model, mb).run(
                policy=RunPolicy(wall_timeout_s=60.0)
            )
        assert result.exit_code == 0

    def test_budget_restored_after_block(self):
        program, model, mb = _cosim("int main(void) { return 0; }")
        with run_timeout(0.05):
            pass
        assert CoSimulation(program, model, mb).run().exit_code == 0


# ----------------------------------------------------------------------
# Spec round trips and the deprecated shim
# ----------------------------------------------------------------------
class TestSpecsAndShim:
    def test_spec_json_round_trip(self):
        spec = cordic_design_specs(ps=(4,), **TINY)[0]
        clone = DesignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.kind is PartitionKind.HW_ACCELERATED

    def test_explore_shim_deprecation_and_ordering(self):
        specs = cordic_design_specs(ps=(0, 2), **TINY)
        with pytest.warns(DeprecationWarning, match="sweep"):
            results = explore(specs)
        # fastest first: the P=2 pipeline beats pure software
        assert [r.point.name for r in results] == \
            ["cordic-p2-8it", "cordic-sw-8it"]
        assert all(r.ok for r in results)

    def test_explore_shim_still_raises_on_failure(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(RuntimeError, match="deadlocker"):
                explore([_spec(DeadlockDesign, "deadlocker")])

    def test_result_to_dict(self):
        report = sweep(cordic_design_specs(ps=(2,), **TINY), workers=0)
        d = report.results[0].to_dict()
        assert d["status"] == "ok"
        assert d["cycles"] > 0 and d["slices"] > 0
        assert d["kind"] == "hw-accelerated"
        assert d["halt_reason"] == "exit"
        json.dumps(d)  # must be JSON-serializable


# ----------------------------------------------------------------------
# mb32-dse CLI round trip
# ----------------------------------------------------------------------
class TestMb32DseSweepCli:
    def test_sweep_roundtrip_to_json_report(self, tmp_path, capsys):
        from repro.cli import dse_main

        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps({
            "generate": {"app": "cordic", "ps": [0, 2], "iters": 8,
                         "ndata": 8},
            "constraints": {"max_slices": 2000},
            "cache": str(tmp_path / "cache"),
        }))
        out = tmp_path / "report.json"
        md = tmp_path / "report.md"
        rc = dse_main([str(spec_file), "-o", str(out),
                       "--markdown", str(md), "--quiet"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "2/2 ok" in text
        assert "fastest within" in text

        data = json.loads(out.read_text())
        assert data["points"] == 2 and data["ok"] == 2
        assert {r["name"] for r in data["results"]} == \
            {"cordic-sw-8it", "cordic-p2-8it"}
        assert all(r["status"] == "ok" for r in data["results"])
        assert md.read_text().startswith("# Design-space sweep report")

        # second run hits the cache named in the spec file
        rc = dse_main([str(spec_file), "-o", str(out), "--quiet"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["cache_hits"] == 2

    def test_explicit_points_and_failure_exit_code(self, tmp_path, capsys):
        from repro.cli import dse_main

        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps({
            "points": [
                {"name": "deadlocker",
                 "factory": f"{__name__}:DeadlockDesign"},
            ],
        }))
        rc = dse_main([str(spec_file), "--quiet"])
        assert rc == 1
        assert "deadlock" in capsys.readouterr().out

    def test_bad_spec_file(self, tmp_path, capsys):
        from repro.cli import dse_main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert dse_main([str(bad)]) == 2
        assert "spec error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The lockstep vector engine: sweep_batched mirrors the scalar sweep
# ----------------------------------------------------------------------
def _cordic_spec(name: str, **params) -> DesignSpec:
    return DesignSpec(
        name=name, factory="repro.apps.cordic.design:CordicDesign",
        params=params,
    )


def _comparable(result):
    """Everything but wall-clock fields, which are not conformance
    observables (the batch shares one clock across lanes)."""
    r = result.result
    return (
        result.point.name,
        result.status,
        result.error,
        result.fingerprint,
        result.cache_hit,
        None if r is None else (
            r.exit_code, r.cycles, r.instructions, r.stall_cycles,
            r.halt_reason,
        ),
        None if result.estimate is None else result.estimate.total,
    )


class TestSweepBatched:
    # software-only, one 4-lane lockstep group with per-lane programs,
    # a structural singleton, and a self-check failure (iters=48
    # overruns the fixed-point gain)
    POINTS = [
        dict(name="sw", p=0, **TINY),
        dict(name="p2-a", p=2, **TINY),
        dict(name="p2-b", p=2, iters=8, ndata=6),
        dict(name="p2-c", p=2, iters=12, ndata=8),
        dict(name="p2-bad", p=2, iters=48, ndata=8),
        dict(name="p4", p=4, **TINY),
    ]

    def _points(self):
        return [_cordic_spec(**dict(kw)) for kw in self.POINTS]

    def test_matches_scalar_sweep_per_point(self):
        from repro.cosim.sweep_batched import sweep_batched

        scalar = sweep(self._points(), workers=0)
        batched = sweep_batched(self._points(), batch_width=3)
        assert [r.status for r in batched.results] == \
            ["ok", "ok", "ok", "ok", "self-check-failed", "ok"]
        for ref, got in zip(scalar.results, batched.results):
            assert _comparable(got) == _comparable(ref)

    def test_shares_the_scalar_result_cache(self, tmp_path):
        from repro.cosim.sweep_batched import sweep_batched

        cache = tmp_path / "cache"
        first = sweep_batched(self._points(), batch_width=3,
                              cache_dir=str(cache))
        assert first.cache_hits == 0
        # the scalar sweep re-reads what the batched sweep wrote
        second = sweep(self._points(), workers=0, cache_dir=str(cache))
        ok = [r for r in second.results if r.status == STATUS_OK]
        assert ok and all(r.cache_hit for r in ok)

    def test_width_one_and_bad_width(self):
        from repro.cosim.sweep_batched import sweep_batched

        with pytest.raises(ValueError, match="batch_width"):
            sweep_batched(self._points(), batch_width=0)
        report = sweep_batched(self._points()[1:3], batch_width=1)
        assert [r.status for r in report.results] == ["ok", "ok"]

    def test_build_failure_reported_as_error(self):
        from repro.cosim.sweep_batched import sweep_batched

        bad = DesignSpec(name="bad", factory="repro.nosuch:Thing")
        report = sweep_batched([bad])
        assert report.results[0].status == STATUS_ERROR
        assert "build failed" in report.results[0].error
