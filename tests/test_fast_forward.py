"""Fast-forward co-simulation kernel: equivalence and regression tests.

The kernel (``CoSimulation.run`` with ``fast_forward=True``, the
default) must be *indistinguishable* from the per-cycle reference loop:
identical cycle counts, instruction counts, stall accounting, FSL
statistics and probe traces.  These tests pin that contract on the
paper's two applications (CORDIC divider, blocked matmul) and on a
latency-swept FSL doubler, and cover the state-reset bugfixes that
shipped with the kernel.
"""

import pytest

from repro.apps.cordic.design import CordicDesign
from repro.apps.matmul.design import MatmulDesign
from repro.bus.fsl import FSLChannel
from repro.cosim import CoSimulation, FastForwardError, MicroBlazeBlock
from repro.cosim.environment import CoSimDeadlock
from repro.iss.cpu import CPUConfig, CPUError, HaltReason
from repro.iss.run import make_cpu
from repro.mcc import CompileOptions, build_executable
from repro.sysgen import IDLE_FOREVER, Model
from repro.sysgen.blocks import Counter, Delay, GatewayIn, Inverter, Logical, Shift


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def doubler_design(fifo_depth: int = 16, extra_latency: int = 0):
    """FSL peripheral returning 2*x (same shape as in test_cosim)."""
    model = Model("doubler")
    mb = MicroBlazeBlock(model, fifo_depth=fifo_depth)
    rd = mb.master_fsl(0)
    wr = mb.slave_fsl(0)
    shl = model.add(Shift("shl", width=32, amount=1, direction="left"))
    notfull = model.add(Inverter("notfull", width=1))
    strobe = model.add(Logical("strobe", width=1, op="and"))
    model.connect(wr.o("full"), notfull.i("a"))
    model.connect(rd.o("exists"), strobe.i("d0"))
    model.connect(notfull.o("out"), strobe.i("d1"))
    model.connect(rd.o("data"), shl.i("a"))
    model.connect(strobe.o("out"), rd.i("read"))
    if extra_latency:
        dly_d = model.add(Delay("dly_d", width=32, n=extra_latency))
        dly_v = model.add(Delay("dly_v", width=1, n=extra_latency))
        model.connect(shl.o("s"), dly_d.i("d"))
        model.connect(strobe.o("out"), dly_v.i("d"))
        model.connect(dly_d.o("q"), wr.i("data"))
        model.connect(dly_v.o("q"), wr.i("write"))
    else:
        model.connect(shl.o("s"), wr.i("data"))
        model.connect(strobe.o("out"), wr.i("write"))
    return model, mb


ECHO_SUM_SRC = """
int main(void) {
    int sum = 0;
    for (int i = 1; i <= 5; i++) {
        putfsl(i, 0);
        sum += getfsl(0);
    }
    return sum;   /* doubler: 2+4+6+8+10 = 30 */
}
"""


def _attach_interface_probes(model: Model, mb: MicroBlazeBlock) -> None:
    """Probe the FSL handshake/data ports — the signals fast-forward
    must reproduce sample by sample."""
    for blk in mb.read_blocks.values():
        model.probe(blk.o("data"))
        model.probe(blk.o("exists"))
    for blk in mb.write_blocks.values():
        model.probe(blk.o("full"))


def _run_mode(program, model, mb, cpu_config, mode: str):
    sim = CoSimulation(
        program,
        model,
        mb,
        cpu_config=cpu_config,
        fast_forward=(mode != "per_cycle"),
        verify_fast_forward=(mode == "verify"),
    )
    result = sim.run()
    probes = {p.name: list(p.samples) for p in model.probes}
    fsl_stats = {
        name: (ch.total_pushed, ch.total_popped, ch.push_rejects,
               ch.pop_rejects, ch.max_occupancy)
        for name, ch in (
            *((f"to{i}", mb.to_hw_channel(i)) for i in mb.read_blocks),
            *((f"from{i}", mb.from_hw_channel(i)) for i in mb.write_blocks),
        )
    }
    return result, probes, fsl_stats


def _assert_equivalent(reference, candidate, label: str) -> None:
    ref_result, ref_probes, ref_fsl = reference
    res, probes, fsl = candidate
    assert res.exit_code == ref_result.exit_code, label
    assert res.halt_reason == ref_result.halt_reason, label
    assert res.cycles == ref_result.cycles, label
    assert res.instructions == ref_result.instructions, label
    assert res.stall_cycles == ref_result.stall_cycles, label
    assert fsl == ref_fsl, label
    assert probes.keys() == ref_probes.keys(), label
    for name in ref_probes:
        assert probes[name] == ref_probes[name], f"{label}: probe {name}"


# ----------------------------------------------------------------------
# Tentpole: bit-identical fast-forward on the paper's applications
# ----------------------------------------------------------------------
DESIGN_CASES = {
    "cordic_p2": lambda: CordicDesign(p=2, iters=8, ndata=8, verify=False),
    "cordic_p4": lambda: CordicDesign(p=4, iters=12, ndata=8, verify=False),
    "matmul_b2": lambda: MatmulDesign(block=2, matn=4, verify=False),
}


@pytest.mark.parametrize("case", sorted(DESIGN_CASES))
def test_fast_forward_equivalent_on_applications(case):
    runs = {}
    for mode in ("per_cycle", "fast", "verify"):
        design = DESIGN_CASES[case]()
        _attach_interface_probes(design.model, design.mb)
        runs[mode] = _run_mode(
            design.program, design.model, design.mb, design.cpu_config, mode
        )
    assert runs["per_cycle"][0].exit_code == 0
    assert runs["per_cycle"][0].cycles > 0
    _assert_equivalent(runs["per_cycle"], runs["fast"], f"{case}: fast")
    _assert_equivalent(runs["per_cycle"], runs["verify"], f"{case}: verify")


@pytest.mark.parametrize("latency", [0, 1, 3, 8])
@pytest.mark.parametrize("depth", [2, 16])
def test_fast_forward_equivalent_on_doubler_grid(latency, depth):
    # Property-style sweep over pipeline latency x FIFO depth: every
    # stall/backpressure pattern must fast-forward bit-identically.
    program = build_executable(ECHO_SUM_SRC, CompileOptions())
    runs = {}
    for mode in ("per_cycle", "fast"):
        model, mb = doubler_design(fifo_depth=depth, extra_latency=latency)
        _attach_interface_probes(model, mb)
        runs[mode] = _run_mode(program, model, mb, CPUConfig(), mode)
    assert runs["per_cycle"][0].exit_code == 30
    _assert_equivalent(
        runs["per_cycle"], runs["fast"], f"latency={latency} depth={depth}"
    )


def test_fast_forward_deadlock_detected_at_same_cycle():
    # Skips are clamped to the deadlock-check boundary, so the overflow
    # deadlock must trip in both modes (and at the same simulated time).
    src = """
    int main(void) {
        int sum = 0;
        for (int i = 0; i < 40; i++) putfsl(i, 0);
        for (int i = 0; i < 40; i++) sum += getfsl(0);
        return sum;
    }
    """
    program = build_executable(src, CompileOptions())
    cycles_at_raise = {}
    for mode in ("per_cycle", "fast"):
        model, mb = doubler_design(fifo_depth=4)
        sim = CoSimulation(
            program, model, mb, fast_forward=(mode == "fast")
        )
        with pytest.raises(CoSimDeadlock) as excinfo:
            sim.run()
        cycles_at_raise[mode] = sim.cpu.cycle
        # Reporter goes through the public accessor, naming channels.
        assert "mb_out0" in str(excinfo.value)
    assert cycles_at_raise["fast"] == cycles_at_raise["per_cycle"]


def test_fast_forward_verify_catches_lying_idle_horizon():
    # A block that claims quiescence while its state keeps changing must
    # be caught by verify_fast_forward (the debug cross-check).
    class LyingCounter(Counter):
        def idle_horizon(self) -> int:
            return IDLE_FOREVER

    model = Model("liar")
    mb = MicroBlazeBlock(model)
    model.add(LyingCounter("free", width=8))
    program = build_executable("int main(void) { return 7; }")
    sim = CoSimulation(program, model, mb, verify_fast_forward=True)
    with pytest.raises(FastForwardError):
        sim.run()


def test_fast_forward_idle_horizon_tracks_gateway_drive():
    model = Model("gw")
    gw = model.add(GatewayIn("x", width=16))
    ctr = model.add(Counter("ctr", width=8))
    model.connect(gw.o("out"), ctr.i("rst"))
    model.compile()
    # Pre-settle, outputs are stale: never claim idleness.
    assert model.idle_horizon() == 0
    gw.drive(1)  # rst held high -> counter pinned at 0
    model.step()
    assert model.idle_horizon() == IDLE_FOREVER
    # A host-side drive is an external event: idleness must drop...
    gw.drive(0)
    assert model.idle_horizon() == 0
    model.step()
    # ...and stay dropped while the counter free-runs.
    assert model.idle_horizon() == 0


def test_fast_forward_cpu_advance_guards():
    program = build_executable("int main(void) { return 0; }")
    cpu = make_cpu(program)
    # Ready to issue: advancing would skip real work.
    assert cpu.advance_horizon() == 0
    with pytest.raises(CPUError):
        cpu.advance(1)
    cpu.tick()  # issue the first (multi-cycle) instruction if any
    if cpu.advance_horizon() > 0:
        with pytest.raises(CPUError):
            cpu.advance(cpu.advance_horizon() + 1)


# ----------------------------------------------------------------------
# Satellite regressions: reset/re-run state bugs
# ----------------------------------------------------------------------
def test_fast_forward_satellite_fsl_reset_clears_stats():
    ch = FSLChannel(depth=2, name="t")
    ch.push(1)
    ch.push(2)
    assert not ch.push(3)  # full -> reject
    ch.pop()
    assert ch.pop() is not None
    assert ch.pop() is None  # empty -> reject
    assert (ch.total_pushed, ch.total_popped) == (2, 2)
    assert (ch.push_rejects, ch.pop_rejects, ch.max_occupancy) == (1, 1, 2)

    ch.push(4)
    ch.reset(reset_stats=False)  # profiling mode keeps counters
    assert ch.occupancy == 0
    assert ch.total_pushed == 3

    ch.reset()  # default clears everything
    assert (ch.total_pushed, ch.total_popped) == (0, 0)
    assert (ch.push_rejects, ch.pop_rejects, ch.max_occupancy) == (0, 0, 0)


def test_fast_forward_satellite_cosim_reset_clears_channel_stats():
    model, mb = doubler_design()
    program = build_executable(ECHO_SUM_SRC, CompileOptions())
    sim = CoSimulation(program, model, mb)
    sim.run()
    first_pushed = mb.to_hw_channel(0).total_pushed
    assert first_pushed == 5
    sim.reset()
    assert mb.to_hw_channel(0).total_pushed == 0
    assert mb.from_hw_channel(0).total_popped == 0
    second = sim.run()
    # Second run's statistics equal a fresh run's, not 2x.
    assert second.exit_code == 30
    assert mb.to_hw_channel(0).total_pushed == first_pushed


def test_fast_forward_satellite_cpu_reset_clears_fsl_error():
    program = build_executable("int main(void) { return 0; }")
    cpu = make_cpu(program)
    cpu.fsl.error = True  # MSR[FSL] sticky bit from a "previous run"
    cpu.reset(pc=program.entry)
    assert cpu.fsl.error is False


def test_fast_forward_satellite_second_run_reports_deltas():
    model, mb = doubler_design()
    program = build_executable(ECHO_SUM_SRC, CompileOptions())
    # Reference: one uninterrupted run.
    ref_model, ref_mb = doubler_design()
    reference = CoSimulation(program, ref_model, ref_mb).run()

    sim = CoSimulation(program, model, mb)
    first = sim.run(until=50)
    assert first.halt_reason == HaltReason.MAX_CYCLES
    assert first.cycles == 50  # not the CPU's lifetime cycle count
    sim.cpu.resume()
    second = sim.run()
    assert second.exit_code == 30
    # Each result pairs its own cycles with its own wall time.
    assert first.cycles + second.cycles == reference.cycles
    assert second.cycles < reference.cycles
    assert (
        first.instructions + second.instructions == reference.instructions
    )
    assert (
        first.stall_cycles + second.stall_cycles == reference.stall_cycles
    )


def test_fast_forward_satellite_channel_occupancies_accessor():
    model, mb = doubler_design()
    assert mb.channel_occupancies() == {"mb_out0": 0, "mb_in0": 0}
    mb.to_hw_channel(0).push(11)
    mb.to_hw_channel(0).push(22)
    mb.from_hw_channel(0).push(33)
    assert mb.channel_occupancies() == {"mb_out0": 2, "mb_in0": 1}
