"""Tests for the bus models: FSL channels, LMB controllers, OPB."""

import pytest
from hypothesis import given, strategies as st

from repro.bus import (
    FSLChannel,
    LMBController,
    OPBBus,
    OPBRegisterSlave,
)
from repro.bus.opb import OPBBusError
from repro.iss.memory import BRAM


class TestFSLChannel:
    def test_fifo_order(self):
        ch = FSLChannel()
        for v in (1, 2, 3):
            assert ch.push(v)
        assert [ch.pop().data for _ in range(3)] == [1, 2, 3]

    def test_depth_enforced(self):
        ch = FSLChannel(depth=2)
        assert ch.push(1) and ch.push(2)
        assert not ch.push(3)
        assert ch.push_rejects == 1
        assert ch.full

    def test_pop_empty_returns_none(self):
        ch = FSLChannel()
        assert ch.pop() is None
        assert ch.pop_rejects == 1

    def test_control_bit_preserved(self):
        ch = FSLChannel()
        ch.push(5, control=True)
        word = ch.pop()
        assert word.control is True

    def test_peek_does_not_consume(self):
        ch = FSLChannel()
        ch.push(7)
        assert ch.peek().data == 7
        assert len(ch) == 1

    def test_flags(self):
        ch = FSLChannel(depth=1)
        assert not ch.exists and not ch.full
        ch.push(1)
        assert ch.exists and ch.full

    def test_statistics(self):
        ch = FSLChannel()
        ch.push(1)
        ch.push(2)
        ch.pop()
        assert ch.total_pushed == 2
        assert ch.total_popped == 1
        assert ch.max_occupancy == 2

    def test_data_masked_to_32_bits(self):
        ch = FSLChannel()
        ch.push(0x1_FFFF_FFFF)
        assert ch.pop().data == 0xFFFFFFFF

    def test_reset(self):
        ch = FSLChannel()
        ch.push(1)
        ch.reset()
        assert not ch.exists

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            FSLChannel(depth=0)

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                    max_size=40))
    def test_prop_fifo_order_preserved(self, values):
        ch = FSLChannel(depth=64)
        for v in values:
            ch.push(v)
        out = []
        while ch.exists:
            out.append(ch.pop().data)
        assert out == values

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
    def test_prop_occupancy_invariant(self, ops):
        ch = FSLChannel(depth=4)
        expected = 0
        for op in ops:
            if op == "push":
                if ch.push(1):
                    expected += 1
            else:
                if ch.pop() is not None:
                    expected -= 1
            assert 0 <= len(ch) <= ch.depth
            assert len(ch) == expected


class TestLMB:
    def test_latency_validation(self):
        with pytest.raises(ValueError):
            LMBController(BRAM(64), latency=0)

    def test_counts_transactions(self):
        lmb = LMBController(BRAM(64))
        lmb.write_u32(0, 0xABCD)
        assert lmb.read_u32(0) == 0xABCD
        lmb.write_u16(8, 7)
        lmb.read_u8(8)
        assert lmb.reads == 2
        assert lmb.writes == 2
        assert lmb.transactions == 4


class TestOPB:
    def make(self):
        bus = OPBBus()
        slave = OPBRegisterSlave(num_regs=4)
        bus.attach(0x8000, 16, slave)
        return bus, slave

    def test_read_write(self):
        bus, slave = self.make()
        latency = bus.write_u32(0x8004, 99)
        assert latency == OPBBus.WRITE_LATENCY
        value, latency = bus.read_u32(0x8004)
        assert value == 99
        assert latency == OPBBus.READ_LATENCY
        assert slave.regs[1] == 99

    def test_unmapped_address(self):
        bus, _ = self.make()
        with pytest.raises(OPBBusError):
            bus.read_u32(0x9000)

    def test_overlap_rejected(self):
        bus, _ = self.make()
        with pytest.raises(ValueError, match="overlaps"):
            bus.attach(0x8008, 16, OPBRegisterSlave())

    def test_alignment_required(self):
        bus = OPBBus()
        with pytest.raises(ValueError):
            bus.attach(0x8001, 16, OPBRegisterSlave())

    def test_transaction_counters(self):
        bus, _ = self.make()
        bus.write_u32(0x8000, 1)
        bus.read_u32(0x8000)
        assert bus.writes == 1
        assert bus.reads == 1
