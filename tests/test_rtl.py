"""Tests for the event-driven RTL kernel, primitives and lowering."""

import io

import pytest

from repro.rtl.kernel import Kernel, SimulationError
from repro.rtl.netlist import Net, Netlist
from repro.rtl.vcd import VCDWriter
from repro.rtl import primitives as prim


class TestKernel:
    def test_delta_propagation(self):
        k = Kernel()
        a = k.signal("a")
        b = k.signal("b")

        def follower(kern):
            kern.schedule(b, a.value)

        k.process(follower, sensitive=[a])
        k.initial(lambda kern: kern.schedule(a, 1))
        k.run(1)
        assert b.value == 1

    def test_timed_events_ordered(self):
        k = Kernel()
        s = k.signal("s", width=8)
        seen = []

        def watcher(kern):
            seen.append((kern.now, s.value))

        k.process(watcher, sensitive=[s])
        k.initial(lambda kern: kern.schedule(s, 1, delay=5))
        k.initial(lambda kern: kern.schedule(s, 2, delay=10))
        k.run(20)
        assert seen == [(5, 1), (10, 2)]

    def test_clock_edges(self):
        k = Kernel()
        clk = k.add_clock("clk", period=10)
        edges = []

        def edge_watch(kern):
            if kern.is_rising(clk):
                edges.append(kern.now)

        k.process(edge_watch, sensitive=[clk])
        k.run(45)
        assert edges == [5, 15, 25, 35, 45]

    def test_oscillation_detected(self):
        k = Kernel()
        a = k.signal("a")

        def inverter_loop(kern):
            kern.schedule(a, a.value ^ 1)

        k.process(inverter_loop, sensitive=[a])
        k.initial(lambda kern: kern.schedule(a, 1))
        with pytest.raises(SimulationError, match="delta overflow"):
            k.run(1)

    def test_no_event_on_same_value(self):
        k = Kernel()
        a = k.signal("a")
        runs = []
        k.process(lambda kern: runs.append(kern.now), sensitive=[a])
        k.initial(lambda kern: kern.schedule(a, 0))  # no change
        k.run(5)
        assert runs == []


class TestPrimitives:
    def test_lut_and(self):
        k = Kernel()
        a, b, o = k.signal("a"), k.signal("b"), k.signal("o")
        prim.lut(k, "and2", [a, b], o, 0b1000)
        k.initial(lambda kern: (kern.schedule(a, 1), kern.schedule(b, 1)))
        k.run(1)
        assert o.value == 1

    def test_dff_latches_on_rising_edge(self):
        k = Kernel()
        clk = k.add_clock("clk", 10)
        d, q = k.signal("d"), k.signal("q")
        prim.dff(k, "ff", clk, d, q)
        k.initial(lambda kern: kern.schedule(d, 1))
        k.run(4)  # before first edge
        assert q.value == 0
        k.run(2)  # past rising edge at t=5
        assert q.value == 1

    def test_dff_clock_enable(self):
        k = Kernel()
        clk = k.add_clock("clk", 10)
        d, q, ce = k.signal("d"), k.signal("q"), k.signal("ce")
        prim.dff(k, "ff", clk, d, q, ce=ce)
        k.initial(lambda kern: kern.schedule(d, 1))
        k.run(12)
        assert q.value == 0  # not enabled
        k.initial_ = None
        k.schedule(ce, 1, delay=1)
        k.run(10)
        assert q.value == 1

    def test_mult18x18_signed(self):
        k = Kernel()
        a = k.signal("a", 18)
        b = k.signal("b", 18)
        p = k.signal("p", 36)
        prim.mult18x18(k, "m", a, b, p)
        k.initial(lambda kern: (kern.schedule(a, (-7) & 0x3FFFF),
                                kern.schedule(b, 9)))
        k.run(1)
        assert p.value == (-63) & 0xFFFFFFFFF

    def test_bram_sync_read(self):
        k = Kernel()
        clk = k.add_clock("clk", 10)
        addr = k.signal("addr", 4)
        din = k.signal("din", 8)
        dout = k.signal("dout", 8)
        we = k.signal("we")
        prim.bram(k, "ram", clk, addr, din, dout, we, depth=16,
                  contents=[0xAB])
        k.run(10)  # one edge
        assert dout.value == 0xAB


class TestNetlistIdioms:
    def make(self):
        k = Kernel()
        nl = Netlist(k, "t")
        return k, nl

    def settle(self, k):
        k.run(1)

    def drive(self, k, bus, value):
        for i, bit in enumerate(bus):
            k.schedule(bit, (value >> i) & 1)

    def read(self, bus):
        return sum((bit.value & 1) << i for i, bit in enumerate(bus))

    def test_adder(self):
        k, nl = self.make()
        a = nl.bus("a", 8)
        b = nl.bus("b", 8)
        s = nl.adder(a, b)
        self.drive(k, a, 77)
        self.drive(k, b, 88)
        self.settle(k)
        assert self.read(s) == (77 + 88) & 0xFF

    def test_subtract_via_sub_signal(self):
        k, nl = self.make()
        a = nl.bus("a", 8)
        b = nl.bus("b", 8)
        vcc = k.signal("vcc", 1, 1)
        d = nl.adder(a, b, sub=vcc)
        self.drive(k, a, 5)
        self.drive(k, b, 9)
        self.settle(k)
        assert self.read(d) == (5 - 9) & 0xFF

    @pytest.mark.parametrize("a,b", [(3, 7), (7, 3), (200, 10), (128, 127)])
    def test_less_than_unsigned(self, a, b):
        k, nl = self.make()
        ba = nl.bus("a", 8)
        bb = nl.bus("b", 8)
        lt = nl.less_than(ba, bb, signed=False)
        self.drive(k, ba, a)
        self.drive(k, bb, b)
        self.settle(k)
        assert lt.value == int(a < b)

    @pytest.mark.parametrize("a,b", [(-3, 7), (7, -3), (-8, -2), (5, 5)])
    def test_less_than_signed(self, a, b):
        k, nl = self.make()
        ba = nl.bus("a", 8)
        bb = nl.bus("b", 8)
        lt = nl.less_than(ba, bb, signed=True)
        self.drive(k, ba, a & 0xFF)
        self.drive(k, bb, b & 0xFF)
        self.settle(k)
        assert lt.value == int(a < b)

    def test_equals_const(self):
        k, nl = self.make()
        a = nl.bus("a", 6)
        eq = nl.equals_const(a, 37)
        self.drive(k, a, 37)
        self.settle(k)
        assert eq.value == 1
        self.drive(k, a, 36)
        self.settle(k)
        assert eq.value == 0

    def test_mux_tree(self):
        k, nl = self.make()
        sel = nl.bus("sel", 2)
        inputs = [nl.const_bus(v, 8) for v in (10, 20, 30, 40)]
        out = nl.mux_tree(sel, inputs)
        for s, expect in enumerate((10, 20, 30, 40)):
            self.drive(k, sel, s)
            self.settle(k)
            assert self.read(out) == expect

    def test_stats_counting(self):
        k, nl = self.make()
        a = nl.bus("a", 8)
        b = nl.bus("b", 8)
        nl.adder(a, b)
        assert nl.stats.luts == 8  # one (shared) LUT per bit
        assert nl.stats.muxcy == 8
        assert nl.stats.slices >= 4


class TestVCD:
    def test_vcd_output(self):
        k = Kernel()
        clk = k.add_clock("clk", 10)
        out = io.StringIO()
        writer = VCDWriter(k, out, signals=[clk])
        k.run(25)
        writer.close()
        text = out.getvalue()
        assert "$enddefinitions" in text
        assert "#5" in text and "#15" in text
