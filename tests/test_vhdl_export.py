"""Tests for the VHDL export (EDK hand-off) path."""

import re

import pytest

from repro.apps.cordic.hardware import build_cordic_model
from repro.apps.matmul.hardware import build_matmul_model
from repro.rtl.vhdl_export import VHDLExportError, export_vhdl
from repro.sysgen import Model
from repro.sysgen.blocks import (
    FIFO,
    Add,
    AddSub,
    Constant,
    Counter,
    GatewayIn,
    GatewayOut,
    Mult,
    Mux,
    Register,
    Relational,
)


def small_design():
    m = Model("acc_design")
    g = m.add(GatewayIn("x", width=16))
    acc = m.add(Register("acc", width=16))
    total = m.add(Add("sum", width=16))
    out = m.add(GatewayOut("y", width=16))
    m.connect(g.o("out"), total.i("a"))
    m.connect(acc.o("q"), total.i("b"))
    m.connect(total.o("s"), acc.i("d"))
    m.connect(acc.o("q"), out.i("in"))
    return m


class TestStructure:
    def test_entity_and_architecture(self):
        text = export_vhdl(small_design())
        assert "entity acc_design is" in text
        assert "architecture behavioral of acc_design" in text
        assert "end architecture behavioral;" in text

    def test_gateway_ports(self):
        text = export_vhdl(small_design())
        assert "x_in : in std_logic_vector(15 downto 0)" in text
        assert "y_out : out std_logic_vector(15 downto 0)" in text
        assert "clk : in std_logic" in text

    def test_register_process(self):
        text = export_vhdl(small_design())
        assert "rising_edge(clk)" in text
        assert re.search(r"acc_proc\s*:\s*process \(clk\)", text)

    def test_adder_expression(self):
        text = export_vhdl(small_design())
        assert "signed(x_out) + signed(acc_q)" in text.replace("\n", " ") or \
            "signed(" in text  # at least a signed add appears
        assert "sum_s" in text

    def test_custom_entity_name(self):
        text = export_vhdl(small_design(), entity="my top!")
        assert "entity my_top_ is" in text


class TestBlockRenderings:
    def render_single(self, block, connections):
        m = Model("t")
        m.add(block)
        for port, value, width in connections:
            c = m.add(Constant(f"c_{port}", value, width=width))
            m.connect(c.o("out"), block.i(port))
        return export_vhdl(m)

    def test_mux(self):
        text = self.render_single(
            Mux("m", width=8, n=2),
            [("sel", 0, 1), ("d0", 1, 8), ("d1", 2, 8)],
        )
        assert "when" in text

    def test_relational(self):
        text = self.render_single(
            Relational("r", width=8, op="lt"),
            [("a", 1, 8), ("b", 2, 8)],
        )
        assert "'1' when signed(" in text

    def test_addsub_conditional(self):
        text = self.render_single(
            AddSub("as", width=8),
            [("a", 1, 8), ("b", 2, 8), ("sub", 1, 1)],
        )
        assert "when c_sub_out = '1'" in text

    def test_mult_pipeline_stages(self):
        text = self.render_single(
            Mult("m", 18, 18, out_width=32, latency=3),
            [("a", 3, 18), ("b", 4, 18)],
        )
        assert "m_p_c" in text  # combinational product
        assert "m_p_p1" in text and "m_p_p2" in text  # pipeline regs
        assert text.count("rising_edge(clk)") == 1

    def test_counter(self):
        m = Model("t")
        m.add(Counter("cnt", width=4, step=2))
        text = export_vhdl(m)
        assert "unsigned(cnt_q) + 2" in text

    def test_fifo_not_inline(self):
        m = Model("t")
        m.add(FIFO("f", width=8, depth=4))
        with pytest.raises(VHDLExportError):
            export_vhdl(m)


class TestFullDesigns:
    def test_cordic_pipeline_exports(self):
        model, _ = build_cordic_model(2)
        text = export_vhdl(model)
        # FSL interface becomes entity ports
        assert "fsl_out0_data : in std_logic_vector(31 downto 0)" in text
        assert "fsl_in0_write : out std_logic" in text
        # both PEs present
        assert "pe0_ynext" in text and "pe1_ynext" in text
        # plausible size
        assert text.count("<=") > 40

    def test_matmul_exports(self):
        model, _ = build_matmul_model(2)
        text = export_vhdl(model)
        assert "mult_0_p" in text
        assert "acc_1_1_proc" in text

    def test_output_is_line_clean(self):
        model, _ = build_cordic_model(1)
        text = export_vhdl(model)
        for line in text.splitlines():
            assert not line.endswith(" ")
