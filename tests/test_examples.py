"""Smoke tests: every shipped example must run to completion.

The heavy exploration examples are exercised with reduced workloads via
their library entry points elsewhere; here each script runs as-is, the
way a user would invoke it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "quickstart OK" in out
    assert "fib(12) = 144" in out


def test_debugger_session():
    out = run_example("debugger_session.py")
    assert "debugger session OK" in out


def test_adaptive_beamforming():
    out = run_example("adaptive_beamforming.py")
    assert "OK" in out
    assert "Wn[1][1]" in out


def test_levinson_durbin():
    out = run_example("levinson_durbin.py")
    assert "coefficients" in out
    assert "keep this" in out


@pytest.mark.slow
def test_cordic_division():
    out = run_example("cordic_division.py")
    assert "fastest design within" in out


@pytest.mark.slow
def test_matrix_multiply():
    out = run_example("matrix_multiply.py")
    assert "4x4 vs software" in out


@pytest.mark.slow
def test_energy_estimation():
    out = run_example("energy_estimation.py")
    assert "lowest-energy partition" in out


@pytest.mark.slow
def test_rtl_baseline(tmp_path):
    out = run_example("rtl_baseline.py")
    assert "simulation speedup" in out
