"""End-to-end tests for the mini-C compiler: compile, link, execute on
the ISS and check the program's exit code / console output."""

import pytest

from repro.iss import CPUConfig
from repro.iss.run import run_to_completion
from repro.mcc import CompileOptions, MccError, build_executable, compile_c
from repro.mcc.errors import ParseError, SemaError


def run_c(source: str, options: CompileOptions | None = None,
          max_cycles: int = 2_000_000):
    options = options or CompileOptions()
    prog = build_executable(source, options)
    config = CPUConfig(
        use_hw_multiplier=options.hw_multiplier,
        use_hw_divider=options.hw_divider,
    )
    code, cpu = run_to_completion(prog, config=config, max_cycles=max_cycles)
    assert code is not None, "program did not terminate"
    return code, cpu


class TestBasics:
    def test_return_constant(self):
        assert run_c("int main(void) { return 42; }")[0] == 42

    def test_arithmetic(self):
        assert run_c("int main(void) { return 2 + 3 * 4 - 1; }")[0] == 13

    def test_variables(self):
        src = "int main(void) { int a = 5; int b = 7; return a * b; }"
        assert run_c(src)[0] == 35

    def test_negative_return(self):
        assert run_c("int main(void) { return -7; }")[0] == -7

    def test_unary_ops(self):
        assert run_c("int main(void) { int x = 5; return -x + ~x + !x; }")[0] == -11

    def test_large_constants(self):
        src = "int main(void) { int x = 100000; return x / 1000; }"
        assert run_c(src)[0] == 100

    def test_char_type(self):
        src = "int main(void) { char c = 'A'; return c + 1; }"
        assert run_c(src)[0] == 66

    def test_comments(self):
        src = """
        // line comment
        int main(void) { /* block
        comment */ return 1; }
        """
        assert run_c(src)[0] == 1


class TestOperators:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("17 / 5", 3),
            ("17 % 5", 2),
            ("-17 / 5", -3),
            ("-17 % 5", -2),
            ("17 / -5", -3),
            ("6 << 2", 24),
            ("-64 >> 3", -8),
            ("0xF0 & 0x3C", 0x30),
            ("0xF0 | 0x0F", 0xFF),
            ("0xFF ^ 0x0F", 0xF0),
            ("3 < 5", 1),
            ("5 < 3", 0),
            ("5 <= 5", 1),
            ("5 > 3", 1),
            ("3 >= 5", 0),
            ("4 == 4", 1),
            ("4 != 4", 0),
            ("-1 < 1", 1),
            ("1 && 2", 1),
            ("1 && 0", 0),
            ("0 || 3", 1),
            ("0 || 0", 0),
        ],
    )
    def test_binary_expr(self, expr, expected):
        # Use volatile-ish indirection through variables so the sema
        # constant folder cannot precompute everything.
        src = f"""
        int id(int x) {{ return x; }}
        int main(void) {{
            int a = id({expr.split(' ')[0] if False else 0});
            return ({expr});
        }}
        """
        assert run_c(src)[0] == expected

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("a / b", 3), ("a % b", 2), ("a * b", 85),
            ("a < b", 0), ("a > b", 1), ("a == b", 0), ("a != b", 1),
            ("a << 1", 34), ("a >> 2", 4),
        ],
    )
    def test_binary_runtime(self, expr, expected):
        src = f"""
        int main(void) {{
            int a = 17;
            int b = 5;
            return {expr};
        }}
        """
        assert run_c(src)[0] == expected

    def test_unsigned_division(self):
        src = """
        int main(void) {
            unsigned a = 0x80000000;
            unsigned b = 2;
            return (int)(a / b == 0x40000000);
        }
        """
        assert run_c(src)[0] == 1

    def test_unsigned_shift(self):
        src = """
        int main(void) {
            unsigned x = 0x80000000;
            return (int)(x >> 28);
        }
        """
        assert run_c(src)[0] == 8

    def test_unsigned_compare(self):
        src = """
        int main(void) {
            unsigned big = 0xFFFFFFF0;
            unsigned one = 1;
            return big > one;
        }
        """
        assert run_c(src)[0] == 1

    def test_compound_assignment(self):
        src = """
        int main(void) {
            int x = 10;
            x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 3; x |= 1;
            return x;  // ((10+5-3)*2/4)%4=2 -> 2<<3=16 |1 = 17
        }
        """
        assert run_c(src)[0] == 17

    def test_increment_decrement(self):
        src = """
        int main(void) {
            int x = 5;
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a * 1000 + b * 100 + c * 10 + d;
        }
        """
        assert run_c(src)[0] == 5775

    def test_ternary(self):
        src = "int main(void) { int x = 3; return x > 2 ? 10 : 20; }"
        assert run_c(src)[0] == 10

    def test_short_circuit_effects(self):
        src = """
        int g = 0;
        int bump(void) { g = g + 1; return 1; }
        int main(void) {
            int x = 0;
            x && bump();       // not evaluated
            1 || bump();       // not evaluated
            1 && bump();       // evaluated
            return g;
        }
        """
        assert run_c(src)[0] == 1


class TestControlFlow:
    def test_if_else(self):
        src = """
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else return 1;
        }
        int main(void) {
            return classify(-5) * 100 + classify(0) * 10 + classify(9);
        }
        """
        assert run_c(src)[0] == -99  # -100 + 0 + 1

    def test_while_loop(self):
        src = """
        int main(void) {
            int sum = 0;
            int i = 1;
            while (i <= 10) { sum += i; i++; }
            return sum;
        }
        """
        assert run_c(src)[0] == 55

    def test_for_loop(self):
        src = """
        int main(void) {
            int sum = 0;
            for (int i = 0; i < 5; i++) sum += i * i;
            return sum;
        }
        """
        assert run_c(src)[0] == 30

    def test_do_while(self):
        src = """
        int main(void) {
            int n = 0;
            do { n++; } while (n < 3);
            return n;
        }
        """
        assert run_c(src)[0] == 3

    def test_break_continue(self):
        src = """
        int main(void) {
            int sum = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                sum += i;   // 1+3+5+7+9
            }
            return sum;
        }
        """
        assert run_c(src)[0] == 25

    def test_nested_loops(self):
        src = """
        int main(void) {
            int count = 0;
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                    if (i != j) count++;
            return count;
        }
        """
        assert run_c(src)[0] == 12


class TestFunctions:
    def test_recursion_factorial(self):
        src = """
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main(void) { return fact(6); }
        """
        assert run_c(src)[0] == 720

    def test_fibonacci_recursive(self):
        src = """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(void) { return fib(12); }
        """
        assert run_c(src)[0] == 144

    def test_six_arguments(self):
        src = """
        int sum6(int a, int b, int c, int d, int e, int f) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*f;
        }
        int main(void) { return sum6(1, 2, 3, 4, 5, 6); }
        """
        assert run_c(src)[0] == 1 + 4 + 9 + 16 + 25 + 36

    def test_forward_call(self):
        src = """
        int main(void) { return later(21); }
        int later(int x) { return x * 2; }
        """
        assert run_c(src)[0] == 42

    def test_prototype(self):
        src = """
        int helper(int x);
        int main(void) { return helper(4); }
        int helper(int x) { return x * x; }
        """
        assert run_c(src)[0] == 16

    def test_void_function(self):
        src = """
        int g = 0;
        void set(int v) { g = v; }
        int main(void) { set(31); return g; }
        """
        assert run_c(src)[0] == 31

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main(void) { return is_even(10) * 10 + is_odd(7); }
        """
        assert run_c(src)[0] == 11


class TestArraysAndPointers:
    def test_local_array(self):
        src = """
        int main(void) {
            int a[5];
            for (int i = 0; i < 5; i++) a[i] = i * i;
            return a[0] + a[1] + a[2] + a[3] + a[4];
        }
        """
        assert run_c(src)[0] == 30

    def test_array_initializer(self):
        src = """
        int main(void) {
            int a[4] = {10, 20, 30, 40};
            return a[2];
        }
        """
        assert run_c(src)[0] == 30

    def test_global_array(self):
        src = """
        int table[4] = {2, 4, 8, 16};
        int main(void) {
            int sum = 0;
            for (int i = 0; i < 4; i++) sum += table[i];
            return sum;
        }
        """
        assert run_c(src)[0] == 30

    def test_global_scalar_init(self):
        src = """
        int counter = 100;
        int main(void) { counter += 1; return counter; }
        """
        assert run_c(src)[0] == 101

    def test_global_bss_zeroed(self):
        src = """
        int uninit[8];
        int main(void) {
            int sum = 0;
            for (int i = 0; i < 8; i++) sum += uninit[i];
            return sum;
        }
        """
        assert run_c(src)[0] == 0

    def test_2d_array(self):
        src = """
        int m[3][4];
        int main(void) {
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3];
        }
        """
        assert run_c(src)[0] == 23

    def test_pointer_basics(self):
        src = """
        int main(void) {
            int x = 5;
            int *p = &x;
            *p = 9;
            return x + *p;
        }
        """
        assert run_c(src)[0] == 18

    def test_pointer_arithmetic(self):
        src = """
        int a[4] = {1, 2, 3, 4};
        int main(void) {
            int *p = a;
            p = p + 2;
            return *p + *(p + 1);
        }
        """
        assert run_c(src)[0] == 7

    def test_pointer_argument(self):
        src = """
        void swap(int *x, int *y) { int t = *x; *x = *y; *y = t; }
        int main(void) {
            int a = 3;
            int b = 7;
            swap(&a, &b);
            return a * 10 + b;
        }
        """
        assert run_c(src)[0] == 73

    def test_array_argument(self):
        src = """
        int sum(int *v, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += v[i];
            return s;
        }
        int data[5] = {1, 2, 3, 4, 5};
        int main(void) { return sum(data, 5); }
        """
        assert run_c(src)[0] == 15

    def test_char_array_string(self):
        src = """
        int main(void) {
            char *s = "AB";
            return s[0] + s[1];
        }
        """
        assert run_c(src)[0] == 65 + 66

    def test_sizeof(self):
        src = """
        int arr[10];
        int main(void) { return sizeof(int) + sizeof arr; }
        """
        assert run_c(src)[0] == 44


class TestBuiltins:
    def test_putchar(self):
        src = """
        int main(void) {
            __builtin_putchar('o');
            __builtin_putchar('k');
            return 0;
        }
        """
        code, cpu = run_c(src)
        assert code == 0
        assert cpu.mem.console.text == "ok"

    def test_exit_builtin(self):
        src = """
        int main(void) {
            __builtin_exit(55);
            return 1;  // not reached
        }
        """
        assert run_c(src)[0] == 55


class TestConfigurations:
    def test_soft_multiply(self):
        opts = CompileOptions(hw_multiplier=False)
        src = "int main(void) { int a = 123; int b = 456; return a * b == 56088; }"
        assert run_c(src, opts)[0] == 1

    def test_hw_divider(self):
        opts = CompileOptions(hw_divider=True)
        src = "int main(void) { int a = -100; return a / 7; }"
        assert run_c(src, opts)[0] == -14

    def test_no_register_locals(self):
        opts = CompileOptions(register_locals=False)
        src = """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(void) { return fib(10); }
        """
        assert run_c(src, opts)[0] == 55

    def test_register_locals_faster(self):
        src = """
        int main(void) {
            int sum = 0;
            for (int i = 0; i < 200; i++) sum += i;
            return sum == 19900;
        }
        """
        fast_code, fast_cpu = run_c(src, CompileOptions(register_locals=True))
        slow_code, slow_cpu = run_c(src, CompileOptions(register_locals=False))
        assert fast_code == slow_code == 1
        assert fast_cpu.cycle < slow_cpu.cycle


class TestDiagnostics:
    def test_syntax_error(self):
        with pytest.raises(ParseError):
            compile_c("int main(void) { return }")

    def test_undeclared_variable(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { return nope; }")

    def test_undeclared_function(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { return missing(); }")

    def test_wrong_arg_count(self):
        with pytest.raises(SemaError):
            compile_c("int f(int a) { return a; } int main(void) { return f(); }")

    def test_break_outside_loop(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { break; return 0; }")

    def test_assign_to_rvalue(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { 3 = 4; return 0; }")

    def test_void_variable(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { void x; return 0; }")

    def test_fsl_channel_must_be_constant(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { int c = 1; putfsl(1, c); return 0; }")

    def test_fsl_channel_range(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { putfsl(1, 9); return 0; }")

    def test_const_assignment_rejected(self):
        with pytest.raises(SemaError):
            compile_c("int main(void) { const int x = 1; x = 2; return x; }")

    def test_return_value_in_void(self):
        with pytest.raises(SemaError):
            compile_c("void f(void) { return 3; } int main(void) { return 0; }")

    def test_mccerror_base(self):
        with pytest.raises(MccError):
            compile_c("int main(void) { @ }")
