"""Tests for the assembler, linker and disassembler."""

import pytest

from repro.asm import AsmError, LinkError, assemble, disassemble, link
from repro.asm.expr import ExprError, eval_expr, parse_expr
from repro.isa import decode


def build(source: str, entry: str = "_start"):
    return link(assemble(source), entry_symbol=entry)


class TestExpr:
    def test_numbers(self):
        assert eval_expr(parse_expr("42"), {}) == 42
        assert eval_expr(parse_expr("0x10"), {}) == 16
        assert eval_expr(parse_expr("0b101"), {}) == 5
        assert eval_expr(parse_expr("'A'"), {}) == 65
        assert eval_expr(parse_expr("'\\n'"), {}) == 10

    def test_arithmetic(self):
        assert eval_expr(parse_expr("2 + 3 * 4"), {}) == 14
        assert eval_expr(parse_expr("(2 + 3) * 4"), {}) == 20
        assert eval_expr(parse_expr("1 << 4"), {}) == 16
        assert eval_expr(parse_expr("-8 + 3"), {}) == -5
        assert eval_expr(parse_expr("~0"), {}) == -1

    def test_symbols(self):
        assert eval_expr(parse_expr("foo + 4"), {"foo": 100}) == 104

    def test_undefined_symbol(self):
        with pytest.raises(ExprError):
            eval_expr(parse_expr("nope"), {})

    def test_location_counter(self):
        assert eval_expr(parse_expr(". + 8"), {}, location=100) == 108


class TestAssembler:
    def test_simple_program(self):
        prog = build(
            """
            .text
            .global _start
_start:     addik r3, r0, 5
            add   r3, r3, r3
            """
        )
        assert prog.text_size == 8
        word0 = int.from_bytes(prog.image[0:4], "big")
        assert decode(word0).mnemonic == "addik"

    def test_labels_and_branches(self):
        prog = build(
            """
            .global _start
_start:     addik r3, r0, 0
loop:       addik r3, r3, 1
            bri   loop
            """
        )
        # bri at offset 8, target offset 4 -> displacement -4
        word = int.from_bytes(prog.image[8:12], "big")
        instr = decode(word)
        assert instr.mnemonic == "bri"
        assert instr.imm == -4

    def test_auto_imm_prefix_for_symbolic_operand(self):
        prog = build(
            """
            .global _start
_start:     lwi  r3, r0, value
            .data
value:      .word 0xDEADBEEF
            """
        )
        # lwi with a symbolic address becomes imm + lwi (8 bytes).
        assert prog.text_size == 8
        w0 = decode(int.from_bytes(prog.image[0:4], "big"))
        w1 = decode(int.from_bytes(prog.image[4:8], "big"))
        assert w0.mnemonic == "imm"
        assert w1.mnemonic == "lwi"
        addr = ((w0.imm & 0xFFFF) << 16) | (w1.imm & 0xFFFF)
        assert prog.symbols["value"] == addr
        assert prog.image[addr : addr + 4] == bytes.fromhex("deadbeef")

    def test_large_constant_auto_imm(self):
        prog = build(
            """
            .global _start
_start:     addik r3, r0, 0x12345678
            """
        )
        assert prog.text_size == 8
        w0 = decode(int.from_bytes(prog.image[0:4], "big"))
        assert w0.mnemonic == "imm"
        assert (w0.imm & 0xFFFF) == 0x1234

    def test_small_constant_single_word(self):
        prog = build("_start: addik r3, r0, -5\n.global _start")
        assert prog.text_size == 4

    def test_li_pseudo(self):
        prog = build(
            """
            .global _start
_start:     li r3, 0x10000
            """
        )
        assert prog.text_size == 8

    def test_nop_pseudo(self):
        prog = build(".global _start\n_start: nop")
        instr = decode(int.from_bytes(prog.image[0:4], "big"))
        assert instr.mnemonic == "or"
        assert (instr.rd, instr.ra, instr.rb) == (0, 0, 0)

    def test_data_directives(self):
        prog = build(
            """
            .global _start
_start:     nop
            .data
bytes:      .byte 1, 2, 3
            .align 4
halfs:      .half 0x1234
words:      .word -1
str1:       .asciz "hi\\n"
            """
        )
        base = prog.symbols["bytes"]
        assert prog.image[base : base + 3] == bytes([1, 2, 3])
        h = prog.symbols["halfs"]
        assert h % 4 == 0
        assert prog.image[h : h + 2] == bytes.fromhex("1234")
        w = prog.symbols["words"]
        assert prog.image[w : w + 4] == b"\xff\xff\xff\xff"
        s = prog.symbols["str1"]
        assert prog.image[s : s + 4] == b"hi\n\x00"

    def test_bss(self):
        prog = build(
            """
            .global _start
_start:     nop
            .bss
buffer:     .space 64
            """
        )
        assert prog.bss_size == 64
        assert prog.symbols["buffer"] >= prog.text_size

    def test_equ(self):
        prog = build(
            """
            .equ MAGIC, 0x42
            .global _start
_start:     addik r3, r0, MAGIC
            """
        )
        instr = decode(int.from_bytes(prog.image[0:4], "big"))
        assert instr.imm == 0x42

    def test_fsl_operands(self):
        prog = build(
            """
            .global _start
_start:     put  r3, rfsl0
            get  r4, rfsl1
            nget r5, rfsl7
            """
        )
        words = [
            decode(int.from_bytes(prog.image[i : i + 4], "big"))
            for i in range(0, 12, 4)
        ]
        assert [w.mnemonic for w in words] == ["put", "get", "nget"]
        assert [w.fsl_id for w in words] == [0, 1, 7]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble("a:\na:\n nop")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble(" frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError):
            assemble(" add r1, r2")

    def test_instructions_rejected_in_data(self):
        with pytest.raises(AsmError):
            assemble(".data\n add r1, r2, r3")


class TestLinker:
    def test_multi_module_link(self):
        m1 = assemble(
            """
            .global _start
_start:     brlid r15, helper
            nop
            """,
            name="main",
        )
        m2 = assemble(
            """
            .global helper
helper:     rtsd r15, 8
            nop
            """,
            name="helper",
        )
        prog = link([m1, m2])
        assert "helper" in prog.symbols
        # brlid displacement points at helper
        w = decode(int.from_bytes(prog.image[0:4], "big"))
        assert w.mnemonic == "brlid"
        assert w.imm == prog.symbols["helper"]

    def test_undefined_symbol_error(self):
        m = assemble(".global _start\n_start: brlid r15, missing\n nop")
        with pytest.raises(LinkError):
            link(m)

    def test_duplicate_symbol_error(self):
        m1 = assemble(".global _start\n_start: nop\nfoo: nop")
        m2 = assemble("foo: nop", name="other")
        with pytest.raises(LinkError):
            link([m1, m2])

    def test_missing_entry(self):
        m = assemble("main: nop")
        with pytest.raises(LinkError):
            link(m)

    def test_data_after_text_alignment(self):
        prog = build(
            """
            .global _start
_start:     nop
            .data
x:          .word 7
            """
        )
        assert prog.symbols["x"] % 16 == 0
        assert prog.symbols["x"] >= prog.text_size


class TestDisassembler:
    def test_round_trip_text(self):
        source_lines = [
            ("add r1, r2, r3", "add"),
            ("addik r1, r1, -4", "addik"),
            ("get r3, rfsl2", "get"),
            ("sext8 r4, r5", "sext8"),
        ]
        for text, mnemonic in source_lines:
            prog = build(f".global _start\n_start: {text}")
            word = int.from_bytes(prog.image[0:4], "big")
            out = disassemble(word)
            assert out.startswith(mnemonic)

    def test_unknown_word(self):
        assert disassemble(0xFFFFFFFF).startswith(".word")
