"""Rendering coverage for ``repro.cosim.report``: sweep tables with
mixed statuses, empty sweeps, unicode design names, and the
conformance/drift emitters."""

import json

from repro.conformance.golden import DriftEntry
from repro.conformance.oracle import (
    ALL_MODES,
    ConformanceReport,
    Observation,
    ScenarioVerdict,
)
from repro.conformance.scenario import Scenario
from repro.cosim.dse import (
    STATUS_DEADLOCK,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    DSEResult,
)
from repro.cosim.environment import CoSimResult
from repro.cosim.partition import DesignSpec
from repro.cosim.report import (
    conformance_to_json,
    format_conformance,
    format_drift,
    format_sweep,
    format_table,
    sweep_to_json,
    sweep_to_markdown,
)
from repro.cosim.sweep import SweepReport
from repro.iss.cpu import HaltReason


def _ok_result(name, cycles=1000):
    spec = DesignSpec(name=name, factory="m:f", params={"p": 1})
    result = CoSimResult(exit_code=0, cycles=cycles, instructions=cycles // 2,
                         stall_cycles=10, wall_seconds=0.5,
                         simulated_seconds=cycles / 50e6,
                         halt_reason=HaltReason.EXIT)
    return DSEResult(point=spec, result=result, estimate=None,
                     status=STATUS_OK)


def _failed_result(name, status, error):
    spec = DesignSpec(name=name, factory="m:f", params={})
    return DSEResult(point=spec, result=None, estimate=None,
                     status=status, error=error)


def _mixed_report():
    return SweepReport(
        results=[
            _ok_result("péripherique-α", cycles=4242),
            _failed_result("slowpoke", STATUS_TIMEOUT,
                           "exceeded 1.0s budget"),
            _failed_result("bad|pipe", STATUS_ERROR,
                           "ValueError: broken | multi\nline"),
            _failed_result("stuck", STATUS_DEADLOCK,
                           "no instruction retired in 16384 cycles"),
        ],
        wall_seconds=2.5,
        workers=4,
    )


# ----------------------------------------------------------------------
# sweep emitters
# ----------------------------------------------------------------------
def test_format_sweep_mixed_statuses_and_unicode():
    text = format_sweep(_mixed_report())
    assert "péripherique-α" in text
    assert "timeout" in text
    assert "deadlock" in text
    assert "4242" in text
    assert "1/4 ok" in text
    # failed rows render with dashes, not crashes
    assert "-" in text


def test_format_sweep_empty():
    report = SweepReport(results=[], wall_seconds=0.0, workers=0)
    text = format_sweep(report)
    assert "0/0 ok" in text
    assert sweep_to_json(report)  # serializable
    md = sweep_to_markdown(report)
    assert "points: 0" in md


def test_sweep_to_json_roundtrips_unicode():
    payload = json.loads(sweep_to_json(_mixed_report()))
    assert payload["points"] == 4
    assert payload["ok"] == 1
    assert payload["failed"] == 3
    names = [r["name"] for r in payload["results"]]
    assert "péripherique-α" in names
    statuses = {r["name"]: r["status"] for r in payload["results"]}
    assert statuses["slowpoke"] == STATUS_TIMEOUT
    assert statuses["stuck"] == STATUS_DEADLOCK


def test_sweep_to_markdown_escapes_table_breakers():
    md = sweep_to_markdown(_mixed_report())
    # '|' in names/errors must not break the table; newlines flattened
    assert "broken \\| multi line" in md
    assert "\nline" not in md.split("| bad|pipe |")[0]
    assert md.count("| timeout |") == 1
    # the fastest-ok footer names the only ok point
    assert "péripherique-α" in md.splitlines()[-1]


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[1].startswith("----")


# ----------------------------------------------------------------------
# conformance emitters
# ----------------------------------------------------------------------
def _verdict(name, ok=True, status="exit", cycles=123):
    scenario = Scenario(name=name, seed="t")
    obs = Observation(mode="per_cycle", status=status, cycles=cycles,
                      regs=[0] * 32)
    verdict = ScenarioVerdict(scenario=scenario, reference=obs)
    verdict.observations["per_cycle"] = obs
    if not ok:
        verdict.divergences["fast_forward"] = {
            "path": "channels.mb_in0.total_pushed",
            "reference": 7, "observed": 9,
        }
    return verdict


def test_format_conformance_mixed():
    report = ConformanceReport(seed=0, modes=ALL_MODES)
    report.verdicts = [
        _verdict("śćenario-ü", ok=True),
        _verdict("diverged-one", ok=False),
        _verdict("dead", ok=True, status="deadlock", cycles=32768),
    ]
    text = format_conformance(report)
    assert "śćenario-ü" in text
    assert "DIVERGED" in text
    assert "channels.mb_in0.total_pushed" in text
    assert "2/3 scenarios bit-identical" in text
    assert "deadlock: 1" in text


def test_conformance_to_json_deterministic():
    report = ConformanceReport(seed=0, modes=("fast_forward",))
    report.verdicts = [_verdict("a"), _verdict("b", ok=False)]
    one = conformance_to_json(report)
    two = conformance_to_json(report)
    assert one == two
    payload = json.loads(one)
    assert payload["ok"] is False
    assert payload["total"] == 2
    assert payload["scenarios"][1]["divergences"]["fast_forward"]["path"] \
        == "channels.mb_in0.total_pushed"
    # keys sorted for byte-stable artifacts
    assert list(payload) == sorted(payload)


def test_format_drift():
    entries = [
        DriftEntry(name="ok-one", kind="ok"),
        DriftEntry(name="moved", kind="semantic-change", path="cycles",
                   stored=100, live=101, message="re-bless me"),
        DriftEntry(name="broken", kind="silent-regression", path="regs[3]",
                   stored=1, live=2, message="re-blessing cannot fix this"),
    ]
    text = format_drift(entries)
    assert "1/3 golden traces clean, 2 drifted" in text
    assert "semantic-change" in text
    assert "silent-regression" in text
    assert "regs[3]" in text
