"""Unit and property-based tests for the fixed-point substrate."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import Fixed, FixedFormat, Overflow, Rounding
from repro.fixedpoint.rounding import FixedOverflowError

Q16 = FixedFormat(32, 16)
Q8 = FixedFormat(16, 8)
U8 = FixedFormat(8, 0, signed=False)


class TestFormat:
    def test_ranges_signed(self):
        fmt = FixedFormat(8, 4)
        assert fmt.raw_min == -128
        assert fmt.raw_max == 127
        assert fmt.min_value == Fraction(-8)
        assert fmt.max_value == Fraction(127, 16)

    def test_ranges_unsigned(self):
        assert U8.raw_min == 0
        assert U8.raw_max == 255

    def test_resolution(self):
        assert FixedFormat(8, 4).resolution == Fraction(1, 16)
        assert FixedFormat(8, -2).resolution == Fraction(4)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FixedFormat(0, 0)

    def test_repr_style(self):
        assert repr(Q8) == "Fix16_8"
        assert repr(U8) == "UFix8_0"


class TestQuantize:
    def test_exact_values(self):
        x = Q8.quantize(1.5)
        assert x.raw == 0x180
        assert float(x) == 1.5

    def test_truncate_vs_round(self):
        v = 1.0 + 1.0 / 512  # halfway between two Q8 steps
        t = Q8.quantize(v, Rounding.TRUNCATE)
        r = Q8.quantize(v, Rounding.ROUND)
        assert t.raw == 256
        assert r.raw == 257

    def test_negative_truncate_toward_minus_inf(self):
        v = -1.0 - 1.0 / 512
        t = Q8.quantize(v, Rounding.TRUNCATE)
        assert t.raw == -257  # floor

    def test_saturate(self):
        x = Q8.quantize(1000, overflow=Overflow.SATURATE)
        assert x.raw == Q8.raw_max
        y = Q8.quantize(-1000, overflow=Overflow.SATURATE)
        assert y.raw == Q8.raw_min

    def test_wrap(self):
        fmt = FixedFormat(8, 0)
        assert fmt.quantize(130, overflow=Overflow.WRAP).raw == 130 - 256

    def test_flag_raises(self):
        with pytest.raises(FixedOverflowError):
            Q8.quantize(10000, overflow=Overflow.FLAG)

    def test_from_raw_sign_fold(self):
        fmt = FixedFormat(8, 0)
        assert fmt.from_raw(0xFF).raw == -1
        assert fmt.from_raw(0x7F).raw == 127


class TestArithmetic:
    def test_add_exact(self):
        a = Q8.quantize(1.25)
        b = Q8.quantize(2.5)
        assert float(a + b) == 3.75

    def test_sub(self):
        assert float(Q8.quantize(1.0) - Q8.quantize(2.5)) == -1.5

    def test_mul_full_precision(self):
        a = Q8.quantize(1.5)
        b = Q8.quantize(2.5)
        p = a * b
        assert float(p) == 3.75
        assert p.fmt.frac_bits == 16  # fraction bits add

    def test_neg_abs(self):
        a = Q8.quantize(-2.0)
        assert float(-a) == 2.0
        assert float(abs(a)) == 2.0

    def test_shift_changes_scale_not_bits(self):
        a = Q8.quantize(1.0)
        b = a << 2
        assert b.raw == a.raw
        assert float(b) == 4.0

    def test_int_coercion(self):
        a = Q8.quantize(3.0)
        assert float(a + 1) == 4.0
        assert float(2 * a) == 6.0

    def test_comparisons(self):
        assert Q8.quantize(1.5) < Q16.quantize(2.0)
        assert Q8.quantize(2.0) == 2
        assert Q8.quantize(-1.0) <= 0

    def test_bits_pattern(self):
        a = FixedFormat(8, 0).quantize(-1)
        assert a.bits() == 0xFF

    def test_cast_between_formats(self):
        a = Q16.quantize(1.5)
        b = a.cast(Q8)
        assert float(b) == 1.5


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
raw16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)


@given(raw16, raw16)
def test_prop_addition_matches_fractions(ra, rb):
    a = Fixed(ra, FixedFormat(16, 8))
    b = Fixed(rb, FixedFormat(16, 4))
    assert (a + b).value == a.value + b.value


@given(raw16, raw16)
def test_prop_multiplication_matches_fractions(ra, rb):
    a = Fixed(ra, FixedFormat(16, 8))
    b = Fixed(rb, FixedFormat(16, 12))
    assert (a * b).value == a.value * b.value


@given(raw16)
def test_prop_quantize_identity_same_format(raw):
    fmt = FixedFormat(16, 8)
    x = Fixed(raw, fmt)
    assert fmt.quantize(x).raw == raw


@given(raw16)
def test_prop_from_raw_bits_round_trip(raw):
    fmt = FixedFormat(16, 8)
    x = Fixed(raw, fmt)
    assert fmt.from_raw(x.bits()).raw == raw


@given(raw16)
def test_prop_truncation_error_bounded(raw):
    src = FixedFormat(16, 12)
    dst = FixedFormat(16, 4)
    x = Fixed(raw, src)
    y = x.cast(dst, Rounding.TRUNCATE, Overflow.SATURATE)
    if dst.raw_min < y.raw < dst.raw_max:  # not saturated
        assert 0 <= x.value - y.value < dst.resolution


@given(raw16)
def test_prop_round_at_most_half_lsb(raw):
    src = FixedFormat(16, 12)
    dst = FixedFormat(16, 6)
    x = Fixed(raw, src)
    y = x.cast(dst, Rounding.ROUND, Overflow.SATURATE)
    if dst.raw_min < y.raw < dst.raw_max:
        assert abs(x.value - y.value) <= Fraction(dst.resolution, 2)


@given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
def test_prop_wrap_is_twos_complement(value):
    fmt = FixedFormat(16, 0)
    wrapped = fmt.quantize(value, overflow=Overflow.WRAP)
    assert wrapped.raw == ((value + (1 << 15)) % (1 << 16)) - (1 << 15)
