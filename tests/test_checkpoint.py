"""Checkpoint/restore bit-identity and on-disk format validation.

The contract under test: interrupting a co-simulation at an arbitrary
cycle, saving a checkpoint to disk, restoring it into a **freshly
constructed** simulation and running the remaining cycle budget must be
bit-identical — across the conformance oracle's *entire* observation
surface — to the same scenario run uninterrupted.  This must hold in
both per-cycle and fast-forward modes, and for every outcome class
(clean exit, max-cycles and watchdog deadlock).

Fast representative cases run in tier-1; the ``conformance``-marked
sweep widens the corpus to 25+ seeded random scenarios per mode.
"""

from __future__ import annotations

import json

import pytest

from repro.conformance.oracle import _capture, _make_sim, _run, first_divergence
from repro.conformance.scenario import (
    OpSpec,
    PipelineSpec,
    Scenario,
    ScenarioGenerator,
    StageSpec,
    build_program,
)
from repro.cosim.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    checkpoint_to_dict,
    load_checkpoint,
    restore_from_dict,
    save_checkpoint,
)

MODES = ("per_cycle", "fast_forward")

#: statuses whose runs can be cleanly cut at an intermediate cycle
INTERRUPTIBLE = ("exit", "max_cycles", "deadlock")


def _uninterrupted(scenario, program, *, fast_forward):
    sim, _trace = _make_sim(scenario, program, fast_forward=fast_forward)
    status, error = _run(sim, scenario.max_cycles)
    return _capture(sim, "uninterrupted", status, error, None)


def _restored(scenario, program, *, fast_forward, cut, path):
    """Run to ``cut`` cycles, checkpoint to disk, restore into a fresh
    sim and finish the remaining budget there."""
    sim, _trace = _make_sim(scenario, program, fast_forward=fast_forward)
    sim.run(until=cut)
    save_checkpoint(sim, str(path), label=scenario.name)

    fresh, _trace2 = _make_sim(scenario, program, fast_forward=fast_forward)
    load_checkpoint(fresh, str(path))
    fresh.cpu.resume()  # clear the MAX_CYCLES halt at the cut point
    status, error = _run(fresh, scenario.max_cycles - cut)
    return _capture(fresh, "restored", status, error, None)


def _assert_roundtrip(scenario, tmp_path, *, fast_forward):
    program = build_program(scenario)
    ref = _uninterrupted(scenario, program, fast_forward=fast_forward)
    if ref.status not in INTERRUPTIBLE or ref.cycles < 6:
        pytest.skip(f"{scenario.name}: {ref.status} in {ref.cycles} cycles "
                    "cannot be interrupted")
    # One early and one late cut so both a barely-started and a nearly
    # finished snapshot are exercised.
    for fraction in (3, 2):
        cut = max(1, (ref.cycles * (fraction - 1)) // fraction)
        cut = min(cut, ref.cycles - 1)
        obs = _restored(scenario, program, fast_forward=fast_forward,
                        cut=cut, path=tmp_path / f"{scenario.name}.ckpt")
        hit = first_divergence(ref.comparable(), obs.comparable())
        assert hit is None, (
            f"{scenario.name} [{'ff' if fast_forward else 'pc'}] cut at "
            f"cycle {cut}/{ref.cycles}: restored run diverges at "
            f"{hit[0]}: uninterrupted={hit[1]!r} restored={hit[2]!r}"
        )


# --------------------------------------------------------------------------
# tier-1: fast representative scenarios


@pytest.mark.parametrize("index", range(4))
@pytest.mark.parametrize("mode", MODES)
def test_roundtrip_random_scenarios(index, mode, tmp_path):
    scenario = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(index)
    _assert_roundtrip(scenario, tmp_path, fast_forward=(mode == "fast_forward"))


def _deadlock_scenario():
    """Hand-built scenario that trips the progress watchdog: a blocking
    get from a channel whose pipeline never receives input."""
    return Scenario(
        name="ckpt-deadlock",
        seed="ckpt/deadlock",
        fifo_depth=4,
        pipelines=(PipelineSpec(channel=0, stages=(StageSpec("inv"),)),),
        ops=(OpSpec(kind="session", channel=0, count=2, interleaved=True),
             OpSpec(kind="starve_get", channel=0)),
        max_cycles=40_000,
    )


@pytest.mark.parametrize("mode", MODES)
def test_roundtrip_through_deadlock(mode, tmp_path):
    """Restore-then-continue must report the deadlock at the *same*
    absolute cycle as the uninterrupted run (the watchdog is persisted
    state, not run-relative bookkeeping)."""
    scenario = _deadlock_scenario()
    program = build_program(scenario)
    fast_forward = mode == "fast_forward"
    ref = _uninterrupted(scenario, program, fast_forward=fast_forward)
    assert ref.status == "deadlock"
    _assert_roundtrip(scenario, tmp_path, fast_forward=fast_forward)


@pytest.mark.parametrize("mode", MODES)
def test_roundtrip_max_cycles(mode, tmp_path):
    """A run that halts on the cycle budget restores bit-identically."""
    base = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(0)
    program = build_program(base)
    full = _uninterrupted(base, program, fast_forward=(mode == "fast_forward"))
    assert full.status == "exit" and full.cycles > 20
    from dataclasses import replace
    scenario = replace(base, max_cycles=full.cycles // 2)
    _assert_roundtrip(scenario, tmp_path,
                      fast_forward=(mode == "fast_forward"))


# --------------------------------------------------------------------------
# on-disk format validation


def _small_sim():
    scenario = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(0)
    program = build_program(scenario)
    sim, _trace = _make_sim(scenario, program, fast_forward=False)
    sim.run(until=50)
    return scenario, program, sim


def test_checkpoint_document_shape(tmp_path):
    _scenario, _program, sim = _small_sim()
    doc = save_checkpoint(sim, str(tmp_path / "c.json"), label="probe")
    # checkpoints are framed by the durable envelope (PR 10); the
    # payload inside is still the plain JSON document
    from repro.runapi.durable import read_verified

    on_disk = json.loads(read_verified(tmp_path / "c.json"))
    assert on_disk == doc
    assert on_disk["format"] == "mb32-checkpoint"
    assert on_disk["version"] == CHECKPOINT_VERSION
    assert on_disk["label"] == "probe"
    assert on_disk["cycle"] == sim.cpu.cycle
    assert len(on_disk["fingerprint"]) == 64


def test_restore_rejects_wrong_format():
    _scenario, _program, sim = _small_sim()
    with pytest.raises(CheckpointError, match="not an mb32 checkpoint"):
        restore_from_dict(sim, {"format": "something-else"})


def test_restore_rejects_wrong_version():
    _scenario, _program, sim = _small_sim()
    doc = checkpoint_to_dict(sim)
    doc["version"] = CHECKPOINT_VERSION + 1
    with pytest.raises(CheckpointError, match="version"):
        restore_from_dict(sim, doc)


def test_restore_rejects_foreign_fingerprint():
    """A checkpoint from one design must not load into another."""
    _scenario, _program, sim = _small_sim()
    doc = checkpoint_to_dict(sim)
    other_scenario = ScenarioGenerator(seed=11, max_cycles=30_000).scenario(1)
    other_program = build_program(other_scenario)
    other, _trace = _make_sim(other_scenario, other_program,
                              fast_forward=False)
    with pytest.raises(CheckpointError, match="different configuration"):
        restore_from_dict(other, doc)


def test_restore_rejects_tampered_state():
    _scenario, _program, sim = _small_sim()
    doc = checkpoint_to_dict(sim)
    doc["state"]["cpu"]["pc"] = (doc["state"]["cpu"]["pc"] + 4) & 0xFFFFFFFF
    with pytest.raises(CheckpointError, match="digest mismatch"):
        restore_from_dict(sim, doc)


def test_load_rejects_missing_and_corrupt_files(tmp_path):
    _scenario, _program, sim = _small_sim()
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(sim, str(tmp_path / "absent.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(CheckpointError, match="not JSON"):
        load_checkpoint(sim, str(bad))


def test_save_into_missing_directory_raises(tmp_path):
    _scenario, _program, sim = _small_sim()
    with pytest.raises(CheckpointError, match="cannot write"):
        save_checkpoint(sim, str(tmp_path / "no" / "such" / "dir" / "c.json"))


# --------------------------------------------------------------------------
# K-CPU systems: roundtrip, fresh-topology restore, engine switch


def _multi_uninterrupted(scenario, programs, *, fast_forward):
    from repro.conformance.multicpu import build_multi_sim
    from repro.conformance.oracle import _capture_multi

    sim, _trace = build_multi_sim(scenario, programs,
                                  fast_forward=fast_forward)
    status, error = _run(sim, scenario.max_cycles)
    return _capture_multi(sim, "uninterrupted", status, error, None)


def _multi_scenario(index, seed=4):
    from repro.conformance.multicpu import (
        MultiScenarioGenerator,
        build_programs,
    )

    scenario = MultiScenarioGenerator(seed=seed).scenario(index)
    return scenario, build_programs(scenario)


@pytest.mark.parametrize("index", range(3))
@pytest.mark.parametrize("mode", MODES)
def test_multicpu_roundtrip(index, mode, tmp_path):
    """Cut a K-CPU run mid-flight, restore the checkpoint into a
    **freshly built topology** and finish there: every CPU, link FIFO
    and hardware model must land bit-identically to the uninterrupted
    run."""
    from repro.conformance.multicpu import build_multi_sim
    from repro.conformance.oracle import _capture_multi

    fast_forward = mode == "fast_forward"
    scenario, programs = _multi_scenario(index)
    ref = _multi_uninterrupted(scenario, programs,
                               fast_forward=fast_forward)
    if ref.status not in INTERRUPTIBLE or ref.cycles < 6:
        pytest.skip(f"{scenario.name}: {ref.status} in {ref.cycles} "
                    "cycles cannot be interrupted")
    for fraction in (3, 2):
        cut = max(1, (ref.cycles * (fraction - 1)) // fraction)
        cut = min(cut, ref.cycles - 1)
        sim, _t = build_multi_sim(scenario, programs,
                                  fast_forward=fast_forward)
        sim.run(until=cut)
        path = tmp_path / f"{scenario.name}.ckpt"
        save_checkpoint(sim, str(path), label=scenario.name)

        fresh, _t2 = build_multi_sim(scenario, programs,
                                     fast_forward=fast_forward)
        load_checkpoint(fresh, str(path))
        fresh.resume()
        status, error = _run(fresh, scenario.max_cycles - cut)
        obs = _capture_multi(fresh, "restored", status, error, None)
        hit = first_divergence(ref.comparable(), obs.comparable())
        assert hit is None, (
            f"{scenario.name} [{mode}] cut at {cut}/{ref.cycles}: "
            f"diverges at {hit[0]}: {hit[1]!r} != {hit[2]!r}"
        )


def test_multicpu_engine_switch_across_checkpoint(tmp_path):
    """A checkpoint taken on the compiled sysgen engine restores into a
    topology built on the interpreter (and vice versa) with the final
    surface unchanged — engine choice is not persisted state."""
    from repro.conformance.multicpu import build_multi_sim
    from repro.conformance.oracle import _capture_multi
    from repro.runapi import engine_scope

    # a scenario with node-local hardware, so both engines do real work
    scenario, programs = next(
        (s, p) for s, p in (_multi_scenario(i) for i in range(10))
        if any(n.hw_stage is not None for n in s.nodes)
    )
    ref = _multi_uninterrupted(scenario, programs, fast_forward=False)
    assert ref.status in INTERRUPTIBLE and ref.cycles >= 6
    cut = max(1, ref.cycles // 2)
    path = tmp_path / "switch.ckpt"
    for first, second in (("compiled", "interpreter"),
                          ("interpreter", "compiled")):
        with engine_scope(first):
            sim, _t = build_multi_sim(scenario, programs,
                                      fast_forward=False)
            sim.run(until=cut)
            save_checkpoint(sim, str(path), label="switch")
        with engine_scope(second):
            fresh, _t2 = build_multi_sim(scenario, programs,
                                         fast_forward=False)
            load_checkpoint(fresh, str(path))
            fresh.resume()
            status, error = _run(fresh, scenario.max_cycles - cut)
            obs = _capture_multi(fresh, "restored", status, error, None)
        hit = first_divergence(ref.comparable(), obs.comparable())
        assert hit is None, (
            f"{first} -> {second}: diverges at {hit[0]}: "
            f"{hit[1]!r} != {hit[2]!r}"
        )


def test_multicpu_checkpoint_rejects_other_topology():
    """A K-CPU checkpoint must not load into a differently shaped
    system (different node set / topology fingerprint)."""
    from repro.conformance.multicpu import build_multi_sim

    scenario_a, programs_a = _multi_scenario(0)
    scenario_b, programs_b = next(
        (s, p) for s, p in (_multi_scenario(i) for i in range(1, 10))
        if s.to_dict() != scenario_a.to_dict()
    )
    sim_a, _t = build_multi_sim(scenario_a, programs_a,
                                fast_forward=False)
    sim_a.run(until=20)
    doc = checkpoint_to_dict(sim_a)
    sim_b, _t2 = build_multi_sim(scenario_b, programs_b,
                                 fast_forward=False)
    with pytest.raises(CheckpointError):
        restore_from_dict(sim_b, doc)


# --------------------------------------------------------------------------
# wide sweep (CI tier): 25+ scenarios per mode


@pytest.mark.conformance
@pytest.mark.parametrize("mode", MODES)
def test_roundtrip_sweep(mode, tmp_path):
    generator = ScenarioGenerator(seed=2005, max_cycles=60_000)
    checked = 0
    index = 0
    fast_forward = mode == "fast_forward"
    while checked < 25 and index < 120:
        scenario = generator.scenario(index)
        index += 1
        program = build_program(scenario)
        ref = _uninterrupted(scenario, program, fast_forward=fast_forward)
        if ref.status not in INTERRUPTIBLE or ref.cycles < 6:
            continue
        cut = max(1, ref.cycles // 3)
        obs = _restored(scenario, program, fast_forward=fast_forward,
                        cut=cut, path=tmp_path / "sweep.ckpt")
        hit = first_divergence(ref.comparable(), obs.comparable())
        assert hit is None, (
            f"{scenario.name} [{mode}] cut at {cut}/{ref.cycles}: "
            f"diverges at {hit[0]}: {hit[1]!r} != {hit[2]!r}"
        )
        checked += 1
    assert checked >= 25, f"only {checked} interruptible scenarios found"
