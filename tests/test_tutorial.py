"""The docs/TUTORIAL.md MAC peripheral, built and run exactly as the
tutorial shows — documentation that is executable stays true."""

import pytest

from repro.cosim import CoSimulation, MicroBlazeBlock
from repro.mcc import build_executable
from repro.sysgen import Model
from repro.sysgen.blocks import (
    Accumulator,
    Delay,
    Inverter,
    Logical,
    Mult,
    Register,
)


def build_mac():
    model = Model("mac")
    mb = MicroBlazeBlock(model)
    rd = mb.master_fsl(0)
    wr = mb.slave_fsl(0)
    model.connect(rd.o("exists"), rd.i("read"))

    notctrl = model.add(Inverter("notctrl", width=1))
    model.connect(rd.o("control"), notctrl.i("a"))
    data_word = model.add(Logical("data_word", width=1, op="and"))
    model.connect(rd.o("exists"), data_word.i("d0"))
    model.connect(notctrl.o("out"), data_word.i("d1"))
    req = model.add(Logical("req", width=1, op="and"))
    model.connect(rd.o("exists"), req.i("d0"))
    model.connect(rd.o("control"), req.i("d1"))

    phase = model.add(Register("phase", width=1))
    flip = model.add(Logical("flip", width=1, op="xor"))
    model.connect(phase.o("q"), flip.i("d0"))
    model.connect(data_word.o("out"), flip.i("d1"))
    model.connect(flip.o("out"), phase.i("d"))

    xhold = model.add(Register("xhold", width=18))
    model.connect(rd.o("data"), xhold.i("d"))
    notphase = model.add(Inverter("notphase", width=1))
    model.connect(phase.o("q"), notphase.i("a"))
    xen = model.add(Logical("xen", width=1, op="and"))
    model.connect(data_word.o("out"), xen.i("d0"))
    model.connect(notphase.o("out"), xen.i("d1"))
    model.connect(xen.o("out"), xhold.i("en"))

    mult = model.add(Mult("mult", 18, 18, out_width=32, latency=3))
    model.connect(xhold.o("q"), mult.i("a"))
    model.connect(rd.o("data"), mult.i("b"))
    wen = model.add(Logical("wen", width=1, op="and"))
    model.connect(data_word.o("out"), wen.i("d0"))
    model.connect(phase.o("q"), wen.i("d1"))
    valid = model.add(Delay("valid", width=1, n=3))
    model.connect(wen.o("out"), valid.i("d"))

    acc = model.add(Accumulator("acc", width=32))
    model.connect(mult.o("p"), acc.i("d"))
    model.connect(valid.o("q"), acc.i("en"))

    reqd = model.add(Delay("reqd", width=1, n=4))
    model.connect(req.o("out"), reqd.i("d"))
    model.connect(acc.o("q"), wr.i("data"))
    model.connect(reqd.o("q"), wr.i("write"))
    model.connect(reqd.o("q"), acc.i("rst"))
    return model, mb


SOURCE = """
int xs[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int ws[8] = {2, 2, 2, 2, 3, 3, 3, 3};

int main(void) {
    for (int i = 0; i < 8; i++) {
        putfsl(xs[i], 0);
        putfsl(ws[i], 0);
    }
    cputfsl(0, 0);
    return getfsl(0);
}
"""


class TestTutorialMac:
    def test_mac_returns_dot_product(self):
        model, mb = build_mac()
        sim = CoSimulation(build_executable(SOURCE), model, mb)
        result = sim.run()
        expected = sum(x * w for x, w in zip(
            [1, 2, 3, 4, 5, 6, 7, 8], [2, 2, 2, 2, 3, 3, 3, 3]
        ))
        assert result.exit_code == expected == 98

    def test_accumulator_clears_between_requests(self):
        src = """
        int main(void) {
            putfsl(3, 0); putfsl(4, 0);       /* 12 */
            cputfsl(0, 0);
            int first = getfsl(0);
            putfsl(5, 0); putfsl(6, 0);       /* 30, not 42 */
            cputfsl(0, 0);
            int second = getfsl(0);
            return first * 100 + second;
        }
        """
        model, mb = build_mac()
        sim = CoSimulation(build_executable(src), model, mb)
        assert sim.run().exit_code == 12 * 100 + 30

    def test_resources_use_one_multiplier(self):
        model, _ = build_mac()
        res = model.resources()
        assert res.mult18 == 1
        assert res.slices > 0

    def test_mac_lowers_to_rtl(self):
        from repro.rtl.system import RTLSystem

        model, mb = build_mac()
        system = RTLSystem(build_executable(SOURCE), model, mb)
        result = system.run(max_cycles=100_000)
        assert result.exit_code == 98

    def test_mac_exports_vhdl(self):
        from repro.rtl.vhdl_export import export_vhdl

        model, _ = build_mac()
        text = export_vhdl(model)
        assert "entity mac is" in text
        assert "acc_proc" in text
