"""Setup shim for environments without the `wheel` package.

`pip install -e .` works via pyproject.toml where PEP 660 editable
wheels are available; this shim keeps `setup.py develop` working on
minimal offline installs.
"""
from setuptools import setup

setup()
