"""Table II — raw simulation speeds of the individual simulators.

The paper reports, for the CORDIC division application:

==========================  ==================
simulator                   clock cycles / sec
==========================  ==================
instruction simulator             ~105,000
Simulink (HW peripheral only)      ~13,500
ModelSim (behavioral)                 ~650
==========================  ==================

and notes the co-simulation environment can therefore "potentially
achieve simulation speed-ups from 5.5X to more than 1000X" over
low-level simulation.  This bench measures the same three rows on our
substrates (plus the combined co-simulation): the absolute numbers
depend on the host, the *ordering and orders-of-magnitude gaps* are the
reproduced result.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.apps.cordic.design import CordicDesign
from repro.apps.cordic.hardware import build_cordic_model
from repro.apps.matmul.design import MatmulDesign
from repro.cosim.environment import CoSimulation
from repro.cosim.report import format_table
from repro.iss.run import make_cpu
from repro.rtl.system import RTLSystem

PAPER = {
    "instruction simulator": 105_000,
    "sysgen model (HW only)": 13_500,
    "co-simulation (HW+SW)": None,
    "RTL event-driven (ModelSim-like)": 650,
}


def _iss_speed() -> float:
    """Software-only CORDIC on the bare instruction simulator."""
    design = CordicDesign(p=0, iters=24, ndata=64, verify=False)
    cpu = make_cpu(design.program, config=design.cpu_config)
    t0 = time.perf_counter()
    cpu.run(max_cycles=10_000_000)
    wall = time.perf_counter() - t0
    return cpu.cycle / wall


def _sysgen_speed() -> float:
    """The HW peripheral alone, streamed with data (the paper's
    'Simulink (1): only simulate the hardware peripherals')."""
    model, mb = build_cordic_model(4)
    to_hw = mb.to_hw_channel(0)
    from_hw = mb.from_hw_channel(0)
    model.compile()
    cycles = 30_000
    t0 = time.perf_counter()
    fed = 0
    for c in range(cycles):
        if not to_hw.full:
            to_hw.push((1 << 16) if fed % 4 == 0 else fed,
                       control=(fed % 4 == 0))
            fed += 1
        if from_hw.exists:
            from_hw.pop()
        model.step()
    wall = time.perf_counter() - t0
    return cycles / wall


def _cosim_run(make_design, fast_forward: bool = True):
    design = make_design()
    sim = CoSimulation(design.program, design.model, design.mb,
                       cpu_config=design.cpu_config,
                       fast_forward=fast_forward)
    result = sim.run()
    assert result.exit_code == 0
    return result


def _cosim_speed() -> float:
    result = _cosim_run(
        lambda: CordicDesign(p=4, iters=24, ndata=64, verify=False)
    )
    return result.cycles_per_wall_second


def _rtl_speed() -> float:
    design = CordicDesign(p=4, iters=24, ndata=8, verify=False)
    system = RTLSystem(design.program, design.model, design.mb)
    result = system.run()
    assert result.exit_code == 0
    return result.cycles_per_wall_second


def test_table2_simulator_speeds(once):
    speeds = once(
        lambda: {
            "instruction simulator": _iss_speed(),
            "sysgen model (HW only)": _sysgen_speed(),
            "co-simulation (HW+SW)": _cosim_speed(),
            "RTL event-driven (ModelSim-like)": _rtl_speed(),
        }
    )
    rows = []
    for name, measured in speeds.items():
        paper = PAPER[name]
        rows.append(
            (name, f"{measured:,.0f}",
             f"{paper:,}" if paper else "(not reported)")
        )
    # Ordering must match the paper: ISS > HW-only > RTL, with a wide
    # gap down to the event-driven baseline (paper's ratio is ~21x;
    # exact magnitudes are host-dependent).
    assert speeds["instruction simulator"] > speeds["sysgen model (HW only)"]
    assert speeds["sysgen model (HW only)"] > \
        5 * speeds["RTL event-driven (ModelSim-like)"]
    assert speeds["co-simulation (HW+SW)"] > \
        speeds["RTL event-driven (ModelSim-like)"]
    potential = speeds["instruction simulator"] / \
        speeds["RTL event-driven (ModelSim-like)"]
    emit(
        "table2_sim_speeds",
        "Table II: simulation speeds (clock cycles / wall second)",
        format_table(["simulator", "measured cyc/s", "paper cyc/s"], rows)
        + f"\n\npotential speedup span (ISS vs RTL): {potential:,.0f}x "
          "(paper: 'from 5.5X to more than 1000X')",
    )


#: blocking-FSL co-simulation workloads for the fast-forward ablation.
ABLATION_WORKLOADS = {
    "cordic p=4 n=64": lambda: CordicDesign(
        p=4, iters=24, ndata=64, verify=False
    ),
    "matmul b=2 n=8": lambda: MatmulDesign(block=2, matn=8, verify=False),
}


def test_table2_fast_forward_ablation(once, fast_forward_smoke):
    """Fast-forward kernel on/off: identical counts, higher speed."""

    def measure():
        out = {}
        for name, make in ABLATION_WORKLOADS.items():
            off = _cosim_run(make, fast_forward=False)
            on = _cosim_run(make, fast_forward=True)
            out[name] = (off, on)
        return out

    results = once(measure)
    rows = []
    speedups = []
    for name, (off, on) in results.items():
        # The kernel must be an optimization, never an approximation.
        assert (on.cycles, on.instructions, on.stall_cycles) == \
            (off.cycles, off.instructions, off.stall_cycles), name
        speedup = on.cycles_per_wall_second / off.cycles_per_wall_second
        speedups.append(speedup)
        rows.append(
            (name, f"{off.cycles:,}",
             f"{off.cycles_per_wall_second:,.0f}",
             f"{on.cycles_per_wall_second:,.0f}",
             f"{speedup:.2f}x")
        )
    # At least one blocking-FSL workload must clear the 1.5x target.
    assert max(speedups) >= 1.5
    emit(
        "ablation_fast_forward",
        "Ablation: fast-forward co-simulation kernel (on vs off)",
        format_table(
            ["workload", "cycles (identical)", "off cyc/s", "on cyc/s",
             "speedup"],
            rows,
        )
        + "\n\ncycle/instruction/stall counts are bit-identical in both"
          " modes; smoke target: python -m pytest tests -q -k fast_forward",
    )
