"""Table II — raw simulation speeds of the individual simulators.

The paper reports, for the CORDIC division application:

==========================  ==================
simulator                   clock cycles / sec
==========================  ==================
instruction simulator             ~105,000
Simulink (HW peripheral only)      ~13,500
ModelSim (behavioral)                 ~650
==========================  ==================

and notes the co-simulation environment can therefore "potentially
achieve simulation speed-ups from 5.5X to more than 1000X" over
low-level simulation.  This bench measures the same three rows on our
substrates (plus the combined co-simulation): the absolute numbers
depend on the host, the *ordering and orders-of-magnitude gaps* are the
reproduced result.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.apps.cordic.design import CordicDesign
from repro.apps.cordic.hardware import build_cordic_model
from repro.apps.matmul.design import MatmulDesign
from repro.cosim.environment import CoSimulation
from repro.cosim.report import format_table
from repro.iss.run import make_cpu
from repro.rtl.system import RTLSystem

PAPER = {
    "instruction simulator": 105_000,
    "sysgen model (HW only)": 13_500,
    "co-simulation (HW+SW)": None,
    "RTL event-driven (ModelSim-like)": 650,
}


def _iss_speed() -> float:
    """Software-only CORDIC on the bare instruction simulator."""
    design = CordicDesign(p=0, iters=24, ndata=64, verify=False)
    cpu = make_cpu(design.program, config=design.cpu_config)
    t0 = time.perf_counter()
    cpu.run(max_cycles=10_000_000)
    wall = time.perf_counter() - t0
    return cpu.cycle / wall


def _sysgen_speed() -> float:
    """The HW peripheral alone, streamed with data (the paper's
    'Simulink (1): only simulate the hardware peripherals')."""
    model, mb = build_cordic_model(4)
    to_hw = mb.to_hw_channel(0)
    from_hw = mb.from_hw_channel(0)
    model.compile()
    cycles = 30_000
    t0 = time.perf_counter()
    fed = 0
    for c in range(cycles):
        if not to_hw.full:
            to_hw.push((1 << 16) if fed % 4 == 0 else fed,
                       control=(fed % 4 == 0))
            fed += 1
        if from_hw.exists:
            from_hw.pop()
        model.step()
    wall = time.perf_counter() - t0
    return cycles / wall


def _cosim_run(make_design, fast_forward: bool = True,
               force_interp: bool = False):
    design = make_design()
    design.model.force_interpreter = force_interp
    sim = CoSimulation(design.program, design.model, design.mb,
                       cpu_config=design.cpu_config,
                       fast_forward=fast_forward)
    result = sim.run()
    assert result.exit_code == 0
    return result


def _cosim_speed() -> float:
    result = _cosim_run(
        lambda: CordicDesign(p=4, iters=24, ndata=64, verify=False)
    )
    return result.cycles_per_wall_second


def _rtl_speed() -> float:
    design = CordicDesign(p=4, iters=24, ndata=8, verify=False)
    system = RTLSystem(design.program, design.model, design.mb)
    result = system.run()
    assert result.exit_code == 0
    return result.cycles_per_wall_second


def test_table2_simulator_speeds(once):
    speeds = once(
        lambda: {
            "instruction simulator": _iss_speed(),
            "sysgen model (HW only)": _sysgen_speed(),
            "co-simulation (HW+SW)": _cosim_speed(),
            "RTL event-driven (ModelSim-like)": _rtl_speed(),
        }
    )
    rows = []
    for name, measured in speeds.items():
        paper = PAPER[name]
        rows.append(
            (name, f"{measured:,.0f}",
             f"{paper:,}" if paper else "(not reported)")
        )
    # Ordering must match the paper: ISS > HW-only > RTL, with a wide
    # gap down to the event-driven baseline (paper's ratio is ~21x;
    # exact magnitudes are host-dependent).
    assert speeds["instruction simulator"] > speeds["sysgen model (HW only)"]
    assert speeds["sysgen model (HW only)"] > \
        5 * speeds["RTL event-driven (ModelSim-like)"]
    assert speeds["co-simulation (HW+SW)"] > \
        speeds["RTL event-driven (ModelSim-like)"]
    potential = speeds["instruction simulator"] / \
        speeds["RTL event-driven (ModelSim-like)"]
    emit(
        "table2_sim_speeds",
        "Table II: simulation speeds (clock cycles / wall second)",
        format_table(["simulator", "measured cyc/s", "paper cyc/s"], rows)
        + f"\n\npotential speedup span (ISS vs RTL): {potential:,.0f}x "
          "(paper: 'from 5.5X to more than 1000X')",
    )


#: the HW-only speed recorded before the compiled schedule existed
#: (interpreter engine, same host class) — the Table II baseline the
#: generated-code engine is measured against.
PRE_COMPILED_BASELINE = 9_605


def _sysgen_engine_run(force_interp: bool):
    """The `_sysgen_speed` workload pinned to one engine, returning
    both the speed and a full observable fingerprint so the ablation
    can assert bit-identity, not just compare throughput."""
    model, mb = build_cordic_model(4)
    model.force_interpreter = force_interp
    to_hw = mb.to_hw_channel(0)
    from_hw = mb.from_hw_channel(0)
    model.compile()
    cycles = 30_000
    popped = []
    t0 = time.perf_counter()
    fed = 0
    for c in range(cycles):
        if not to_hw.full:
            to_hw.push((1 << 16) if fed % 4 == 0 else fed,
                       control=(fed % 4 == 0))
            fed += 1
        if from_hw.exists:
            word = from_hw.pop()
            popped.append((word.data, word.control))
        model.step()
    wall = time.perf_counter() - t0
    fingerprint = (popped, model.state_dict(),
                   to_hw.state_dict(), from_hw.state_dict())
    return cycles / wall, fingerprint


def test_table2_compiled_schedule_ablation(once, compiled_smoke):
    """Compiled schedule vs per-cycle interpreter on the Table II
    HW-only workload: identical observables, ≥10x the recorded
    pre-compiled baseline."""

    def measure():
        interp_speed, interp_fp = _sysgen_engine_run(True)
        compiled_speed, compiled_fp = _sysgen_engine_run(False)
        return interp_speed, compiled_speed, interp_fp == compiled_fp

    interp_speed, compiled_speed, identical = once(measure)
    # The generated code must be an optimization, never an approximation:
    # popped FSL words, block state, probes and channel stats all match.
    assert identical, "engines diverged on the Table II workload"
    live = compiled_speed / interp_speed
    vs_recorded = compiled_speed / PRE_COMPILED_BASELINE
    # Host-safe floor for CI; the recorded artifact carries the real
    # ratios (~9-14x on the reference host).
    assert live >= 4.0, f"compiled schedule only {live:.2f}x interpreter"
    emit(
        "ablation_compiled_schedule",
        "Ablation: compiled sysgen schedule (vs per-cycle interpreter)",
        format_table(
            ["engine", "cyc/s", "vs interpreter", "vs recorded 9,605"],
            [
                ("interpreter (REPRO_SYSGEN_INTERP=1)",
                 f"{interp_speed:,.0f}", "1.00x",
                 f"{interp_speed / PRE_COMPILED_BASELINE:.2f}x"),
                ("compiled schedule (default)",
                 f"{compiled_speed:,.0f}", f"{live:.2f}x",
                 f"{vs_recorded:.2f}x"),
            ],
        )
        + "\n\nobservables (popped FSL words, block state, channel stats)"
          " are bit-identical in both engines; smoke target: "
          "python -m pytest tests -q -k compiled",
    )


#: blocking-FSL co-simulation workloads for the fast-forward ablation.
ABLATION_WORKLOADS = {
    "cordic p=4 n=64": lambda: CordicDesign(
        p=4, iters=24, ndata=64, verify=False
    ),
    "matmul b=2 n=8": lambda: MatmulDesign(block=2, matn=8, verify=False),
}


def test_table2_fast_forward_ablation(once, fast_forward_smoke):
    """Fast-forward kernel on/off: identical counts, higher speed.

    The speedup claim is pinned to the interpreter engine, whose
    per-cycle step cost is what the kernel was built to skip.  The
    compiled-engine rows are recorded for context: generated code
    shrinks the per-cycle baseline enough that scanning for quiescence
    can cost more than the cycles it saves (the two optimizations
    overlap; see ``ablation_compiled_schedule``)."""

    def measure():
        out = {}
        for name, make in ABLATION_WORKLOADS.items():
            for engine, force in (("interpreter", True),
                                  ("compiled", False)):
                off = _cosim_run(make, fast_forward=False,
                                 force_interp=force)
                on = _cosim_run(make, fast_forward=True,
                                force_interp=force)
                out[f"{name} [{engine}]"] = (off, on, engine)
        return out

    results = once(measure)
    rows = []
    interp_speedups = []
    for name, (off, on, engine) in results.items():
        # The kernel must be an optimization, never an approximation.
        assert (on.cycles, on.instructions, on.stall_cycles) == \
            (off.cycles, off.instructions, off.stall_cycles), name
        speedup = on.cycles_per_wall_second / off.cycles_per_wall_second
        if engine == "interpreter":
            interp_speedups.append(speedup)
        rows.append(
            (name, f"{off.cycles:,}",
             f"{off.cycles_per_wall_second:,.0f}",
             f"{on.cycles_per_wall_second:,.0f}",
             f"{speedup:.2f}x")
        )
    # At least one blocking-FSL workload must clear the 1.5x target on
    # the engine the kernel's win is defined against.
    assert max(interp_speedups) >= 1.5
    emit(
        "ablation_fast_forward",
        "Ablation: fast-forward co-simulation kernel (on vs off)",
        format_table(
            ["workload", "cycles (identical)", "off cyc/s", "on cyc/s",
             "speedup"],
            rows,
        )
        + "\n\ncycle/instruction/stall counts are bit-identical in both"
          " modes; the 1.5x target applies to the interpreter engine"
          " (the compiled schedule already removes most of the per-cycle"
          " cost the kernel skips); smoke target:"
          " python -m pytest tests -q -k fast_forward",
    )
