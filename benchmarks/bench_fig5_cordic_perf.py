"""Figure 5 — time performance of the CORDIC processor for division.

Regenerates both series of the paper's Figure 5: execution time (µs at
50 MHz) versus the number of PEs P (P = 0 is the pure-software
implementation), for 16 and 24 CORDIC iterations.

Paper's headline for this figure: at 24 iterations, the P = 4 design is
5.6× faster than pure software.  Expected shape: every hardware
configuration beats software, time decreases monotonically with P, and
the 24-iteration curve sits above the 16-iteration curve.
"""

from __future__ import annotations

from conftest import emit

from repro.apps.cordic.design import CordicDesign
from repro.cosim.report import format_table

P_SWEEP = (0, 2, 4, 6, 8)
NDATA = 32


def _sweep(iters: int):
    rows = []
    sw_cycles = None
    for p in P_SWEEP:
        design = CordicDesign(p=p, iters=iters, ndata=NDATA)
        result = design.run()  # verifies against the golden model
        if p == 0:
            sw_cycles = result.cycles
        rows.append(
            (
                "software" if p == 0 else f"P={p}",
                result.cycles,
                f"{result.simulated_microseconds:.1f}",
                f"{sw_cycles / result.cycles:.2f}x",
            )
        )
    return rows


def test_fig5_cordic_time_vs_p(once):
    tables = []
    speedups = {}
    for iters in (16, 24):
        rows = once(_sweep, iters) if iters == 24 else _sweep(iters)
        tables.append(
            f"{iters} iterations ({NDATA} divisions, 50 MHz):\n"
            + format_table(["design", "cycles", "time (us)", "speedup"], rows)
        )
        cycles = [int(r[1]) for r in rows]
        speedups[iters] = cycles[0] / cycles[2]  # software vs P=4
        # shape assertions: monotone improvement with P, all HW beat SW
        assert all(a > b for a, b in zip(cycles, cycles[1:])), \
            "execution time must fall monotonically with P"
    emit(
        "fig5_cordic_perf",
        "Figure 5: CORDIC division execution time vs P",
        "\n\n".join(tables)
        + f"\n\npaper: 5.6x speedup at P=4/24it; measured: "
          f"{speedups[24]:.2f}x at P=4/24it",
    )
