"""Table I — resource usage and cycle-accurate simulation time.

For each of the paper's six designs (CORDIC division with P = 2/4/6/8
at 24 iterations; matrix multiplication with 2×2 and 4×4 blocks) this
bench reports:

* estimated resources (Section III-C rapid estimation) vs *actual*
  resources (mapped from the lowered RTL netlist — our ISE ``.par``
  analogue),
* wall-clock time to functionally simulate the same workload in the
  high-level co-simulation environment vs the event-driven RTL baseline
  ("ModelSim behavioral"), and the resulting speedup.

The paper reports speedups of 5.6×–19.4× (avg ≈ 12.8×) for CORDIC and
13×/15.1× for matmul.  Workloads are scaled down (8 divisions, 8×8
matrices) so the RTL baseline finishes in seconds; the speedup ratio is
what matters and is workload-size-insensitive.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.apps.cordic.design import CordicDesign
from repro.apps.matmul.design import MatmulDesign
from repro.cosim.report import format_table
from repro.resources.par import design_actual
from repro.rtl.system import RTLSystem

CORDIC_NDATA = 8
MATMUL_N = 8

PAPER_ROWS = {
    "CORDIC P=2": ("729/721", "5.6x"),
    "CORDIC P=4": ("801/793", "11.0x"),
    "CORDIC P=6": ("873/865", "15.2x"),
    "CORDIC P=8": ("975/937", "19.4x"),
    "matmul 2x2": ("851/713", "13.0x"),
    "matmul 4x4": ("1043/867", "15.1x"),
}


def _designs():
    for p in (2, 4, 6, 8):
        yield f"CORDIC P={p}", lambda p=p: CordicDesign(
            p=p, iters=24, ndata=CORDIC_NDATA
        )
    for block in (2, 4):
        yield f"matmul {block}x{block}", lambda block=block: MatmulDesign(
            block=block, matn=MATMUL_N
        )


def _evaluate(name, factory):
    design = factory()
    est = design.estimate()
    actual = design_actual(
        model=design.model,
        program=design.program,
        cpu_config=design.cpu_config,
        n_fsl_links=design.mb.n_links,
    )
    cosim_result = design.run()

    # Fresh design for the RTL run (own channels/netlist), including
    # netlist elaboration time — the paper includes the time for
    # compiling the simulation models.
    rtl_design = factory()
    t0 = time.perf_counter()
    system = RTLSystem(rtl_design.program, rtl_design.model, rtl_design.mb)
    rtl_result = system.run()
    rtl_wall = time.perf_counter() - t0
    assert rtl_result.exit_code == 0
    rtl_design._verify(system.cpu)

    speedup = rtl_wall / cosim_result.wall_seconds
    return {
        "name": name,
        "est": est.total,
        "act": actual,
        "cosim_s": cosim_result.wall_seconds,
        "rtl_s": rtl_wall,
        "speedup": speedup,
        "cycles": cosim_result.cycles,
    }


def test_table1_resources_and_simulation_time(once):
    results = once(lambda: [_evaluate(n, f) for n, f in _designs()])
    rows = []
    for r in results:
        paper_slices, paper_speedup = PAPER_ROWS[r["name"]]
        rows.append(
            (
                r["name"],
                f"{r['est'].slices}/{r['act'].slices}",
                f"{r['est'].brams}/{r['act'].brams}",
                f"{r['est'].mult18}/{r['act'].mult18}",
                f"{r['cosim_s']:.2f}s",
                f"{r['rtl_s']:.2f}s",
                f"{r['speedup']:.1f}x",
                paper_slices,
                paper_speedup,
            )
        )
        # shape: the co-simulation must be substantially faster
        assert r["speedup"] > 2.0, f"{r['name']}: speedup {r['speedup']:.1f}"
        # estimated and actual multipliers/BRAMs must agree exactly
        assert r["est"].mult18 == r["act"].mult18
    avg = sum(r["speedup"] for r in results) / len(results)
    table = format_table(
        ["design", "slices est/act", "BRAM e/a", "MULT e/a",
         "our env", "RTL (ModelSim-like)", "speedup",
         "paper slices", "paper speedup"],
        rows,
    )
    emit(
        "table1_resources_simtime",
        "Table I: resources (estimated/actual) and simulation times",
        table + f"\n\naverage simulation speedup: {avg:.1f}x "
                f"(paper: 12.8x CORDIC avg, 13-15.1x matmul)",
    )
