"""Farm service benches: concurrent throughput, cold-vs-cached
latency, and worker scaling.

The acceptance bar for the co-simulation-as-a-service gateway:

* ≥ 1000 concurrent submissions of a mixed job set on localhost with
  ≥ 4 workers, duplicates executing once and every submitter getting
  byte-identical result payloads,
* cached hits answered in < 10 ms,
* sweep wall time scaling with the worker pool.

The load generator is the farm's own asyncio HTTP client — many
persistent keep-alive connections, each pipelining submissions — so
the bench exercises exactly the multiplexing path a fleet of users
would.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import time

from conftest import emit

from repro.cosim.report import format_table
from repro.farm import FarmClient, start_farm_thread
from repro.farm.httpio import AsyncHTTPConnection


def synth(seconds: float, cycles: int) -> dict:
    return {
        "design": {
            "factory": "repro.cosim.sweep:SyntheticDesign",
            "params": {"seconds": seconds, "cycles": cycles},
        }
    }


def job_doc(kind: str, payload: dict, tenant: str) -> bytes:
    return json.dumps(
        {"kind": kind, "payload": payload, "tenant": tenant}
    ).encode()


async def _drive(host: str, port: int, jobs: list[bytes],
                 connections: int) -> list[dict]:
    """Submit every job (``?wait=1``) over ``connections`` persistent
    connections; returns the final status documents."""
    queue: asyncio.Queue[bytes] = asyncio.Queue()
    for job in jobs:
        queue.put_nowait(job)
    results: list[dict] = []

    async def worker() -> None:
        conn = AsyncHTTPConnection(host, port)
        try:
            while True:
                try:
                    body = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                status, _, data = await conn.request(
                    "POST", "/v1/jobs?wait=1", body
                )
                assert status == 200, (status, data[:200])
                results.append(json.loads(data))
        finally:
            await conn.close()

    await asyncio.gather(*(worker() for _ in range(connections)))
    return results


def test_farm_1000_concurrent_mixed(farm_smoke, once, tmp_path):
    """1000 concurrent submissions, 4 workers, mixed kinds, heavy
    duplication — measures end-to-end throughput and proves dedup at
    load (the byte-identity itself is enforced by the test suite the
    ``farm_smoke`` fixture just ran)."""
    farm = start_farm_thread(workers=4,
                             cache_dir=str(tmp_path / "cache"))
    try:
        # 1000 submissions over 125 distinct payloads (8 copies each):
        # 100 unique simulate points + 25 unique scenarios
        jobs: list[bytes] = []
        for copy in range(8):
            tenant = f"tenant-{copy % 4}"
            for i in range(100):
                jobs.append(job_doc(
                    "simulate", synth(0.0, 10_000 + i), tenant))
            for i in range(25):
                jobs.append(job_doc(
                    "scenario", {"seed": 7, "index": i}, tenant))
        assert len(jobs) == 1000

        t0 = time.perf_counter()
        results = once(lambda: asyncio.run(
            _drive(farm.host, farm.port, jobs, connections=64)))
        wall = time.perf_counter() - t0
        assert len(results) == 1000
        assert all(r["state"] == "done" for r in results)

        metrics = FarmClient(farm.host, farm.port).farm_status()["metrics"]
        # counters are created lazily; absent means zero.  coalesced
        # followers share their primary's completion, so executions
        # are completions minus cache replays.
        cache_hits = metrics.get("farm.jobs.cache_hits", 0)
        coalesced = metrics.get("farm.jobs.coalesced", 0)
        shed = metrics.get("farm.jobs.shed", 0)
        executions = metrics["farm.jobs.completed"] - cache_hits
        rows = [
            ("submissions", 1000),
            ("distinct payloads", 125),
            ("workers", 4),
            ("wall (s)", f"{wall:.2f}"),
            ("throughput (jobs/s)", f"{1000 / wall:.0f}"),
            ("executions", executions),
            ("cache hits", cache_hits),
            ("coalesced in-flight", coalesced),
            ("shed", shed),
        ]
        emit(
            "farm_throughput",
            "Farm: 1000 concurrent mixed submissions, 4 workers",
            format_table(("metric", "value"), rows),
        )
        assert shed == 0
        # every duplicate was served without re-execution
        assert executions == 125
    finally:
        farm.stop()


def test_farm_cold_vs_cached_latency(farm_smoke, once, tmp_path):
    """Round-trip submit latency: first execution vs content-addressed
    replay of the identical job."""
    farm = start_farm_thread(workers=4,
                             cache_dir=str(tmp_path / "cache"))
    try:
        client = FarmClient(farm.host, farm.port)
        colds, cacheds = [], []

        def measure() -> None:
            for i in range(30):
                payload = synth(0.0, 77_000 + i)
                t0 = time.perf_counter()
                doc = client.submit("simulate", payload, wait=True)
                colds.append((time.perf_counter() - t0) * 1e3)
                assert doc["state"] == "done" and not doc["cache_hit"]
                t0 = time.perf_counter()
                doc = client.submit("simulate", payload, wait=True)
                cacheds.append((time.perf_counter() - t0) * 1e3)
                assert doc["cache_hit"]

        once(measure)
        rows = [
            ("cold submit (median ms)",
             f"{statistics.median(colds):.2f}"),
            ("cold submit (p95 ms)",
             f"{sorted(colds)[int(0.95 * len(colds))]:.2f}"),
            ("cached submit (median ms)",
             f"{statistics.median(cacheds):.2f}"),
            ("cached submit (p95 ms)",
             f"{sorted(cacheds)[int(0.95 * len(cacheds))]:.2f}"),
        ]
        emit(
            "farm_latency",
            "Farm: cold vs content-addressed cached submit latency",
            format_table(("metric", "value"), rows),
        )
        # the acceptance bound, with margin for loaded CI hosts
        assert statistics.median(cacheds) < 10.0
    finally:
        farm.stop()


def test_farm_worker_scaling(farm_smoke, once):
    """Wall time of one 16-point wait-bound sweep (0.1 s/point) as the
    worker pool grows — the 'everything scales by adding workers'
    table.  Wait-bound points make the ideal N× overlap measurable
    independent of host core count."""
    points = [
        {"name": f"p{i}",
         "factory": "repro.cosim.sweep:SyntheticDesign",
         "params": {"seconds": 0.1, "cycles": 50_000}}
        for i in range(16)
    ]

    def run_all() -> list[tuple[int, float]]:
        timings = []
        for workers in (1, 2, 4, 8):
            farm = start_farm_thread(workers=workers)
            try:
                client = FarmClient(farm.host, farm.port)
                t0 = time.perf_counter()
                doc = client.submit("sweep", {"points": points},
                                    cacheable=False, wait=True,
                                    timeout_s=300)
                wall = time.perf_counter() - t0
                assert doc["state"] == "done"
                assert doc["result"]["ok"] == 16
                timings.append((workers, wall))
            finally:
                farm.stop()
        return timings

    timings = once(run_all)
    base = timings[0][1]
    rows = [
        (w, f"{wall:.2f}", f"{base / wall:.2f}x")
        for w, wall in timings
    ]
    emit(
        "farm_scaling",
        "Farm: 16-point wait-bound sweep (0.1 s/point) vs workers",
        format_table(("workers", "wall (s)", "speedup"), rows),
    )
    # 4 workers must beat 1 worker clearly on wait-bound points
    assert dict(timings)[4] < base / 2
