"""Energy-estimation bench — the paper's future-work extension.

Not a table in the 2005 paper (its conclusion promises this exact
integration); reported here as the natural seventh experiment: energy
per CORDIC partition from the same co-simulation runs, decomposed into
software / peripheral / quiescent terms.
"""

from __future__ import annotations

from conftest import emit

from repro.apps.common import run_software_only
from repro.apps.cordic.design import CordicDesign
from repro.cosim.environment import CoSimulation
from repro.cosim.report import format_table
from repro.energy import ActivityMonitor, estimate_energy


def _energy_for(p: int):
    design = CordicDesign(p=p, iters=24, ndata=16)
    if p == 0:
        result, cpu = run_software_only(design.program, design.cpu_config)
        monitor = model = None
    else:
        monitor = ActivityMonitor(design.model).install()
        sim = CoSimulation(design.program, design.model, design.mb,
                           cpu_config=design.cpu_config)
        result = sim.run()
        cpu = sim.cpu
        model = design.model
    assert result.exit_code == 0
    slices = design.estimate().total.slices
    return estimate_energy(cpu, model, monitor, slices=slices)


def test_energy_per_partition(once):
    reports = once(lambda: {p: _energy_for(p) for p in (0, 2, 4, 8)})
    rows = []
    for p, rep in reports.items():
        rows.append(
            (
                "software" if p == 0 else f"P={p}",
                rep.cycles,
                f"{rep.software.total_nj / 1000:.2f}",
                f"{rep.peripheral_nj / 1000:.2f}",
                f"{rep.quiescent_nj / 1000:.2f}",
                f"{rep.total_uj:.2f}",
            )
        )
    # Shape: total energy falls with P for this workload (runtime
    # shrinks faster than peripheral+leakage grow), and the software
    # term dominates at P=0.
    totals = [reports[p].total_uj for p in (0, 2, 4, 8)]
    assert all(a > b for a, b in zip(totals, totals[1:]))
    assert reports[0].peripheral_nj == 0.0
    emit(
        "energy_partitions",
        "Energy estimation (paper future-work extension): CORDIC, "
        "16 divisions x 24 iterations",
        format_table(
            ["design", "cycles", "SW uJ", "HW uJ", "leak uJ", "total uJ"],
            rows,
        ),
    )
