"""Figure 7 — time performance of block matrix multiplication.

Regenerates the paper's Figure 7: execution time versus matrix size N
for pure software, 2×2-block and 4×4-block hardware partitions.

Paper's headline: the 4×4 design is 2.2× *faster* than software at
16×16 while the 2×2 design is 8.8 % *slower* — the communication
overhead exceeds the parallel-multiply savings for small blocks.
Expected shape: software < 2×2 (2×2 loses) and 4×4 < software (4×4
wins) at every N.
"""

from __future__ import annotations

from conftest import emit

from repro.apps.matmul.design import MatmulDesign
from repro.cosim.report import format_table

N_SWEEP = (4, 8, 16)
BLOCKS = (0, 2, 4)


def _point(block: int, n: int):
    design = MatmulDesign(block=block, matn=n)
    return design.run()


def test_fig7_matmul_time_vs_n(once):
    rows = []
    cycles: dict[tuple[int, int], int] = {}
    for n in N_SWEEP:
        for block in BLOCKS:
            if block and n % block:
                continue
            result = once(_point, block, n) if (n, block) == (16, 4) else \
                _point(block, n)
            cycles[(n, block)] = result.cycles
            rows.append(
                (
                    n,
                    "software" if block == 0 else f"{block}x{block}",
                    result.cycles,
                    f"{result.simulated_microseconds:.1f}",
                )
            )
    lines = [format_table(["N", "design", "cycles", "time (us)"], rows)]
    for n in N_SWEEP:
        sw = cycles[(n, 0)]
        r2 = sw / cycles[(n, 2)]
        r4 = sw / cycles[(n, 4)]
        lines.append(
            f"N={n}: 2x2 speedup {r2:.2f}x (paper ~0.92x), "
            f"4x4 speedup {r4:.2f}x (paper ~2.2x)"
        )
        # the paper's crossover: 2x2 loses, 4x4 wins
        assert cycles[(n, 2)] > sw, "2x2 blocks must lose to software"
        assert cycles[(n, 4)] < sw, "4x4 blocks must beat software"
    emit(
        "fig7_matmul_perf",
        "Figure 7: block matmul execution time vs N",
        "\n".join(lines),
    )
