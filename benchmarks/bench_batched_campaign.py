"""Ablation: fault-campaign throughput on the lockstep vector engine.

``run_campaign(batch_width=N)`` simulates N seeded SEU trials at once
— one shared program build, one vectorized hardware schedule, per-lane
CPUs — and is byte-identical to the scalar campaign (the ``batched``
test suite proves it; this bench re-checks the report hash on every
width).  Here we measure what that buys: campaign *points per second*
(classified trials / wall s) scalar vs batched at widths 8, 32, 128.

The workload is the CORDIC P=8 pipeline (24 iterations, 32 divisions,
the deepest Figure-5 partition), 128 trials of the standard SEU mix at
the EXPERIMENTS.md campaign settings.  The remaining gap to the ideal
N× is dominated by the per-lane CPU ticks — the instruction simulator
is inherently scalar and costs the same per trial on both engines — so
the speedup measures how far the *hardware* side of co-simulation
vectorizes.

Results land in ``results/ablation_batched_campaign.txt`` and, as
machine-readable points/sec, ``results/ablation_batched_campaign.json``.
"""

from __future__ import annotations

import json
import time

from conftest import RESULTS_DIR, emit

from repro.cosim.report import format_table
from repro.faults import CampaignConfig, run_campaign

WIDTHS = (8, 32, 128)
TRIALS = 128


def _config() -> CampaignConfig:
    return CampaignConfig(
        app="cordic",
        design={"p": 8, "iters": 24, "ndata": 32, "fifo_depth": 16},
        trials=TRIALS,
        seed=2005,
        recovery="none",
        deadlock_window=2_048,
        max_cycles=2_000_000,
    )


def test_ablation_batched_campaign(once, batched_smoke):
    """Campaign points/sec: scalar engine vs lockstep widths 8/32/128."""

    def measure():
        t0 = time.perf_counter()
        scalar = run_campaign(_config())
        scalar_s = time.perf_counter() - t0
        ref = json.dumps(scalar.to_dict(), sort_keys=True)
        rows = [("scalar", scalar_s, TRIALS / scalar_s, 1.0, "ref")]
        for width in WIDTHS:
            t0 = time.perf_counter()
            batched = run_campaign(_config(), batch_width=width)
            wall = time.perf_counter() - t0
            identical = json.dumps(
                batched.to_dict(), sort_keys=True) == ref
            rows.append((f"batched w={width}", wall, TRIALS / wall,
                         scalar_s / wall, str(identical)))
        return rows

    rows = once(measure)
    by_name = {r[0]: r for r in rows}
    # equivalence first: a fast wrong answer is worthless
    assert all(r[4] in ("ref", "True") for r in rows), rows
    # regression floor, not the ceiling: width 32 must stay well clear
    # of break-even on this workload (measured ~2.5-3x on 4 cores)
    assert by_name["batched w=32"][3] > 1.5, rows

    emit(
        "ablation_batched_campaign",
        f"Ablation: batched fault campaign (CORDIC P=8, {TRIALS} SEU "
        f"trials, seed 2005)",
        format_table(
            ["engine", "wall s", "points/s", "speedup", "report identical"],
            [(name, f"{wall:.2f}", f"{pps:.1f}", f"{speed:.2f}x", same)
             for name, wall, pps, speed, same in rows],
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_batched_campaign.json").write_text(
        json.dumps(
            {
                "workload": {
                    "app": "cordic", "p": 8, "iters": 24, "ndata": 32,
                    "trials": TRIALS, "seed": 2005,
                },
                "rows": [
                    {
                        "engine": name,
                        "wall_seconds": wall,
                        "points_per_second": pps,
                        "speedup_vs_scalar": speed,
                        "report_identical": same in ("ref", "True"),
                    }
                    for name, wall, pps, speed, same in rows
                ],
            },
            indent=2,
        ) + "\n"
    )
