"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the actual simulations, prints the rows (visible with ``pytest -s``)
and writes them under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: the fast-forward smoke target — the equivalence + regression suite
#: that must be green before any ablation number is worth recording.
FAST_FORWARD_SMOKE = [
    sys.executable, "-m", "pytest", "tests", "-q", "-k", "fast_forward",
]


def emit(name: str, title: str, text: str) -> None:
    """Print a result table and persist it to the results directory."""
    banner = f"\n==== {title} ====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(banner.lstrip("\n"))


@pytest.fixture(scope="session")
def fast_forward_smoke():
    """Run the fast-forward smoke target (``pytest tests -k
    fast_forward``) once per bench session; ablation results are only
    meaningful when the kernel is bit-identical to per-cycle mode."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        FAST_FORWARD_SMOKE, cwd=REPO_ROOT, env=env,
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        pytest.fail(
            "fast-forward smoke suite failed:\n" + proc.stdout + proc.stderr
        )


@pytest.fixture
def once(benchmark):
    """Run a heavy simulation exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
