"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the actual simulations, prints the rows (visible with ``pytest -s``)
and writes them under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: the fast-forward smoke target — the equivalence + regression suite
#: that must be green before any ablation number is worth recording.
FAST_FORWARD_SMOKE = [
    sys.executable, "-m", "pytest", "tests", "-q", "-k", "fast_forward",
]

#: the sweep smoke target — the tier-1 sweep-engine suite (tiny point
#: counts) that must be green before the parallel-speedup numbers are
#: worth recording.
SWEEP_SMOKE = [
    sys.executable, "-m", "pytest", "tests", "-q", "-k", "sweep",
]

#: the compiled-schedule smoke target — the engine-equivalence suite
#: that must be green before the compiled-vs-interpreter speedup is
#: worth recording.
COMPILED_SMOKE = [
    sys.executable, "-m", "pytest", "tests", "-q", "-k", "compiled",
]

#: the lockstep-engine smoke target — the batched-vs-scalar
#: equivalence suite that must be green before any batched-throughput
#: number is worth recording.
BATCHED_SMOKE = [
    sys.executable, "-m", "pytest", "tests", "-q", "-k", "batched",
]

#: the farm smoke target — gateway behavior plus preempt/migrate
#: bit-identity; farm throughput/latency numbers are only worth
#: recording when dedup and migration are provably correct.
FARM_SMOKE = [
    sys.executable, "-m", "pytest", "tests", "-q", "-k", "farm",
]


def _run_smoke(target: list[str], label: str) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        target, cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        pytest.fail(
            f"{label} smoke suite failed:\n" + proc.stdout + proc.stderr
        )


def emit(name: str, title: str, text: str) -> None:
    """Print a result table and persist it to the results directory."""
    banner = f"\n==== {title} ====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(banner.lstrip("\n"))


@pytest.fixture(scope="session")
def fast_forward_smoke():
    """Run the fast-forward smoke target (``pytest tests -k
    fast_forward``) once per bench session; ablation results are only
    meaningful when the kernel is bit-identical to per-cycle mode."""
    _run_smoke(FAST_FORWARD_SMOKE, "fast-forward")


@pytest.fixture(scope="session")
def sweep_smoke():
    """Run the sweep smoke target (``pytest tests -k sweep``, the
    tier-1 engine suite at tiny point counts) once per bench session;
    parallel-speedup numbers are only meaningful when parallel and
    sequential sweeps are provably identical."""
    _run_smoke(SWEEP_SMOKE, "sweep")


@pytest.fixture(scope="session")
def compiled_smoke():
    """Run the compiled-schedule smoke target (``pytest tests -k
    compiled``) once per bench session; the generated-code speedup is
    only meaningful when both engines are provably bit-identical."""
    _run_smoke(COMPILED_SMOKE, "compiled-schedule")


@pytest.fixture(scope="session")
def batched_smoke():
    """Run the lockstep-engine smoke target (``pytest tests -k
    batched``) once per bench session; batched-throughput numbers are
    only meaningful when the vector engine is provably byte-identical
    to the scalar one."""
    _run_smoke(BATCHED_SMOKE, "batched-engine")


@pytest.fixture(scope="session")
def farm_smoke():
    """Run the farm smoke target (``pytest tests -k farm``) once per
    bench session; throughput and latency numbers are only meaningful
    when dedup coalescing and checkpoint migration are provably
    byte-identical."""
    _run_smoke(FARM_SMOKE, "farm")


@pytest.fixture
def once(benchmark):
    """Run a heavy simulation exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
