"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the actual simulations, prints the rows (visible with ``pytest -s``)
and writes them under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, title: str, text: str) -> None:
    """Print a result table and persist it to the results directory."""
    banner = f"\n==== {title} ====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(banner.lstrip("\n"))


@pytest.fixture
def once(benchmark):
    """Run a heavy simulation exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
