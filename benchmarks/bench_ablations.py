"""Ablation benches for the design choices DESIGN.md calls out.

These quantify the knobs the paper's environment exposes (or that our
implementation adds):

* FSL FIFO depth — deeper FIFOs allow larger data sets per pass,
  amortizing pass overhead (paper Section IV-A sizes sets to the FIFO),
* ISS decode cache — the standard instruction-simulator memoization,
* compiler register allocation — register-homed locals vs a pure
  stack machine,
* blocking vs non-blocking FSL access styles for the same transfer,
* parallel vs sequential design-space sweeps over the same points.
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import emit

from repro.apps.cordic.design import CordicDesign
from repro.cosim.report import format_table
from repro.iss.cpu import CPUConfig
from repro.iss.run import make_cpu
from repro.mcc import CompileOptions, build_executable


def test_ablation_fsl_fifo_depth(once):
    """CORDIC P=4 cycles as a function of FSL FIFO depth."""

    def sweep():
        rows = []
        for depth in (4, 8, 16, 32):
            design = CordicDesign(p=4, iters=24, ndata=32, fifo_depth=depth)
            result = design.run()
            rows.append((depth, result.cycles, result.stall_cycles))
        return rows

    rows = once(sweep)
    cycles = [r[1] for r in rows]
    assert cycles[-1] <= cycles[0], "deeper FIFOs must not be slower"
    emit(
        "ablation_fsl_depth",
        "Ablation: FSL FIFO depth (CORDIC P=4, 24 iters, 32 divisions)",
        format_table(["FIFO depth", "cycles", "stall cycles"], rows),
    )


def test_ablation_decode_cache(once):
    """ISS wall-clock speed with and without the decode cache."""
    design = CordicDesign(p=0, iters=24, ndata=32, verify=False)

    def run_with(cache: bool) -> float:
        cpu = make_cpu(design.program, config=CPUConfig(decode_cache=cache))
        t0 = time.perf_counter()
        cpu.run(max_cycles=10_000_000)
        assert cpu.exit_code == 0
        return cpu.cycle / (time.perf_counter() - t0)

    speeds = once(lambda: {True: run_with(True), False: run_with(False)})
    assert speeds[True] > speeds[False], "decode cache must speed up the ISS"
    emit(
        "ablation_decode_cache",
        "Ablation: ISS decode cache",
        format_table(
            ["decode cache", "cycles / wall second"],
            [("on", f"{speeds[True]:,.0f}"), ("off", f"{speeds[False]:,.0f}")],
        )
        + f"\n\nspeedup from caching: {speeds[True] / speeds[False]:.2f}x",
    )


def test_ablation_register_locals(once):
    """Compiler register allocation: cycle count impact on both the
    software CORDIC and the FSL driver."""

    def measure(register_locals: bool):
        out = {}
        for p in (0, 4):
            design = CordicDesign(p=p, iters=24, ndata=16)
            # rebuild the program with the ablated compiler option
            from repro.apps.cordic.software import (
                cordic_hw_source,
                cordic_sw_source,
            )

            source = cordic_sw_source(24, 16) if p == 0 else \
                cordic_hw_source(4, 24, 16)
            design.program = build_executable(
                source, CompileOptions(register_locals=register_locals)
            )
            result = design.run()
            out[p] = result.cycles
        return out

    on = once(lambda: measure(True))
    off = measure(False)
    rows = [
        ("software (P=0)", on[0], off[0], f"{off[0] / on[0]:.2f}x"),
        ("P=4 pipeline", on[4], off[4], f"{off[4] / on[4]:.2f}x"),
    ]
    assert on[0] < off[0] and on[4] < off[4]
    emit(
        "ablation_register_locals",
        "Ablation: compiler register allocation (cycles)",
        format_table(["design", "reg-alloc on", "off", "penalty"], rows),
    )


def _doubler_cosim(source: str):
    """A small echo-doubler design used by the blocking-style ablation."""
    from repro.cosim import CoSimulation, MicroBlazeBlock
    from repro.sysgen import Model
    from repro.sysgen.blocks import Delay, Inverter, Logical, Shift

    model = Model("doubler")
    mb = MicroBlazeBlock(model)
    rd = mb.master_fsl(0)
    wr = mb.slave_fsl(0)
    shl = model.add(Shift("shl", width=32, amount=1, direction="left"))
    notfull = model.add(Inverter("notfull", width=1))
    strobe = model.add(Logical("strobe", width=1, op="and"))
    model.connect(wr.o("full"), notfull.i("a"))
    model.connect(rd.o("exists"), strobe.i("d0"))
    model.connect(notfull.o("out"), strobe.i("d1"))
    model.connect(rd.o("data"), shl.i("a"))
    model.connect(strobe.o("out"), rd.i("read"))
    dly_d = model.add(Delay("dly_d", width=32, n=4))
    dly_v = model.add(Delay("dly_v", width=1, n=4))
    model.connect(shl.o("s"), dly_d.i("d"))
    model.connect(strobe.o("out"), dly_v.i("d"))
    model.connect(dly_d.o("q"), wr.i("data"))
    model.connect(dly_v.o("q"), wr.i("write"))
    program = build_executable(source)
    return CoSimulation(program, model, mb)


_BLOCKING_SRC = """
int main(void) {
    int sum = 0;
    for (int i = 0; i < 64; i++) { putfsl(i, 0); sum += getfsl(0); }
    return sum == 64 * 63;
}
"""

_POLLING_SRC = """
int main(void) {
    int sum = 0;
    for (int i = 0; i < 64; i++) {
        putfsl(i, 0);
        int v = ngetfsl(0);
        while (fsl_isinvalid()) { v = ngetfsl(0); }
        sum += v;
    }
    return sum == 64 * 63;
}
"""


@pytest.mark.sweep
def test_ablation_sweep_parallel(once, sweep_smoke):
    """Parallel vs sequential DSE sweep over a CORDIC P-sweep.

    Records per-point equality (ordering and cycle counts must be
    identical), the CPU-bound wall-clock speedup on this host, and a
    wait-bound overlap measurement that isolates the scheduler from
    host core count (a sleeping point occupies a worker slot without
    competing for CPU).
    """
    from repro.apps.cordic.design import cordic_design_specs
    from repro.cosim.sweep import sweep, synthetic_specs

    # 9 points: P in {2,4,6,8} x FIFO depth {8,16}, plus pure software
    specs = cordic_design_specs(ps=(0,), iters=24, ndata=32)
    for depth in (8, 16):
        specs += cordic_design_specs(ps=(2, 4, 6, 8), iters=24, ndata=32,
                                     fifo_depth=depth)
    for spec, suffix in zip(specs[1:], ["-d8"] * 4 + ["-d16"] * 4):
        spec.name += suffix
    workers = 4
    cores = len(os.sched_getaffinity(0))

    def measure():
        seq = sweep(specs, workers=0)
        par = sweep(specs, workers=workers)
        waits = synthetic_specs(8, seconds=0.4)
        wait_seq = sweep(waits, workers=0)
        wait_par = sweep(waits, workers=workers)
        return seq, par, wait_seq, wait_par

    seq, par, wait_seq, wait_par = once(measure)

    # parallel evaluation must be invisible in the results
    assert [r.point.name for r in par.results] == \
        [r.point.name for r in seq.results]
    assert [r.cycles for r in par.results] == \
        [r.cycles for r in seq.results]
    assert all(r.ok for r in seq.results)

    overlap = wait_seq.wall_seconds / wait_par.wall_seconds
    assert overlap >= 2.0, "4 workers must overlap wait-bound points >=2x"
    speedup = seq.wall_seconds / par.wall_seconds
    if cores >= workers:
        assert speedup >= 2.0, \
            f"expected >=2x CPU-bound speedup on {cores} cores"

    rows = [
        (s.point.name, s.cycles, p.cycles, "yes" if s.cycles == p.cycles
         else "NO")
        for s, p in zip(seq.results, par.results)
    ]
    emit(
        "ablation_sweep_parallel",
        f"Ablation: parallel DSE sweep ({len(specs)} CORDIC points, "
        f"{workers} workers, {cores} usable core(s))",
        format_table(
            ["design", "seq cycles", "par cycles", "identical"], rows
        )
        + f"\n\nCPU-bound:  sequential {seq.wall_seconds:.2f}s, "
          f"{workers} workers {par.wall_seconds:.2f}s "
          f"-> {speedup:.2f}x on {cores} usable core(s)"
        + f"\nwait-bound: sequential {wait_seq.wall_seconds:.2f}s, "
          f"{workers} workers {wait_par.wall_seconds:.2f}s "
          f"-> {overlap:.2f}x worker overlap (8 x 0.4s points)"
        + "\n\nCPU-bound speedup tracks available cores (the engine adds"
          "\n~10ms/point of process overhead); wait-bound overlap shows"
          "\nthe scheduler itself sustains >=2x with 4 workers even on"
          "\none core.",
    )


def test_ablation_blocking_vs_nonblocking(once):
    def measure():
        blocking = _doubler_cosim(_BLOCKING_SRC).run()
        polling = _doubler_cosim(_POLLING_SRC).run()
        assert blocking.exit_code == 1 and polling.exit_code == 1
        return blocking, polling

    blocking, polling = once(measure)
    rows = [
        ("blocking get", blocking.cycles, blocking.stall_cycles),
        ("non-blocking poll", polling.cycles, polling.stall_cycles),
    ]
    # Blocking waits stall the pipe; polling spends instructions instead.
    assert blocking.stall_cycles > 0
    assert polling.instructions > blocking.instructions
    emit(
        "ablation_blocking",
        "Ablation: blocking vs non-blocking FSL round trips (64 words, "
        "4-cycle peripheral latency)",
        format_table(["style", "cycles", "stall cycles"], rows),
    )
