#!/usr/bin/env python3
"""Why high-level co-simulation matters: run the same CORDIC design in
the arithmetic-level co-simulator and in the event-driven RTL baseline,
compare wall-clock speeds, and dump an RTL waveform (VCD).

This is the paper's Table I/II comparison in miniature.

Run:  python examples/rtl_baseline.py
"""

import io
import pathlib
import time

from repro.apps.cordic.design import CordicDesign
from repro.rtl.kernel import Kernel
from repro.rtl.lowering import lower_model
from repro.rtl.system import CLOCK_PERIOD, RTLSystem
from repro.rtl.vcd import VCDWriter
from repro.apps.cordic.hardware import build_cordic_model

P, ITERS, NDATA = 4, 24, 8

# ----------------------------------------------------------------------
# High-level co-simulation
# ----------------------------------------------------------------------
design = CordicDesign(p=P, iters=ITERS, ndata=NDATA)
cosim = design.run()
print("high-level co-simulation (the paper's environment):")
print(f"  {cosim.cycles} cycles in {cosim.wall_seconds:.2f}s "
      f"= {cosim.cycles_per_wall_second:,.0f} cycles/s")

# ----------------------------------------------------------------------
# Event-driven RTL baseline (peripheral as a LUT/FF netlist)
# ----------------------------------------------------------------------
design2 = CordicDesign(p=P, iters=ITERS, ndata=NDATA)
t0 = time.perf_counter()
system = RTLSystem(design2.program, design2.model, design2.mb)
rtl = system.run()
rtl_wall = time.perf_counter() - t0
design2._verify(system.cpu)  # same results, bit-exactly
stats = None
print("\nevent-driven RTL simulation (the ModelSim-like baseline):")
print(f"  {rtl.cycles} cycles in {rtl_wall:.2f}s "
      f"= {rtl.cycles_per_wall_second:,.0f} cycles/s")
print(f"  {rtl.events:,} signal events, {rtl.process_runs:,} process runs")
print(f"\nsimulation speedup of the co-simulation environment: "
      f"{rtl_wall / cosim.wall_seconds:.1f}x  (paper: 5.6x - 19.4x)")

# ----------------------------------------------------------------------
# Waveform dump of the bare peripheral (open with GTKWave)
# ----------------------------------------------------------------------
model, mb = build_cordic_model(2)
kernel = Kernel()
clk = kernel.add_clock("clk", CLOCK_PERIOD)
lowered = lower_model(model, kernel, clk)
out = io.StringIO()
interesting = [clk] + [
    sig for sig in kernel.signals if "pe1_ry" in sig.name or "busy" in sig.name
][:16]
writer = VCDWriter(kernel, out, signals=interesting)
mb.to_hw_channel(0).push(1 << 16, control=True)
mb.to_hw_channel(0).push(3 << 16)
mb.to_hw_channel(0).push(1 << 16)
mb.to_hw_channel(0).push(0)
kernel.run(CLOCK_PERIOD * 12)
writer.close()

out_dir = pathlib.Path("out")
out_dir.mkdir(exist_ok=True)
vcd_path = out_dir / "cordic_pipeline.vcd"
vcd_path.write_text(out.getvalue())
print(f"\nwaveform written to {vcd_path} "
      f"({len(out.getvalue())} bytes, {len(interesting)} signals)")
