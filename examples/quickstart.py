#!/usr/bin/env python3
"""Quickstart: compile C for the soft processor, run it, then co-simulate
software against a custom hardware peripheral over FSL.

Run:  python examples/quickstart.py
"""

from repro.cosim import CoSimulation, MicroBlazeBlock
from repro.iss.run import run_to_completion
from repro.mcc import build_executable
from repro.sysgen import Model
from repro.sysgen.blocks import Inverter, Logical, Shift

# ----------------------------------------------------------------------
# 1. Software only: compile mini-C, run it on the cycle-accurate ISS.
# ----------------------------------------------------------------------
SOFTWARE = """
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }

int main(void) {
    __builtin_putchar('f');
    __builtin_putchar('i');
    __builtin_putchar('b');
    __builtin_putchar('\\n');
    return fib(12);   /* 144 */
}
"""

program = build_executable(SOFTWARE)
exit_code, cpu = run_to_completion(program)
print("== software-only run ==")
print(f"console : {cpu.mem.console.text!r}")
print(f"fib(12) = {exit_code}")
print(f"cycles  = {cpu.cycle}  ({cpu.simulated_time_s() * 1e6:.1f} us at 50 MHz)")
print(cpu.stats.summary())

# ----------------------------------------------------------------------
# 2. Hardware/software co-simulation: a peripheral that doubles every
#    word the processor sends over FSL channel 0.
# ----------------------------------------------------------------------
model = Model("doubler")
mb = MicroBlazeBlock(model)
rd = mb.master_fsl(0)   # processor -> peripheral
wr = mb.slave_fsl(0)    # peripheral -> processor

shl = model.add(Shift("shl", width=32, amount=1, direction="left"))
notfull = model.add(Inverter("notfull", width=1))
strobe = model.add(Logical("strobe", width=1, op="and"))
model.connect(wr.o("full"), notfull.i("a"))
model.connect(rd.o("exists"), strobe.i("d0"))
model.connect(notfull.o("out"), strobe.i("d1"))
model.connect(rd.o("data"), shl.i("a"))
model.connect(strobe.o("out"), rd.i("read"))
model.connect(shl.o("s"), wr.i("data"))
model.connect(strobe.o("out"), wr.i("write"))

DRIVER = """
int main(void) {
    int sum = 0;
    for (int i = 1; i <= 10; i++) {
        putfsl(i, 0);          /* blocking write to FSL 0 */
        sum += getfsl(0);      /* blocking read of 2*i    */
    }
    return sum;                /* 2 * 55 = 110 */
}
"""

sim = CoSimulation(build_executable(DRIVER), model, mb)
result = sim.run()
print("\n== hardware/software co-simulation ==")
print(f"sum of doubled 1..10 = {result.exit_code}")
print(f"cycles               = {result.cycles}")
print(f"simulation speed     = {result.cycles_per_wall_second:,.0f} cycles/s")
print(f"peripheral estimate  = {model.resources()}")

assert exit_code == 144
assert result.exit_code == 110
print("\nquickstart OK")
