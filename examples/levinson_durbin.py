#!/usr/bin/env python3
"""Levinson-Durbin recursion — the paper's example of a workload that
*belongs in software*.

Introduction of the paper: "some applications have tightly coupled data
dependency among computation steps and do not benefit from parallel
execution.  Many recursive algorithms (e.g. Levinson Durbin recursion)
... fall into this category.  Their software implementations are more
compact and require much smaller amount of resources than their
customized parallel implementations."

This example solves the Toeplitz system for linear-prediction
coefficients in Q12 fixed point on the soft processor, two ways:

* pure software, with an exact shift-subtract divide,
* with the per-order division offloaded to the CORDIC pipeline (the
  divide is the only parallelizable kernel in the recursion).

Both are verified bit-exactly against Python golden models, and the
cycle counts show why the paper leaves this workload on the processor:
the recursion's serial dependency chain leaves almost nothing for
hardware to win.

Run:  python examples/levinson_durbin.py
"""

from repro.apps.common import run_software_only
from repro.apps.cordic.algorithm import cordic_divide_fixed
from repro.apps.cordic.hardware import build_cordic_model
from repro.cosim import CoSimulation
from repro.mcc import build_executable
from repro.resources import estimate_design

FRAC = 12
ONE = 1 << FRAC
ORDER = 4
# autocorrelation of a well-behaved AR process, Q12
R_FLOAT = [1.0, 0.55, 0.35, 0.22, 0.12]
R = [int(v * ONE) for v in R_FLOAT]

P_PES = 4
CORDIC_ITERS = 16  # 4 passes through the 4-PE pipeline


# ----------------------------------------------------------------------
# Golden models (bit-exact per implementation)
# ----------------------------------------------------------------------
def mulq(x: int, y: int) -> int:
    """Q12 multiply with truncation toward minus infinity (>> 12)."""
    return (x * y) >> FRAC


def divq_exact(num: int, den: int) -> int:
    """Shift-subtract divide: floor(num * 2^FRAC / den), num,den > 0."""
    q = 0
    rem = num
    for _ in range(FRAC):
        rem <<= 1
        q <<= 1
        if rem >= den:
            rem -= den
            q += 1
    return q


def divq_cordic(num: int, den: int) -> int:
    """What the CORDIC pipeline computes for num/den in Q12."""
    _, z = cordic_divide_fixed(num, den, CORDIC_ITERS, frac=FRAC)
    return z


def levinson_golden(divide) -> list[int]:
    a = [0] * (ORDER + 1)
    a[0] = ONE
    e = R[0]
    for m in range(1, ORDER + 1):
        acc = R[m]
        for i in range(1, m):
            acc += mulq(a[i], R[m - i])
        mag = acc if acc >= 0 else -acc
        k = divide(mag, e)
        if acc >= 0:
            k = -k
        new_a = a[:]
        for i in range(1, m):
            new_a[i] = a[i] + mulq(k, a[m - i])
        new_a[m] = k
        a = new_a
        e = mulq(e, ONE - mulq(k, k))
    return a[1:]


# ----------------------------------------------------------------------
# mini-C implementations
# ----------------------------------------------------------------------
_COMMON = f"""
int R[{ORDER + 1}] = {{{", ".join(str(v) for v in R)}}};
int A[{ORDER + 1}];
int NA[{ORDER + 1}];

int mulq(int x, int y) {{ return (x * y) >> {FRAC}; }}
"""

_SW_DIV = f"""
int divq(int num, int den) {{
    int q = 0;
    int rem = num;
    for (int j = 0; j < {FRAC}; j++) {{
        rem <<= 1;
        q <<= 1;
        if (rem >= den) {{ rem -= den; q += 1; }}
    }}
    return q;
}}
"""

_HW_DIV = f"""
int divq(int num, int den) {{
    /* offload to the CORDIC pipeline: {CORDIC_ITERS} iterations in
       {CORDIC_ITERS // P_PES} passes of {P_PES} */
    int y = num;
    int z = 0;
    int s0 = 0;
    for (int p = 0; p < {CORDIC_ITERS // P_PES}; p++) {{
        cputfsl({ONE} >> s0, 0);
        putfsl(den >> s0, 0);
        putfsl(y, 0);
        putfsl(z, 0);
        y = getfsl(0);
        z = getfsl(0);
        s0 += {P_PES};
    }}
    return z;
}}
"""

_MAIN = f"""
int main(void) {{
    for (int i = 0; i <= {ORDER}; i++) A[i] = 0;
    A[0] = {ONE};
    int e = R[0];
    for (int m = 1; m <= {ORDER}; m++) {{
        int acc = R[m];
        for (int i = 1; i < m; i++) acc += mulq(A[i], R[m - i]);
        int mag = acc;
        if (mag < 0) mag = -mag;
        int k = divq(mag, e);
        if (acc >= 0) k = -k;
        for (int i = 0; i <= {ORDER}; i++) NA[i] = A[i];
        for (int i = 1; i < m; i++) NA[i] = A[i] + mulq(k, A[m - i]);
        NA[m] = k;
        for (int i = 0; i <= {ORDER}; i++) A[i] = NA[i];
        e = mulq(e, {ONE} - mulq(k, k));
    }}
    return 0;
}}
"""


def read_coeffs(cpu, program):
    base = program.symbol("A")
    out = []
    for i in range(1, ORDER + 1):
        raw = cpu.mem.read_u32(base + 4 * i)
        out.append(raw - 0x100000000 if raw & 0x80000000 else raw)
    return out


# ---- pure software ----------------------------------------------------
program_sw = build_executable(_COMMON + _SW_DIV + _MAIN)
result_sw, cpu_sw = run_software_only(program_sw)
assert result_sw.exit_code == 0
got_sw = read_coeffs(cpu_sw, program_sw)
exp_sw = levinson_golden(divq_exact)
assert got_sw == exp_sw, (got_sw, exp_sw)

# ---- CORDIC-assisted division -----------------------------------------
model, mb = build_cordic_model(P_PES)
program_hw = build_executable(_COMMON + _HW_DIV + _MAIN)
sim = CoSimulation(program_hw, model, mb)
result_hw = sim.run()
assert result_hw.exit_code == 0
got_hw = read_coeffs(sim.cpu, program_hw)
exp_hw = levinson_golden(divq_cordic)
assert got_hw == exp_hw, (got_hw, exp_hw)

# ---- report -----------------------------------------------------------
print(f"Levinson-Durbin order {ORDER} (Q{FRAC} fixed point):")
print("  coefficients:",
      ", ".join(f"{v / ONE:+.4f}" for v in got_sw))
print(f"\n  pure software      : {result_sw.cycles:5d} cycles, "
      f"{estimate_design(program=program_sw).total.slices} slices")
print(f"  CORDIC-div offload : {result_hw.cycles:5d} cycles, "
      f"{estimate_design(model=model, program=program_hw, n_fsl_links=mb.n_links).total.slices} slices")
ratio = result_sw.cycles / result_hw.cycles
print(f"\n  'speedup' from hardware: {ratio:.2f}x — the recursion's "
      f"serial dependency chain")
print("  leaves the peripheral idle; the paper is right to keep this "
      "workload in software.")
assert ratio < 1.6, "hardware should NOT pay off for this workload"
