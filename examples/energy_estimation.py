#!/usr/bin/env python3
"""The paper's declared future-work extension, implemented: rapid energy
estimation integrated into the co-simulation environment.

For every CORDIC partition this estimates, from the same high-level
co-simulation run (no low-level power simulation):

* software energy — instruction-level model over the ISS statistics,
* peripheral energy — switching-activity model over the hardware model,
* quiescent energy — leakage proportional to occupied slices × runtime,

exposing the energy trade-off the paper's introduction motivates:
bigger pipelines finish sooner (less software + leakage *energy*) but
burn more peripheral power and area.

Run:  python examples/energy_estimation.py
"""

from repro.apps.common import run_software_only
from repro.apps.cordic.design import CordicDesign
from repro.cosim.environment import CoSimulation
from repro.cosim.report import format_table
from repro.energy import ActivityMonitor, estimate_energy

ITERS, NDATA = 24, 16

rows = []
reports = {}
for p in (0, 2, 4, 8):
    design = CordicDesign(p=p, iters=ITERS, ndata=NDATA)
    if p == 0:
        result, cpu = run_software_only(design.program, design.cpu_config)
        monitor, model = None, None
    else:
        monitor = ActivityMonitor(design.model).install()
        sim = CoSimulation(design.program, design.model, design.mb,
                           cpu_config=design.cpu_config)
        result = sim.run()
        cpu = sim.cpu
        model = design.model
    assert result.exit_code == 0
    slices = design.estimate().total.slices
    report = estimate_energy(cpu, model, monitor, slices=slices)
    reports[p] = report
    rows.append(
        (
            "software" if p == 0 else f"P={p}",
            result.cycles,
            f"{report.software.total_nj / 1000:.2f}",
            f"{report.peripheral_nj / 1000:.2f}",
            f"{report.quiescent_nj / 1000:.2f}",
            f"{report.total_uj:.2f}",
            f"{report.average_power_mw:.1f}",
        )
    )

print(f"CORDIC division energy ({NDATA} divisions, {ITERS} iterations):\n")
print(format_table(
    ["design", "cycles", "SW uJ", "HW uJ", "leak uJ", "total uJ", "avg mW"],
    rows,
))

best = min(reports, key=lambda p: reports[p].total_uj)
print(f"\nlowest-energy partition: "
      f"{'software' if best == 0 else f'P={best}'} "
      f"({reports[best].total_uj:.2f} uJ)")

print("\nper-block peripheral energy for P=4 (top 5):")
for name, nj in sorted(reports[4].peripheral_by_block_nj.items(),
                       key=lambda kv: -kv[1])[:5]:
    print(f"  {name:<14} {nj / 1000:.3f} uJ")
