#!/usr/bin/env python3
"""Adaptive beamforming weight update — the paper's motivating scenario.

Section IV: "These designs can be used in applications such as adaptive
beamforming, where they are used to update the weight coefficients of
the filters in accordance with the changes of the communication
environment."

This example attaches BOTH customized peripherals to one soft processor
(MicroBlaze supports up to 8 input + 8 output FSLs):

* FSL 0 — the 4-PE CORDIC division pipeline,
* FSL 1 — the 2×2 block matrix multiplier,

and runs one weight-update step in mini-C:

    G      = R × W        (matmul peripheral: correlation x weights)
    W'_ij  = G_ij / d     (CORDIC peripheral: per-element normalize)

with every result checked against a NumPy-style golden model.

Run:  python examples/adaptive_beamforming.py
"""

from repro.apps.cordic.hardware import (
    _build_input_sequencer,
    _build_output_sequencer,
    _build_pe,
)
from repro.apps.matmul.algorithm import matmul_reference
from repro.cosim import CoSimulation, MicroBlazeBlock
from repro.mcc import build_executable
from repro.sysgen import Model

P = 4          # CORDIC PEs
ITERS = 16     # division iterations (multiple of P)
FRAC = 16

# ----------------------------------------------------------------------
# Build one model containing both peripherals.
# ----------------------------------------------------------------------
model = Model("beamformer")
mb = MicroBlazeBlock(model)

# CORDIC pipeline on FSL 0 (reusing the application's generators).
rd0 = mb.master_fsl(0, name="cordic_in")
wr0 = mb.slave_fsl(0, name="cordic_out")
stage = _build_input_sequencer(model, rd0)
for idx in range(P):
    stage = _build_pe(model, idx, stage)
_build_output_sequencer(model, stage, wr0)

# 2x2 block multiplier on FSL 1: the generator builds its own model
# around its own FSL channels; connect those channel objects to our
# processor's channel 1 so both peripherals serve one CPU.
from repro.apps.matmul import hardware as matgen

mat_model, mat_mb = matgen.build_matmul_model(2)
mb.fsl_ports.connect_output(1, mat_mb.to_hw_channel(0))
mb.fsl_ports.connect_input(1, mat_mb.from_hw_channel(0))

# ----------------------------------------------------------------------
# Software: one weight-update step.
# ----------------------------------------------------------------------
R = [[3, 1], [2, 4]]          # correlation estimate
W = [[5, 7], [6, 8]]          # current weights
D = 3.0                       # normalization divisor
D_FIX = int(D * (1 << FRAC))

SRC = f"""
int R[4] = {{{R[0][0]}, {R[0][1]}, {R[1][0]}, {R[1][1]}}};
int W[4] = {{{W[0][0]}, {W[0][1]}, {W[1][0]}, {W[1][1]}}};
int G[4];
int Wn[4];

int main(void) {{
    /* ---- G = R x W on the matmul peripheral (FSL 1) ---- */
    /* load W as the B block, column by column (k fast) */
    cputfsl(W[0], 1); cputfsl(W[2], 1);   /* w11, w21 */
    cputfsl(W[1], 1); cputfsl(W[3], 1);   /* w12, w22 */
    /* stream R column by column (i fast) */
    putfsl(R[0], 1); putfsl(R[2], 1);     /* r11, r21 */
    putfsl(R[1], 1); putfsl(R[3], 1);     /* r12, r22 */
    /* read back G, column by column */
    G[0] = getfsl(1); G[2] = getfsl(1);
    G[1] = getfsl(1); G[3] = getfsl(1);

    /* ---- Wn_i = (G_i << FRAC-ish) / D via CORDIC (FSL 0) ---- */
    int passes = {ITERS // P};
    for (int i = 0; i < 4; i++) {{
        int y = G[i] << 8;        /* scale into the convergence range */
        int z = 0;
        int s0 = 0;
        for (int p = 0; p < passes; p++) {{
            cputfsl({1 << FRAC} >> s0, 0);
            putfsl({D_FIX} >> s0, 0);   /* XC0 = divisor, pre-shifted */
            putfsl(y, 0);
            putfsl(z, 0);
            y = getfsl(0);
            z = getfsl(0);
            s0 += {P};
        }}
        Wn[i] = z;                /* quotient in Q{FRAC}, scaled by 2^-8 */
    }}
    return 0;
}}
"""

program = build_executable(SRC)
sim = CoSimulation(program, model, mb, extra_models=[mat_model])
result = sim.run()
assert result.exit_code == 0

# ----------------------------------------------------------------------
# Verify against the golden models.
# ----------------------------------------------------------------------
G_expected = matmul_reference(R, W)
cpu = sim.cpu
g_base = program.symbol("G")
G_got = [
    [cpu.mem.read_u32(g_base + 0), cpu.mem.read_u32(g_base + 4)],
    [cpu.mem.read_u32(g_base + 8), cpu.mem.read_u32(g_base + 12)],
]
assert G_got == G_expected, (G_got, G_expected)

wn_base = program.symbol("Wn")
print("beamforming weight update (G = R x W, Wn = G / 3):")
for i in range(2):
    for j in range(2):
        raw = cpu.mem.read_u32(wn_base + 4 * (2 * i + j))
        z = raw - 0x100000000 if raw & 0x80000000 else raw
        got = z / (1 << FRAC) * (1 << 8)  # undo the scaling
        want = G_expected[i][j] / D
        print(f"  Wn[{i}][{j}] = {got:8.4f}   (exact {want:8.4f})")
        assert abs(got - want) < 0.01 * max(1.0, abs(want))

print(f"\n{result.cycles} cycles, both peripherals on one processor "
      f"({mb.n_links + 2} FSL links) — OK")
