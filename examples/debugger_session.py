#!/usr/bin/env python3
"""Drive the simulated processor the way the paper's environment does:
through an mb-gdb-style debugger over the GDB Remote Serial Protocol.

The MicroBlaze Simulink block of the paper "communicates with mb-gdb to
obtain the execution status of the software programs ... It also
changes the status of the registers of the MicroBlaze processor based
on the results from the customized hardware designs."  This example
does exactly that: run to a breakpoint, read the argument registers,
compute the "hardware" result on the host, patch it back, resume.

Run:  python examples/debugger_session.py
"""

from repro.gdb import Debugger, GdbClient, GdbServer
from repro.iss.run import make_cpu
from repro.mcc import build_executable

SOURCE = """
/* accelerate() is the stand-in for a hardware call: the debugger
   intercepts it and supplies the result from "hardware". */
int accelerate(int x, int y) { return 0; /* patched externally */ }

int main(void) {
    int total = 0;
    for (int i = 1; i <= 4; i++)
        total += accelerate(i, 10 * i);
    return total;
}
"""

program = build_executable(SOURCE)
cpu = make_cpu(program)
debugger = Debugger(cpu, program)

server = GdbServer(debugger)
server.start()
client = GdbClient(*server.address)
print(f"RSP server listening on {server.address}")

client.set_breakpoint(program.symbol("accelerate"))
hits = 0
while True:
    reply = client.cont()
    if reply.startswith("W"):  # process exited
        exit_code = int(reply[1:], 16)
        break
    hits += 1
    x = client.read_register(5)   # first argument
    y = client.read_register(6)   # second argument
    hw_result = x * y + 1         # the "customized hardware" computation
    print(f"breakpoint hit #{hits}: accelerate({x}, {y}) "
          f"-> patching r3 = {hw_result}")
    # skip the function body: set the return value and return address
    client.write_register(3, hw_result)
    r15 = client.read_register(15)
    client.write_register(32, (r15 + 8) & 0xFFFFFFFF)  # pc = return site

client.close()
server.stop()

expected = sum(i * (10 * i) + 1 for i in range(1, 5))
print(f"\nprogram exited with {exit_code} (expected {expected & 0xFF})")
assert exit_code == expected & 0xFF
print("debugger session OK")
