#!/usr/bin/env python3
"""The paper's Section IV-A application: an adaptive CORDIC divider on
the soft processor, explored across hardware/software partitions.

Reproduces the Figure 5 experiment and then uses the design-space
sweep engine to answer the question the co-simulation environment
exists for: *which partition is fastest within a slice budget?*

Run:  python examples/cordic_division.py
"""

from repro.apps.cordic.design import CordicDesign, cordic_design_specs
from repro.cosim.report import format_dse
from repro.cosim.sweep import sweep

ITERS = 24
NDATA = 32

print(f"CORDIC division: {NDATA} divisions, {ITERS} iterations, 50 MHz\n")

# ----------------------------------------------------------------------
# Figure 5: execution time vs number of PEs
# ----------------------------------------------------------------------
print("evaluating partitions (each run is verified bit-exactly against")
print("the golden model — the board-less ML300 check)...\n")

specs = cordic_design_specs(ps=(0, 2, 4, 6, 8), iters=ITERS, ndata=NDATA)
report = sweep(specs)
results = report.ranked()
print(format_dse(results))

sw = next(r for r in results if r.point.params["p"] == 0)
hw4 = next(r for r in results if r.point.params["p"] == 4)
print(f"\nspeedup of P=4 over pure software: "
      f"{sw.cycles / hw4.cycles:.2f}x (paper: 5.6x)")

# ----------------------------------------------------------------------
# Constrained exploration: fastest design under a slice budget.  The
# sweep already ran every point, so constraining is a re-rank, not a
# re-simulation.
# ----------------------------------------------------------------------
BUDGET = 1300
winner = report.best(max_slices=BUDGET)
print(f"\nfastest design within {BUDGET} slices: {winner.point} "
      f"({winner.cycles} cycles, {winner.slices} slices)")

# ----------------------------------------------------------------------
# The "adaptive" part: iteration count changes at run time; the same
# pipeline serves any iteration count by looping data through it.
# ----------------------------------------------------------------------
print("\nadaptive iteration counts on the same P=4 pipeline:")
for iters in (8, 16, 24):
    design = CordicDesign(p=4, iters=iters, ndata=8)
    r = design.run()
    print(f"  {iters:2d} iterations -> {r.cycles:6d} cycles "
          f"({design.effective_iterations} effective)")
