#!/usr/bin/env python3
"""The paper's Section IV-B application: block matrix multiplication
with an N×N-block multiplier peripheral.

Shows the paper's central design-space lesson: attaching hardware is
*not* always a win — the 2×2 block multiplier loses to pure software
because communication costs exceed the parallel-multiply savings, while
the 4×4 version wins clearly.

Run:  python examples/matrix_multiply.py
"""

from repro.apps.matmul.design import MatmulDesign
from repro.cosim.report import format_table

MATN = 16

print(f"{MATN}x{MATN} integer matrix multiplication, 50 MHz\n")

rows = []
cycles = {}
for block in (0, 2, 4):
    design = MatmulDesign(block=block, matn=MATN)
    result = design.run()  # verified against the reference product
    est = design.estimate().total
    cycles[block] = result.cycles
    rows.append(
        (
            "pure software" if block == 0 else f"{block}x{block} blocks",
            result.cycles,
            f"{result.simulated_microseconds:.0f}",
            est.slices,
            est.mult18,
        )
    )

print(format_table(
    ["design", "cycles", "time (us)", "slices", "MULT18s"], rows
))

print(f"""
2x2 vs software : {cycles[0] / cycles[2]:.2f}x  (paper: 0.92x — a LOSS;
                  communication overhead beats the parallel multiplies)
4x4 vs software : {cycles[0] / cycles[4]:.2f}x  (paper: 2.2x — a WIN)
""")

# Where does the 2x2 time go?  Count the FSL traffic.
design = MatmulDesign(block=2, matn=MATN)
result = design.run()
nb = MATN // 2
words = nb * nb * (4 + nb * 8)  # B loads + per-I A/product words
print(f"2x2 FSL words moved: {words} for {MATN**3} multiply-accumulates")
print(f"stall cycles waiting on the peripheral: {result.stall_cycles}")
